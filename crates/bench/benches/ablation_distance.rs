//! Distance-approximation ablation — the paper's §3.2 claim that the
//! equirectangular approximation is ~30× faster than Haversine with only
//! 0.1% precision loss within a city. This bench measures the speed half of
//! the claim (the precision half is checked by
//! `grouptravel-experiments::ablation::distance_precision` and its tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
use grouptravel_geo::{equirectangular_km, haversine_km, GeoPoint};
use std::hint::black_box;

fn city_points(n: usize) -> Vec<GeoPoint> {
    let catalog = SyntheticCityGenerator::new(
        CitySpec::paris(),
        SyntheticCityConfig {
            counts: [n / 4, n / 4, n / 4, n / 4],
            ..SyntheticCityConfig::default()
        },
    )
    .generate();
    catalog.locations()
}

fn bench_distance_functions(c: &mut Criterion) {
    let points = city_points(400);

    let mut bench = c.benchmark_group("ablation_distance/all_pairs");
    bench.sample_size(20);
    for (name, f) in [
        ("haversine", haversine_km as fn(&GeoPoint, &GeoPoint) -> f64),
        ("equirectangular", equirectangular_km),
    ] {
        bench.bench_with_input(BenchmarkId::from_parameter(name), &points, |b, points| {
            b.iter(|| {
                let mut total = 0.0f64;
                for (i, a) in points.iter().enumerate() {
                    for p in &points[i + 1..] {
                        total += f(black_box(a), black_box(p));
                    }
                }
                total
            });
        });
    }
    bench.finish();
}

fn bench_single_call(c: &mut Criterion) {
    let a = GeoPoint::new_unchecked(48.8606, 2.3376);
    let b_point = GeoPoint::new_unchecked(48.8860, 2.3430);

    let mut bench = c.benchmark_group("ablation_distance/single_pair");
    for (name, f) in [
        ("haversine", haversine_km as fn(&GeoPoint, &GeoPoint) -> f64),
        ("equirectangular", equirectangular_km),
    ] {
        bench.bench_with_input(BenchmarkId::from_parameter(name), &(), |bencher, ()| {
            bencher.iter(|| f(black_box(&a), black_box(&b_point)));
        });
    }
    bench.finish();
}

criterion_group!(benches, bench_distance_functions, bench_single_call);
criterion_main!(benches);
