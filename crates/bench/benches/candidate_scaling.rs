//! Candidate-generation and k-NN scaling: grid vs the seed's brute force at
//! catalog sizes 10³–10⁵ (10⁶ runs in the `candidate_scaling_report` binary,
//! which also writes `BENCH_candidates.json`; it is kept out of the
//! criterion path so `cargo test`'s one-shot bench smoke stays fast).
//!
//! Two measurements per size, both against the restaurant category (the
//! largest, 3/8 of the catalog):
//!
//! * `knn`: the 16 nearest POIs to a query point — the `ADD`/`REPLACE` hot
//!   path. Brute is the seed implementation (full scan + full sort).
//! * `pool`: candidate generation **plus the builder's ranking** — the
//!   `GENERATE`/build hot path. Brute ranks the whole category (what
//!   `BruteForceCandidates` hands the builder); grid ranks an exact-k
//!   64-candidate pool.
//!
//! Set `GT_CANDIDATE_SCALING_SMOKE=1` to restrict to the 10³ catalog — the
//! CI invocation that proves the scaling path compiles and runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel_bench::candidates::{
    brute_force_k_nearest, brute_force_pool, grid_pool, query_points, rank_candidates,
    scaling_catalog, CI_TAKE, KNN_K, METRIC, POOL_SIZE,
};
use grouptravel_dataset::Category;

fn sizes() -> Vec<usize> {
    if std::env::var_os("GT_CANDIDATE_SCALING_SMOKE").is_some() {
        vec![1_000]
    } else {
        vec![1_000, 10_000, 100_000]
    }
}

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scaling/knn");
    group.sample_size(10);
    for size in sizes() {
        let catalog = scaling_catalog(size, 0xC0FFEE ^ size as u64);
        let queries = query_points(&catalog, 64);
        let _ = catalog.spatial(); // primed, as the engine does at registration
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("grid", size), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % queries.len();
                catalog.k_nearest_in_category(
                    &queries[cursor],
                    Category::Restaurant,
                    KNN_K,
                    METRIC,
                    &[],
                )
            });
        });
        group.bench_function(BenchmarkId::new("brute", size), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % queries.len();
                brute_force_k_nearest(
                    &catalog,
                    &queries[cursor],
                    Category::Restaurant,
                    KNN_K,
                    METRIC,
                    &[],
                )
            });
        });
    }
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_scaling/pool");
    group.sample_size(10);
    for size in sizes() {
        let catalog = scaling_catalog(size, 0xC0FFEE ^ size as u64);
        let queries = query_points(&catalog, 64);
        let _ = catalog.spatial();
        let mut cursor = 0usize;
        group.bench_function(BenchmarkId::new("grid", size), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % queries.len();
                let q = &queries[cursor];
                let pool = grid_pool(&catalog, q, Category::Restaurant, POOL_SIZE);
                rank_candidates(&pool, q, CI_TAKE).len()
            });
        });
        group.bench_function(BenchmarkId::new("brute", size), |b| {
            b.iter(|| {
                cursor = (cursor + 1) % queries.len();
                let q = &queries[cursor];
                let pool = brute_force_pool(&catalog, Category::Restaurant);
                rank_candidates(&pool, q, CI_TAKE).len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_knn, bench_pool);
criterion_main!(benches);
