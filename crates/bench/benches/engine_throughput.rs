//! Serving-engine throughput: packages/sec for cold (empty model cache) vs.
//! warm (cached clustering + vectorizer) builds at batch sizes 1, 8 and 64.
//!
//! The cold path retrains fuzzy c-means on the first request of each (city,
//! configuration) pair; the warm path reuses it. The delta between the two
//! groups is exactly the amortization the engine exists to provide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel::prelude::*;
use grouptravel_engine::{Engine, EngineConfig, PackageRequest};

const BATCH_SIZES: [usize; 3] = [1, 8, 64];

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn engine_with_paris() -> Engine {
    let engine = Engine::new(EngineConfig::fast());
    engine
        .register_catalog(paris_catalog())
        .expect("catalog registers");
    engine
}

/// A batch of `size` requests; `fcm_seed` selects the clustering cache key
/// (same seed → warm after the first build, fresh seed → cold).
fn batch(engine: &Engine, size: usize, salt: u64, fcm_seed: u64) -> Vec<PackageRequest> {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    (0..size as u64)
        .map(|i| {
            let mut groups = SyntheticGroupGenerator::new(schema, salt.wrapping_mul(10_000) + i);
            let profile = groups
                .group(GroupSize::Small, Uniformity::Uniform)
                .profile(ConsensusMethod::pairwise_disagreement());
            PackageRequest {
                session_id: salt.wrapping_mul(10_000) + i,
                city: "Paris".to_string(),
                profile,
                query: GroupQuery::paper_default(),
                config: BuildConfig {
                    seed: fcm_seed,
                    ..BuildConfig::default()
                },
            }
        })
        .collect()
}

/// Cold path: one long-lived engine (catalog registration/LDA is a
/// deploy-time cost and stays outside the timed section), but every
/// iteration uses a fresh clustering seed, so its cache key has never been
/// served and the batch pays one full fuzzy-c-means training.
fn bench_cold(c: &mut Criterion) {
    let engine = engine_with_paris();
    let mut group = c.benchmark_group("engine/cold");
    group.sample_size(10);
    for size in BATCH_SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut fcm_seed = size as u64 * 1_000_000;
            b.iter(|| {
                fcm_seed += 1;
                let trainings_before = engine.stats().fcm_trainings;
                let responses = engine.serve_batch(batch(&engine, size, 7, fcm_seed));
                assert!(responses.iter().all(|r| r.outcome.is_ok()));
                // Checked via the monotonic counter, not per-response flags:
                // with multi-threaded batches, which request observes the
                // miss is racy, but a fresh seed must train at least once.
                assert!(
                    engine.stats().fcm_trainings > trainings_before,
                    "cold batch must run a clustering"
                );
                responses
            });
        });
    }
    group.finish();
}

/// Warm path: one long-lived engine; the clustering cache is primed before
/// timing, every measured batch reuses the models.
fn bench_warm(c: &mut Criterion) {
    let engine = engine_with_paris();
    // Prime the cache for the configuration the batches use.
    let primed = engine.serve_batch(batch(&engine, 1, 1, 42));
    assert!(primed[0].outcome.is_ok());

    let mut group = c.benchmark_group("engine/warm");
    group.sample_size(10);
    for size in BATCH_SIZES {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut salt = 100;
            b.iter(|| {
                salt += 1;
                let responses = engine.serve_batch(batch(&engine, size, salt, 42));
                assert!(responses.iter().all(|r| r.clustering_cache_hit));
                responses
            });
        });
    }
    group.finish();

    let stats = engine.stats();
    println!(
        "warm engine after benching: {} requests, {} FCM trainings, {} cache hits",
        stats.requests, stats.fcm_trainings, stats.clustering_cache_hits
    );
}

criterion_group!(benches, bench_cold, bench_warm);
criterion_main!(benches);
