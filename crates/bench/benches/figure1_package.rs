//! Figure 1 / Figure 2 bench — the end-to-end cost of producing the paper's
//! headline artefact: a personalized 5-day Paris package, from consensus
//! aggregation through fuzzy clustering to composite-item assembly, including
//! the budget-constrained query of the introduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel::prelude::*;
use grouptravel_bench::{group_and_profile, synthetic_world};
use std::hint::black_box;

fn bench_figure1_package(c: &mut Criterion) {
    let world = synthetic_world();
    let (group, _) = group_and_profile(
        &world,
        GroupSize::Small,
        Uniformity::Uniform,
        ConsensusMethod::pairwise_disagreement(),
        0xf1,
    );

    let mut bench = c.benchmark_group("figure1/end_to_end");
    bench.sample_size(10);
    for (label, query) in [
        ("unlimited_budget", GroupQuery::paper_default()),
        ("100_dollar_budget", GroupQuery::figure1()),
    ] {
        bench.bench_with_input(BenchmarkId::from_parameter(label), &query, |b, query| {
            b.iter(|| {
                // Consensus aggregation is part of the measured pipeline.
                let profile = group.profile(ConsensusMethod::pairwise_disagreement());
                world
                    .session
                    .build_package(black_box(&profile), query, &BuildConfig::default())
                    .expect("figure 1 package")
            });
        });
    }
    bench.finish();
}

fn bench_k_scaling(c: &mut Criterion) {
    let world = synthetic_world();
    let (_, profile) = group_and_profile(
        &world,
        GroupSize::Small,
        Uniformity::Uniform,
        ConsensusMethod::average_preference(),
        0xf2,
    );
    let query = GroupQuery::paper_default();

    let mut bench = c.benchmark_group("figure1/k_scaling");
    bench.sample_size(10);
    for k in [2usize, 5, 10] {
        bench.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let config = BuildConfig::with_k(k);
            b.iter(|| {
                world
                    .session
                    .build_package(black_box(&profile), &query, &config)
                    .expect("package")
            });
        });
    }
    bench.finish();
}

criterion_group!(benches, bench_figure1_package, bench_k_scaling);
criterion_main!(benches);
