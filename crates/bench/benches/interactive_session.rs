//! Interactive-session latency: one whole group interaction — a package
//! build followed by 8 customization steps — cold (fresh clustering cache
//! key) vs. warm (primed cache).
//!
//! Recorded alongside `engine_throughput`: throughput measures independent
//! one-shot builds, this bench measures the multi-step session flow the
//! paper's §3.3 interaction loop produces. Customization steps never
//! cluster, so the cold/warm delta isolates exactly the one fuzzy-c-means
//! training the first build of a cold key pays.
//!
//! A second pair of benches isolates CUSTOMIZE itself on a full-size city
//! (600 POIs, categories larger than the engine's 64-POI pool floor):
//! `GENERATE` + `REPLACE` steps through the grid-backed candidate provider
//! versus the seed's brute-force provider.

use criterion::{criterion_group, criterion_main, Criterion};
use grouptravel::prelude::*;
use grouptravel::{apply_op, BruteForceCandidates, CandidateProvider};
use grouptravel_engine::{CommandRequest, Engine, EngineConfig, GridCandidates, SessionCommand};

const CUSTOMIZATION_STEPS: usize = 8;

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn engine_with_paris() -> Engine {
    let engine = Engine::new(EngineConfig::fast());
    engine
        .register_catalog(paris_catalog())
        .expect("catalog registers");
    engine
}

/// Runs one full session: build, 8 customization steps (generate/delete —
/// expressible without reading build output), batch refinement, end.
/// Returns the number of successful commands.
fn run_session(engine: &Engine, session: u64, fcm_seed: u64) -> usize {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let group =
        SyntheticGroupGenerator::new(schema, session).group(GroupSize::Small, Uniformity::Uniform);
    let bbox = engine
        .registry()
        .get("Paris")
        .unwrap()
        .catalog()
        .bounding_box()
        .unwrap();
    let config = BuildConfig {
        seed: fcm_seed,
        ..BuildConfig::default()
    };

    let mut commands = vec![CommandRequest::new(
        session,
        SessionCommand::build_for_group(
            "Paris",
            group,
            ConsensusMethod::pairwise_disagreement(),
            GroupQuery::paper_default(),
            config,
        ),
    )];
    for step in 0..CUSTOMIZATION_STEPS {
        let op = if step % 2 == 0 {
            let f = (step / 2) as f64 * 0.15;
            CustomizationOp::Generate {
                rectangle: Rectangle::new(
                    bbox.min_lon + bbox.lon_span() * f,
                    bbox.max_lat - bbox.lat_span() * f,
                    bbox.lon_span() * 0.5,
                    bbox.lat_span() * 0.5,
                ),
            }
        } else {
            CustomizationOp::DeleteCi { ci_index: 0 }
        };
        commands.push(CommandRequest::from_member(
            session,
            step as u64,
            SessionCommand::Customize(op),
        ));
    }
    commands.push(CommandRequest::new(
        session,
        SessionCommand::Refine(RefinementStrategy::Batch),
    ));
    commands.push(CommandRequest::new(session, SessionCommand::End));

    commands
        .iter()
        .map(|c| engine.serve_command(c))
        .filter(|r| r.outcome.is_ok())
        .count()
}

/// Cold: every iteration uses a fresh clustering seed, so the session's
/// build pays one full fuzzy-c-means training.
fn bench_cold(c: &mut Criterion) {
    let engine = engine_with_paris();
    let mut group = c.benchmark_group("interactive_session/cold");
    group.sample_size(10);
    let mut fcm_seed = 5_000_000u64;
    let mut session = 0u64;
    group.bench_function("build+8steps", |b| {
        b.iter(|| {
            fcm_seed += 1;
            session += 1;
            let trainings_before = engine.stats().fcm_trainings;
            let ok = run_session(&engine, session, fcm_seed);
            assert_eq!(ok, CUSTOMIZATION_STEPS + 3, "every command must succeed");
            assert!(
                engine.stats().fcm_trainings > trainings_before,
                "a cold session must run one clustering"
            );
            ok
        });
    });
    group.finish();
}

/// Warm: the clustering cache is primed for the seed every session reuses;
/// no step of the measured session trains anything.
fn bench_warm(c: &mut Criterion) {
    let engine = engine_with_paris();
    run_session(&engine, 1, 42); // prime the (catalog, config) cache key
    let trainings_primed = engine.stats().fcm_trainings;

    let mut group = c.benchmark_group("interactive_session/warm");
    group.sample_size(10);
    let mut session = 1_000u64;
    group.bench_function("build+8steps", |b| {
        b.iter(|| {
            session += 1;
            let ok = run_session(&engine, session, 42);
            assert_eq!(ok, CUSTOMIZATION_STEPS + 3, "every command must succeed");
            ok
        });
    });
    group.finish();

    assert_eq!(
        engine.stats().fcm_trainings,
        trainings_primed,
        "warm sessions must never retrain"
    );
    let stats = engine.stats();
    println!(
        "warm engine after benching: {} commands ({} builds, {} customizations, {} refinements), {} FCM trainings",
        stats.commands.total(),
        stats.commands.builds,
        stats.commands.customizations,
        stats.commands.refinements,
        stats.fcm_trainings
    );
}

/// Applies one `GENERATE` and one `REPLACE` per iteration through the given
/// provider against a prebuilt package on a full-size city, returning the
/// package length (kept growing/shrinking in balance by a `DeleteCi`).
#[allow(clippy::too_many_arguments)]
fn customize_round(
    entry: &grouptravel_engine::CityEntry,
    metric: grouptravel_geo::DistanceMetric,
    bbox: &grouptravel_geo::BoundingBox,
    provider: &dyn CandidateProvider,
    package: &mut TravelPackage,
    profile: &GroupProfile,
    query: &GroupQuery,
    step: usize,
) -> usize {
    let f = (step % 5) as f64 * 0.12;
    let ops = [
        CustomizationOp::Generate {
            rectangle: Rectangle::new(
                bbox.min_lon + bbox.lon_span() * f,
                bbox.max_lat - bbox.lat_span() * f,
                bbox.lon_span() * 0.4,
                bbox.lat_span() * 0.4,
            ),
        },
        CustomizationOp::Replace {
            ci_index: 0,
            poi: package.get(0).unwrap().poi_ids()[step % package.get(0).unwrap().len()],
        },
        CustomizationOp::DeleteCi {
            ci_index: package.len() - 1,
        },
    ];
    for op in &ops {
        apply_op(
            entry.catalog(),
            entry.vectorizer(),
            metric,
            provider,
            package,
            op,
            profile,
            query,
            &ObjectiveWeights::default(),
        )
        .expect("customize op applies");
    }
    package.len()
}

/// CUSTOMIZE steps on a TourPedia-scale city (2 000 POIs — the paper's
/// cities run to thousands; categories far exceed the 64-POI pool floor, so
/// grid pools are genuinely bounded): grid-backed vs brute-force candidate
/// provider.
fn bench_customize_grid_vs_brute(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig::fast());
    let catalog = SyntheticCityGenerator::new(
        CitySpec::paris(),
        SyntheticCityConfig {
            counts: [250, 150, 800, 800],
            seed: 23,
            ..SyntheticCityConfig::default()
        },
    )
    .generate();
    engine.register_catalog(catalog).expect("catalog registers");
    let schema = engine.profile_schema("Paris").unwrap();
    let profile = SyntheticGroupGenerator::new(schema, 11)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    let query = GroupQuery::paper_default();
    let built = engine.serve_command(&CommandRequest::new(
        1,
        SessionCommand::build("Paris", profile.clone(), query, BuildConfig::default()),
    ));
    let package = built.package().expect("build succeeds").clone();
    let entry = engine.registry().get("Paris").unwrap();
    let bbox = entry.catalog().bounding_box().unwrap();

    let mut group = c.benchmark_group("interactive_session/customize");
    group.sample_size(10);
    let config = *engine.config();
    let grid = GridCandidates::new(
        &entry,
        config.min_candidate_pool,
        config.candidate_oversample,
        config.metric,
    );
    let mut step = 0usize;
    let mut working = package.clone();
    group.bench_function("generate+replace/grid", |b| {
        b.iter(|| {
            step += 1;
            customize_round(
                &entry,
                config.metric,
                &bbox,
                &grid,
                &mut working,
                &profile,
                &query,
                step,
            )
        });
    });
    let mut working = package.clone();
    group.bench_function("generate+replace/brute", |b| {
        b.iter(|| {
            step += 1;
            customize_round(
                &entry,
                config.metric,
                &bbox,
                &BruteForceCandidates,
                &mut working,
                &profile,
                &query,
                step,
            )
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm,
    bench_customize_grid_vs_brute
);
criterion_main!(benches);
