//! Interactive-session latency: one whole group interaction — a package
//! build followed by 8 customization steps — cold (fresh clustering cache
//! key) vs. warm (primed cache).
//!
//! Recorded alongside `engine_throughput`: throughput measures independent
//! one-shot builds, this bench measures the multi-step session flow the
//! paper's §3.3 interaction loop produces. Customization steps never
//! cluster, so the cold/warm delta isolates exactly the one fuzzy-c-means
//! training the first build of a cold key pays.

use criterion::{criterion_group, criterion_main, Criterion};
use grouptravel::prelude::*;
use grouptravel_engine::{CommandRequest, Engine, EngineConfig, SessionCommand};

const CUSTOMIZATION_STEPS: usize = 8;

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn engine_with_paris() -> Engine {
    let engine = Engine::new(EngineConfig::fast());
    engine
        .register_catalog(paris_catalog())
        .expect("catalog registers");
    engine
}

/// Runs one full session: build, 8 customization steps (generate/delete —
/// expressible without reading build output), batch refinement, end.
/// Returns the number of successful commands.
fn run_session(engine: &Engine, session: u64, fcm_seed: u64) -> usize {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let group =
        SyntheticGroupGenerator::new(schema, session).group(GroupSize::Small, Uniformity::Uniform);
    let bbox = engine
        .registry()
        .get("Paris")
        .unwrap()
        .catalog()
        .bounding_box()
        .unwrap();
    let config = BuildConfig {
        seed: fcm_seed,
        ..BuildConfig::default()
    };

    let mut commands = vec![CommandRequest::new(
        session,
        SessionCommand::build_for_group(
            "Paris",
            group,
            ConsensusMethod::pairwise_disagreement(),
            GroupQuery::paper_default(),
            config,
        ),
    )];
    for step in 0..CUSTOMIZATION_STEPS {
        let op = if step % 2 == 0 {
            let f = (step / 2) as f64 * 0.15;
            CustomizationOp::Generate {
                rectangle: Rectangle::new(
                    bbox.min_lon + bbox.lon_span() * f,
                    bbox.max_lat - bbox.lat_span() * f,
                    bbox.lon_span() * 0.5,
                    bbox.lat_span() * 0.5,
                ),
            }
        } else {
            CustomizationOp::DeleteCi { ci_index: 0 }
        };
        commands.push(CommandRequest::from_member(
            session,
            step as u64,
            SessionCommand::Customize(op),
        ));
    }
    commands.push(CommandRequest::new(
        session,
        SessionCommand::Refine(RefinementStrategy::Batch),
    ));
    commands.push(CommandRequest::new(session, SessionCommand::End));

    commands
        .iter()
        .map(|c| engine.serve_command(c))
        .filter(|r| r.outcome.is_ok())
        .count()
}

/// Cold: every iteration uses a fresh clustering seed, so the session's
/// build pays one full fuzzy-c-means training.
fn bench_cold(c: &mut Criterion) {
    let engine = engine_with_paris();
    let mut group = c.benchmark_group("interactive_session/cold");
    group.sample_size(10);
    let mut fcm_seed = 5_000_000u64;
    let mut session = 0u64;
    group.bench_function("build+8steps", |b| {
        b.iter(|| {
            fcm_seed += 1;
            session += 1;
            let trainings_before = engine.stats().fcm_trainings;
            let ok = run_session(&engine, session, fcm_seed);
            assert_eq!(ok, CUSTOMIZATION_STEPS + 3, "every command must succeed");
            assert!(
                engine.stats().fcm_trainings > trainings_before,
                "a cold session must run one clustering"
            );
            ok
        });
    });
    group.finish();
}

/// Warm: the clustering cache is primed for the seed every session reuses;
/// no step of the measured session trains anything.
fn bench_warm(c: &mut Criterion) {
    let engine = engine_with_paris();
    run_session(&engine, 1, 42); // prime the (catalog, config) cache key
    let trainings_primed = engine.stats().fcm_trainings;

    let mut group = c.benchmark_group("interactive_session/warm");
    group.sample_size(10);
    let mut session = 1_000u64;
    group.bench_function("build+8steps", |b| {
        b.iter(|| {
            session += 1;
            let ok = run_session(&engine, session, 42);
            assert_eq!(ok, CUSTOMIZATION_STEPS + 3, "every command must succeed");
            ok
        });
    });
    group.finish();

    assert_eq!(
        engine.stats().fcm_trainings,
        trainings_primed,
        "warm sessions must never retrain"
    );
    let stats = engine.stats();
    println!(
        "warm engine after benching: {} commands ({} builds, {} customizations, {} refinements), {} FCM trainings",
        stats.commands.total(),
        stats.commands.builds,
        stats.commands.customizations,
        stats.commands.refinements,
        stats.fcm_trainings
    );
}

criterion_group!(benches, bench_cold, bench_warm);
criterion_main!(benches);
