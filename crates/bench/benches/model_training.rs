//! Model-training scaling: the flat FCM/LDA hot paths vs the seed's
//! nested-`Vec` implementations, across point-set and corpus sizes (the
//! largest sizes run in the `model_training_report` binary, which also
//! writes `BENCH_models.json`; they are kept out of the criterion path so
//! `cargo test`'s one-shot bench smoke stays fast).
//!
//! Two measurements per size:
//!
//! * `fcm`: one full fuzzy-c-means fit over a synthetic city's POI
//!   locations — the cold-build clustering cost. Sweep count is pinned
//!   (`tolerance_km: 0.0`), so seed and flat runs do identical algorithmic
//!   work.
//! * `lda`: one full collapsed-Gibbs training over a synthetic tag corpus —
//!   the cold-build vectorizer cost.
//!
//! Set `GT_MODEL_TRAINING_SMOKE=1` to restrict to the smallest sizes — the
//! CI invocation that proves the measurement pipeline compiles and runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel_bench::models::{
    block_lda_config, fcm_config, lda_config, training_corpus, training_points,
};
use grouptravel_cluster::{reference_fit, FuzzyCMeans};
use grouptravel_pool::WorkerPool;
use grouptravel_topics::{reference_train, LdaModel};

fn smoke() -> bool {
    std::env::var_os("GT_MODEL_TRAINING_SMOKE").is_some()
}

fn fcm_sizes() -> Vec<usize> {
    if smoke() {
        vec![500]
    } else {
        vec![500, 2_000, 10_000]
    }
}

fn lda_sizes() -> Vec<usize> {
    if smoke() {
        vec![200]
    } else {
        vec![200, 1_000, 4_000]
    }
}

fn bench_fcm(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training/fcm");
    group.sample_size(10);
    for size in fcm_sizes() {
        let points = training_points(size, 0xF00D ^ size as u64);
        let config = fcm_config(7);
        let solver = FuzzyCMeans::new(config);
        group.bench_function(BenchmarkId::new("flat", size), |b| {
            b.iter(|| solver.fit(&points).unwrap());
        });
        group.bench_function(BenchmarkId::new("seed", size), |b| {
            b.iter(|| reference_fit(&config, &points).unwrap());
        });
    }
    group.finish();
}

fn bench_lda(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_training/lda");
    group.sample_size(10);
    for size in lda_sizes() {
        let (encoded, vocab) = training_corpus(size, 0xBEEF ^ size as u64);
        let config = lda_config(11);
        group.bench_function(BenchmarkId::new("flat", size), |b| {
            b.iter(|| LdaModel::train(&encoded, &vocab, config).unwrap());
        });
        group.bench_function(BenchmarkId::new("seed", size), |b| {
            b.iter(|| reference_train(&encoded, &vocab, config).unwrap());
        });
    }
    group.finish();
}

fn thread_widths() -> Vec<usize> {
    if smoke() {
        vec![1, 2]
    } else {
        vec![1, 2, 4, 8]
    }
}

fn bench_threads(c: &mut Criterion) {
    // The deterministic parallel trainers across pool widths (width 1 is
    // the sequential path, no pool). The full 1/2/4/8 sweep over the
    // largest sizes lives in the model_training_report binary.
    let mut group = c.benchmark_group("model_training/threads");
    group.sample_size(10);
    let points = training_points(2_000, 0xF00D ^ 2_000);
    let solver = FuzzyCMeans::new(fcm_config(7));
    let (encoded, vocab) = training_corpus(1_000, 0xBEEF ^ 1_000);
    let lda = block_lda_config(11);
    for threads in thread_widths() {
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        let pool = pool.as_ref();
        group.bench_function(BenchmarkId::new("fcm", threads), |b| {
            b.iter(|| solver.fit_on(&points, pool).unwrap());
        });
        group.bench_function(BenchmarkId::new("lda-block", threads), |b| {
            b.iter(|| LdaModel::train_on(&encoded, &vocab, lda, pool).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fcm, bench_lda, bench_threads);
criterion_main!(benches);
