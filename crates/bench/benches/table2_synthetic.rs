//! Table 2 bench — the synthetic experiment's inner loop: aggregate a group
//! profile with each consensus method, build the 5-CI package, and measure
//! the three optimization dimensions, for every group shape the table
//! covers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel::prelude::*;
use grouptravel_bench::{bench_scale, group_and_profile, synthetic_world};
use grouptravel_experiments::table2;
use std::hint::black_box;

fn bench_table2_cell(c: &mut Criterion) {
    let world = synthetic_world();
    let query = GroupQuery::paper_default();
    let config = world.build_config(7);

    let mut group = c.benchmark_group("table2/build_and_measure");
    group.sample_size(10);
    for uniformity in Uniformity::ALL {
        for size in [GroupSize::Small, GroupSize::Medium] {
            for method in ConsensusMethod::paper_variants() {
                let (_, profile) =
                    group_and_profile(&world, size, uniformity, method, size.member_count() as u64);
                let id = format!("{}/{}/{}", uniformity.name(), size.name(), method.name());
                group.bench_with_input(BenchmarkId::from_parameter(id), &profile, |b, profile| {
                    b.iter(|| {
                        let package = world
                            .session
                            .build_package(black_box(profile), &query, &config)
                            .expect("package");
                        world.session.measure(&package, profile)
                    });
                });
            }
        }
    }
    group.finish();
}

fn bench_table2_full(c: &mut Criterion) {
    let world = synthetic_world();
    let mut group = c.benchmark_group("table2/full_table");
    group.sample_size(10);
    group.bench_function(
        BenchmarkId::from_parameter(format!("{} groups per cell", bench_scale().groups_per_cell)),
        |b| {
            b.iter(|| {
                let records = table2::collect_records(&world);
                table2::from_records(black_box(&records))
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_table2_cell, bench_table2_full);
criterion_main!(benches);
