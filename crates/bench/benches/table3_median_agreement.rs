//! Table 3 bench — median-user extraction and the agreement computation
//! between the median user's package and the group's package.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel::prelude::*;
use grouptravel_bench::{group_and_profile, synthetic_world};
use grouptravel_experiments::{table2, table3};
use std::hint::black_box;

fn bench_median_user(c: &mut Criterion) {
    let world = synthetic_world();
    let mut group_bench = c.benchmark_group("table3/median_user");
    group_bench.sample_size(20);
    for size in GroupSize::ALL {
        let (group, _) = group_and_profile(
            &world,
            size,
            Uniformity::NonUniform,
            ConsensusMethod::least_misery(),
            3,
        );
        group_bench.bench_with_input(
            BenchmarkId::from_parameter(size.name()),
            &group,
            |b, group| b.iter(|| black_box(group).median_user().cloned()),
        );
    }
    group_bench.finish();
}

fn bench_table3_from_records(c: &mut Criterion) {
    let world = synthetic_world();
    let records = table2::collect_records(&world);
    let mut group = c.benchmark_group("table3/aggregate");
    group.sample_size(20);
    group.bench_function("from_records", |b| {
        b.iter(|| table3::from_records(black_box(&records)));
    });
    group.finish();
}

criterion_group!(benches, bench_median_user, bench_table3_from_records);
criterion_main!(benches);
