//! Table 4 bench — building the six study packages for a group and having a
//! simulated worker rate them (the independent evaluation's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grouptravel::prelude::*;
use grouptravel_bench::user_study_world;
use grouptravel_experiments::table4;
use grouptravel_study::{RatingModel, RatingModelConfig};
use std::hint::black_box;

fn bench_build_study_packages(c: &mut Criterion) {
    let world = user_study_world();
    let mut bench = c.benchmark_group("table4/build_six_packages");
    bench.sample_size(10);
    for uniformity in Uniformity::ALL {
        let group = world
            .platform
            .form_group(&world.population, GroupSize::Small, uniformity, 17)
            .expect("group");
        bench.bench_with_input(
            BenchmarkId::from_parameter(uniformity.name()),
            &group,
            |b, group| b.iter(|| table4::build_study_packages(&world, black_box(group), 5)),
        );
    }
    bench.finish();
}

fn bench_rating_loop(c: &mut Criterion) {
    let world = user_study_world();
    let group = world
        .platform
        .form_group(&world.population, GroupSize::Small, Uniformity::Uniform, 3)
        .expect("group");
    let packages = table4::build_study_packages(&world, &group, 5);
    let raters = table4::raters_for_group(&world, &group, 5);
    let query = GroupQuery::paper_default();

    let mut bench = c.benchmark_group("table4/rate_all_packages");
    bench.sample_size(20);
    bench.bench_function("one_worker_six_packages", |b| {
        b.iter(|| {
            let mut model = RatingModel::new(RatingModelConfig::default());
            let worker = raters[0];
            packages
                .iter()
                .map(|(_, p)| {
                    model.rate(
                        worker,
                        black_box(p),
                        world.paris.catalog(),
                        world.paris.vectorizer(),
                        &query,
                    )
                })
                .sum::<f64>()
        });
    });
    bench.finish();
}

criterion_group!(benches, bench_build_study_packages, bench_rating_loop);
criterion_main!(benches);
