//! Table 5 bench — pairwise package comparisons by simulated workers (the
//! comparative evaluation's inner loop) and the full scaled-down table.

use criterion::{criterion_group, criterion_main, Criterion};
use grouptravel::prelude::*;
use grouptravel_bench::user_study_world;
use grouptravel_experiments::{table4, table5};
use grouptravel_study::{RatingModel, RatingModelConfig};
use std::hint::black_box;

fn bench_pairwise_comparison(c: &mut Criterion) {
    let world = user_study_world();
    let group = world
        .platform
        .form_group(
            &world.population,
            GroupSize::Small,
            Uniformity::NonUniform,
            9,
        )
        .expect("group");
    let packages = table4::build_study_packages(&world, &group, 11);
    let raters = table4::raters_for_group(&world, &group, 5);
    let query = GroupQuery::paper_default();
    let first = &packages[2].1; // average preference
    let second = &packages[1].1; // non-personalized

    let mut bench = c.benchmark_group("table5/pairwise_choice");
    bench.sample_size(30);
    bench.bench_function("avtp_vs_nptp", |b| {
        b.iter(|| {
            let mut model = RatingModel::new(RatingModelConfig::default());
            raters
                .iter()
                .filter(|worker| {
                    model.prefers_first(
                        worker,
                        black_box(first),
                        black_box(second),
                        world.paris.catalog(),
                        world.paris.vectorizer(),
                        &query,
                    )
                })
                .count()
        });
    });
    bench.finish();
}

fn bench_table5_full(c: &mut Criterion) {
    let world = user_study_world();
    let mut bench = c.benchmark_group("table5/full_table");
    bench.sample_size(10);
    bench.bench_function("scaled_down", |b| {
        b.iter(|| table5::run(black_box(&world)));
    });
    bench.finish();
}

criterion_group!(benches, bench_pairwise_comparison, bench_table5_full);
criterion_main!(benches);
