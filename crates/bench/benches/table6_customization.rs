//! Table 6 bench — the customization study: simulated interactions, profile
//! refinement with both strategies, and rebuilding in Barcelona.

use criterion::{criterion_group, criterion_main, Criterion};
use grouptravel::prelude::*;
use grouptravel::{refine_batch, refine_individual, MemberInteractions};
use grouptravel_bench::user_study_world;
use grouptravel_experiments::table6;
use std::hint::black_box;

fn bench_refinement_strategies(c: &mut Criterion) {
    let world = user_study_world();
    let group = world
        .platform
        .form_group_sized(&world.population, 7, Uniformity::NonUniform, 21)
        .expect("group");
    let consensus = ConsensusMethod::pairwise_disagreement();
    let profile = group.profile(consensus);
    // A representative pooled interaction log: every member adds one
    // attraction and removes one restaurant.
    let attractions = world.paris.catalog().by_category(Category::Attraction);
    let restaurants = world.paris.catalog().by_category(Category::Restaurant);
    let interactions: Vec<MemberInteractions> = group
        .members()
        .iter()
        .enumerate()
        .map(|(idx, member)| {
            let mut record = MemberInteractions::new(member.user_id);
            record
                .log
                .record_add(attractions[idx % attractions.len()].id);
            record
                .log
                .record_remove(restaurants[idx % restaurants.len()].id);
            record
        })
        .collect();

    let mut bench = c.benchmark_group("table6/refinement");
    bench.sample_size(30);
    bench.bench_function("batch", |b| {
        b.iter(|| {
            refine_batch(
                black_box(&profile),
                black_box(&interactions),
                world.paris.catalog(),
                world.paris.vectorizer(),
            )
        });
    });
    bench.bench_function("individual", |b| {
        b.iter(|| {
            refine_individual(
                black_box(&group),
                consensus,
                black_box(&interactions),
                world.paris.catalog(),
                world.paris.vectorizer(),
            )
        });
    });
    bench.finish();

    let refined = refine_batch(
        &profile,
        &interactions,
        world.paris.catalog(),
        world.paris.vectorizer(),
    );
    let query = GroupQuery::paper_default();
    let mut bench = c.benchmark_group("table6/rebuild_in_barcelona");
    bench.sample_size(10);
    bench.bench_function("refined_profile", |b| {
        b.iter(|| {
            world
                .barcelona
                .build_package(black_box(&refined), &query, &BuildConfig::default())
                .expect("barcelona package")
        });
    });
    bench.finish();
}

fn bench_table6_full(c: &mut Criterion) {
    let world = user_study_world();
    let mut bench = c.benchmark_group("table6/full_study");
    bench.sample_size(10);
    bench.bench_function("scaled_down", |b| {
        b.iter(|| table6::run(black_box(&world)));
    });
    bench.finish();
}

criterion_group!(benches, bench_refinement_strategies, bench_table6_full);
criterion_main!(benches);
