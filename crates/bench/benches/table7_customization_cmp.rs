//! Table 7 bench — the comparative evaluation of the customization study
//! (batch vs individual vs non-personalized Barcelona packages).

use criterion::{criterion_group, criterion_main, Criterion};
use grouptravel_bench::user_study_world;
use grouptravel_experiments::{table6, table7};
use std::hint::black_box;

fn bench_table7(c: &mut Criterion) {
    let world = user_study_world();
    let study = table6::run_study(&world);

    let mut bench = c.benchmark_group("table7/comparative");
    bench.sample_size(10);
    bench.bench_function("from_existing_study", |b| {
        b.iter(|| table7::from_study(&world, black_box(&study)));
    });
    bench.bench_function("full_including_study", |b| {
        b.iter(|| table7::run(black_box(&world)));
    });
    bench.finish();
}

criterion_group!(benches, bench_table7);
criterion_main!(benches);
