//! Measures grid vs brute-force candidate generation and k-NN at catalog
//! sizes 10³/10⁴/10⁵/10⁶ and writes the numbers to `BENCH_candidates.json`
//! (first CLI argument overrides the output path).
//!
//! Run with `cargo run --release -p grouptravel-bench --bin
//! candidate_scaling_report`. The JSON is committed at the repository root
//! so the speed-ups travel with the code that produced them.

use grouptravel_bench::candidates::{measure_scale, ScalingRow, KNN_K, POOL_SIZE};

fn row_json(row: &ScalingRow) -> String {
    format!(
        "    {{\"pois\": {}, \"grid_build_ms\": {:.3}, \
         \"knn_brute_ns\": {:.0}, \"knn_grid_ns\": {:.0}, \"knn_speedup\": {:.1}, \
         \"pool_brute_ns\": {:.0}, \"pool_grid_ns\": {:.0}, \"pool_speedup\": {:.1}}}",
        row.pois,
        row.grid_build_ms,
        row.knn_brute_ns,
        row.knn_grid_ns,
        row.knn_speedup(),
        row.pool_brute_ns,
        row.pool_grid_ns,
        row.pool_speedup()
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_candidates.json".to_string());
    let queries_per_size = 64;
    let sizes = [1_000usize, 10_000, 100_000, 1_000_000];

    let mut rows = Vec::new();
    for &size in &sizes {
        eprintln!("measuring {size} POIs…");
        let row = measure_scale(size, queries_per_size);
        eprintln!(
            "  grid build {:.1} ms | knn {:.0} ns vs {:.0} ns ({:.1}x) | pool {:.0} ns vs {:.0} ns ({:.1}x)",
            row.grid_build_ms,
            row.knn_grid_ns,
            row.knn_brute_ns,
            row.knn_speedup(),
            row.pool_grid_ns,
            row.pool_brute_ns,
            row.pool_speedup()
        );
        rows.push(row);
    }

    let body: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"candidate_scaling\",\n  \"metric\": \"Equirectangular\",\n  \
         \"k\": {KNN_K},\n  \"pool\": {POOL_SIZE},\n  \"queries_per_size\": {queries_per_size},\n  \
         \"category\": \"Restaurant (3/8 of the catalog)\",\n  \"sizes\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_candidates.json");
    eprintln!("wrote {out_path}");
}
