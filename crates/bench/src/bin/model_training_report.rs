//! Measures flat vs seed model training (FCM fit and LDA train) across
//! point-set/corpus sizes and writes the numbers to `BENCH_models.json`
//! (first CLI argument overrides the output path).
//!
//! Run with `cargo run --release -p grouptravel-bench --bin
//! model_training_report`. The JSON is committed at the repository root so
//! the speed-ups travel with the code that produced them, in the same
//! before/after style as `BENCH_candidates.json`.

use grouptravel_bench::models::{
    measure_fcm, measure_lda, measure_threads, FcmRow, LdaRow, ThreadsRow, FCM_K, FCM_SWEEPS,
    LDA_SWEEPS, LDA_TOPICS,
};

fn fcm_row_json(row: &FcmRow) -> String {
    format!(
        "      {{\"points\": {}, \"seed_ms\": {:.3}, \"flat_ms\": {:.3}, \"speedup\": {:.1}}}",
        row.points,
        row.seed_ms,
        row.flat_ms,
        row.speedup()
    )
}

fn lda_row_json(row: &LdaRow) -> String {
    format!(
        "      {{\"docs\": {}, \"tokens\": {}, \"vocab\": {}, \"seed_ms\": {:.3}, \
         \"flat_ms\": {:.3}, \"speedup\": {:.1}}}",
        row.docs,
        row.tokens,
        row.vocab,
        row.seed_ms,
        row.flat_ms,
        row.speedup()
    )
}

fn threads_row_json(row: &ThreadsRow, base: &ThreadsRow) -> String {
    format!(
        "      {{\"threads\": {}, \"fcm_ms\": {:.3}, \"fcm_speedup\": {:.2}, \
         \"lda_ms\": {:.3}, \"lda_speedup\": {:.2}}}",
        row.threads,
        row.fcm_ms,
        base.fcm_ms / row.fcm_ms.max(1e-9),
        row.lda_ms,
        base.lda_ms / row.lda_ms.max(1e-9)
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_models.json".to_string());
    let repeats = 3;

    let mut fcm_rows = Vec::new();
    for &size in &[1_000usize, 5_000, 20_000] {
        eprintln!("FCM fit over {size} points…");
        let row = measure_fcm(size, repeats);
        eprintln!(
            "  flat {:.1} ms vs seed {:.1} ms ({:.1}x)",
            row.flat_ms,
            row.seed_ms,
            row.speedup()
        );
        fcm_rows.push(row);
    }

    let mut lda_rows = Vec::new();
    for &docs in &[2_000usize, 20_000, 100_000] {
        eprintln!("LDA train over {docs} documents…");
        let row = measure_lda(docs, repeats);
        eprintln!(
            "  flat {:.1} ms vs seed {:.1} ms ({:.1}x, {} tokens, vocab {})",
            row.flat_ms,
            row.seed_ms,
            row.speedup(),
            row.tokens,
            row.vocab
        );
        lda_rows.push(row);
    }

    // Threads axis: the deterministic parallel trainers (chunk-parallel
    // FCM, block-Gibbs LDA) at 1/2/4/8 pool workers over the largest
    // sizes. Speed-ups are relative to the 1-thread (sequential-path) row;
    // `host_cores` records how much hardware parallelism backed the run —
    // widths past it measure scheduling overhead, not speed-up.
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let threads_points = 20_000usize;
    let threads_docs = 100_000usize;
    let mut thread_rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        eprintln!("parallel training at {threads} thread(s)…");
        let row = measure_threads(threads_points, threads_docs, threads, repeats);
        eprintln!(
            "  fcm {:.1} ms, block-gibbs lda {:.1} ms",
            row.fcm_ms, row.lda_ms
        );
        thread_rows.push(row);
    }

    let fcm_body: Vec<String> = fcm_rows.iter().map(fcm_row_json).collect();
    let lda_body: Vec<String> = lda_rows.iter().map(lda_row_json).collect();
    let threads_body: Vec<String> = thread_rows
        .iter()
        .map(|row| threads_row_json(row, &thread_rows[0]))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"model_training\",\n  \
         \"fcm\": {{\n    \"k\": {FCM_K}, \"fuzzifier\": 2.0, \"sweeps\": {FCM_SWEEPS}, \
         \"metric\": \"Equirectangular\",\n    \"sizes\": [\n{}\n    ]\n  }},\n  \
         \"lda\": {{\n    \"topics\": {LDA_TOPICS}, \"sweeps\": {LDA_SWEEPS},\n    \
         \"sizes\": [\n{}\n    ]\n  }},\n  \
         \"threads\": {{\n    \"host_cores\": {host_cores}, \
         \"fcm_points\": {threads_points}, \"lda_docs\": {threads_docs}, \
         \"lda_sampler\": \"block_gibbs_v1\",\n    \
         \"widths\": [\n{}\n    ]\n  }}\n}}\n",
        fcm_body.join(",\n"),
        lda_body.join(",\n"),
        threads_body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_models.json");
    eprintln!("wrote {out_path}");
}
