//! Measures flat vs seed model training (FCM fit and LDA train) across
//! point-set/corpus sizes and writes the numbers to `BENCH_models.json`
//! (first CLI argument overrides the output path).
//!
//! Run with `cargo run --release -p grouptravel-bench --bin
//! model_training_report`. The JSON is committed at the repository root so
//! the speed-ups travel with the code that produced them, in the same
//! before/after style as `BENCH_candidates.json`.

use grouptravel_bench::models::{
    measure_fcm, measure_lda, FcmRow, LdaRow, FCM_K, FCM_SWEEPS, LDA_SWEEPS, LDA_TOPICS,
};

fn fcm_row_json(row: &FcmRow) -> String {
    format!(
        "      {{\"points\": {}, \"seed_ms\": {:.3}, \"flat_ms\": {:.3}, \"speedup\": {:.1}}}",
        row.points,
        row.seed_ms,
        row.flat_ms,
        row.speedup()
    )
}

fn lda_row_json(row: &LdaRow) -> String {
    format!(
        "      {{\"docs\": {}, \"tokens\": {}, \"vocab\": {}, \"seed_ms\": {:.3}, \
         \"flat_ms\": {:.3}, \"speedup\": {:.1}}}",
        row.docs,
        row.tokens,
        row.vocab,
        row.seed_ms,
        row.flat_ms,
        row.speedup()
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_models.json".to_string());
    let repeats = 3;

    let mut fcm_rows = Vec::new();
    for &size in &[1_000usize, 5_000, 20_000] {
        eprintln!("FCM fit over {size} points…");
        let row = measure_fcm(size, repeats);
        eprintln!(
            "  flat {:.1} ms vs seed {:.1} ms ({:.1}x)",
            row.flat_ms,
            row.seed_ms,
            row.speedup()
        );
        fcm_rows.push(row);
    }

    let mut lda_rows = Vec::new();
    for &docs in &[2_000usize, 20_000, 100_000] {
        eprintln!("LDA train over {docs} documents…");
        let row = measure_lda(docs, repeats);
        eprintln!(
            "  flat {:.1} ms vs seed {:.1} ms ({:.1}x, {} tokens, vocab {})",
            row.flat_ms,
            row.seed_ms,
            row.speedup(),
            row.tokens,
            row.vocab
        );
        lda_rows.push(row);
    }

    let fcm_body: Vec<String> = fcm_rows.iter().map(fcm_row_json).collect();
    let lda_body: Vec<String> = lda_rows.iter().map(lda_row_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"model_training\",\n  \
         \"fcm\": {{\n    \"k\": {FCM_K}, \"fuzzifier\": 2.0, \"sweeps\": {FCM_SWEEPS}, \
         \"metric\": \"Equirectangular\",\n    \"sizes\": [\n{}\n    ]\n  }},\n  \
         \"lda\": {{\n    \"topics\": {LDA_TOPICS}, \"sweeps\": {LDA_SWEEPS},\n    \
         \"sizes\": [\n{}\n    ]\n  }}\n}}\n",
        fcm_body.join(",\n"),
        lda_body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_models.json");
    eprintln!("wrote {out_path}");
}
