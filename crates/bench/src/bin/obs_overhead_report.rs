//! Measures what the observability spine costs on the hot path: warm
//! one-shot build throughput with metrics enabled (the default) vs. the
//! no-op registry (`metrics_enabled: false`) — same catalog, same warm
//! model substrate, so the delta is exactly the metric recording, span
//! timers, and slow-log comparisons.
//!
//! The two modes are measured in interleaved rounds and each mode keeps
//! its best round (peak throughput is far more stable than the mean under
//! scheduler noise). The spine's budget is <5% overhead; the measured
//! number lands in `BENCH_obs.json` (first CLI argument overrides the
//! output path). Run with `cargo run --release -p grouptravel-bench --bin
//! obs_overhead_report`. `GT_OBS_SMOKE=1` shrinks the request counts to a
//! CI-sized smoke run.

use grouptravel::prelude::*;
use grouptravel_engine::{Engine, EngineConfig, PackageRequest};
use std::time::Instant;

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn request_for(engine: &Engine, session_id: u64) -> PackageRequest {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let profile = SyntheticGroupGenerator::new(schema, session_id)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile,
        query: GroupQuery::paper_default(),
        config: BuildConfig {
            seed: 42,
            ..BuildConfig::default()
        },
    }
}

fn warm_engine(metrics_enabled: bool) -> Engine {
    let engine = Engine::new(EngineConfig {
        metrics_enabled,
        ..EngineConfig::fast()
    });
    engine.register_catalog(paris_catalog()).unwrap();
    // One build trains FCM + LDA; everything measured after is warm.
    let response = engine.serve(&request_for(&engine, 1));
    assert!(response.outcome.is_ok());
    engine
}

/// Serves `n` warm one-shot requests sequentially, returns requests/sec.
fn measure_round(engine: &Engine, base_session: u64, n: u64) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let response = engine.serve(&request_for(engine, base_session + i));
        assert!(response.outcome.is_ok());
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());
    let smoke = std::env::var("GT_OBS_SMOKE").is_ok();
    let warm_requests: u64 = if smoke { 32 } else { 1_500 };
    let rounds: u64 = if smoke { 2 } else { 5 };

    let instrumented = warm_engine(true);
    let baseline = warm_engine(false);
    assert!(
        baseline.metrics_registry().render_prometheus().is_empty(),
        "the baseline must run against the no-op registry"
    );

    let mut best_on: f64 = 0.0;
    let mut best_off: f64 = 0.0;
    for round in 0..rounds {
        let base = 10_000 + round * 2 * warm_requests;
        let on = measure_round(&instrumented, base, warm_requests);
        let off = measure_round(&baseline, base + warm_requests, warm_requests);
        eprintln!("round {round}: metrics on {on:.0} req/s, off {off:.0} req/s");
        best_on = best_on.max(on);
        best_off = best_off.max(off);
    }
    let overhead_percent = (1.0 - best_on / best_off) * 100.0;

    // Sanity: the instrumented engine really recorded what it served.
    let stats = instrumented.stats();
    assert_eq!(stats.build_latency.count, stats.requests);
    let scrape_bytes = instrumented.metrics_registry().render_prometheus().len();
    assert!(scrape_bytes > 0);

    let json = format!(
        "{{\n  \"bench\": \"obs_overhead\",\n  \"mode\": \"{}\",\n  \
         \"warm_requests_per_round\": {warm_requests},\n  \"rounds\": {rounds},\n  \
         \"metrics_on_rps\": {best_on:.1},\n  \"metrics_off_rps\": {best_off:.1},\n  \
         \"overhead_percent\": {overhead_percent:.2},\n  \"budget_percent\": 5.0,\n  \
         \"requests_recorded\": {},\n  \"scrape_bytes\": {scrape_bytes}\n}}\n",
        if smoke { "smoke" } else { "full" },
        stats.requests,
    );
    std::fs::write(&out_path, json).expect("write BENCH_obs.json");
    eprintln!(
        "wrote {out_path}: overhead {overhead_percent:.2}% \
         (budget 5%, on {best_on:.0} vs off {best_off:.0} req/s)"
    );
}
