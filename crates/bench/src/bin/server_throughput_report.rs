//! Measures requests/sec through the HTTP/JSON front-end vs. the
//! in-process engine — same engine instance, same catalog, same warm model
//! substrate, so the delta is exactly the wire: TCP connect, HTTP parse,
//! JSON encode/decode on both sides.
//!
//! Writes `BENCH_server.json` (first CLI argument overrides the output
//! path). Run with `cargo run --release -p grouptravel-bench --bin
//! server_throughput_report`. `GT_SERVER_THROUGHPUT_SMOKE=1` shrinks the
//! request counts to a CI-sized smoke run.

use grouptravel::prelude::*;
use grouptravel_engine::{Engine, EngineConfig, EngineRequest, EngineResponse, PackageRequest};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{RunningServer, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn request_for(engine: &Engine, session_id: u64, fcm_seed: u64) -> PackageRequest {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let profile = SyntheticGroupGenerator::new(schema, session_id)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile,
        query: GroupQuery::paper_default(),
        config: BuildConfig {
            seed: fcm_seed,
            ..BuildConfig::default()
        },
    }
}

/// Serves `n` warm one-shot requests in-process, returns requests/sec.
fn measure_in_process(engine: &Engine, n: u64) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let response = engine.serve(&request_for(engine, 10_000 + i, 42));
        assert!(response.outcome.is_ok());
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Serves `n` warm one-shot requests over HTTP from `clients` concurrent
/// client threads (connection per request), returns aggregate requests/sec.
fn measure_http(engine: &Engine, addr: std::net::SocketAddr, n: u64, clients: u64) -> f64 {
    let per_client = n / clients.max(1);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients.max(1) {
            let client = EngineClient::new(addr);
            let engine = &engine;
            scope.spawn(move || {
                for i in 0..per_client {
                    let request = request_for(engine, 50_000 + c * per_client + i, 42);
                    let response = client
                        .request(EngineRequest::Build {
                            request: Box::new(request),
                        })
                        .expect("transport works");
                    match response {
                        EngineResponse::Package { response } => {
                            assert!(response.outcome.is_ok());
                        }
                        other => panic!("expected Package, got {}", other.kind()),
                    }
                }
            });
        }
    });
    (per_client * clients.max(1)) as f64 / start.elapsed().as_secs_f64()
}

/// One cold build (fresh clustering seed), returns latency in microseconds.
fn measure_cold_once(engine: &Engine, client: Option<&EngineClient>, fcm_seed: u64) -> f64 {
    let request = request_for(engine, 90_000 + fcm_seed, fcm_seed);
    let start = Instant::now();
    match client {
        Some(client) => {
            let response = client
                .request(EngineRequest::Build {
                    request: Box::new(request),
                })
                .expect("transport works");
            assert!(matches!(response, EngineResponse::Package { .. }));
        }
        None => {
            let response = engine.serve(&request);
            assert!(response.outcome.is_ok());
        }
    }
    start.elapsed().as_secs_f64() * 1e6
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let smoke = std::env::var("GT_SERVER_THROUGHPUT_SMOKE").is_ok();
    let warm_requests: u64 = if smoke { 32 } else { 2_000 };
    let client_counts: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let engine = Arc::new(Engine::new(EngineConfig::fast()));
    engine.register_catalog(paris_catalog()).unwrap();
    let server = RunningServer::start(
        Arc::clone(&engine),
        ServerConfig {
            worker_threads: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());

    // Cold latencies first (each uses a fresh clustering seed).
    let cold_in_process_us = measure_cold_once(&engine, None, 7_001);
    let cold_http_us = measure_cold_once(&engine, Some(&client), 7_002);

    // Warm the cache for the measured configuration, then throughput.
    engine.serve(&request_for(&engine, 1, 42));
    let in_process_rps = measure_in_process(&engine, warm_requests);
    let mut http_rows = Vec::new();
    for &clients in client_counts {
        let rps = measure_http(&engine, server.addr(), warm_requests, clients);
        eprintln!(
            "http warm, {clients} client(s): {rps:.0} req/s \
             (in-process sequential: {in_process_rps:.0} req/s)"
        );
        http_rows.push(format!(
            "    {{\"clients\": {clients}, \"requests_per_sec\": {rps:.1}, \
             \"relative_to_in_process\": {:.3}}}",
            rps / in_process_rps
        ));
    }

    let stats = engine.stats();
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"mode\": \"{}\",\n  \
         \"warm_requests\": {warm_requests},\n  \
         \"in_process_warm_rps\": {in_process_rps:.1},\n  \
         \"cold_build_us\": {{\"in_process\": {cold_in_process_us:.0}, \"http\": {cold_http_us:.0}}},\n  \
         \"fcm_trainings\": {},\n  \"lda_trainings\": {},\n  \
         \"http_warm\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        stats.fcm_trainings,
        stats.lda_trainings,
        http_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_server.json");
    eprintln!("wrote {out_path}");
    server.stop();
}
