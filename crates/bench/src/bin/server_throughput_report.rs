//! Measures requests/sec through the HTTP/JSON front-end vs. the
//! in-process engine — same engine instance, same catalog, same warm model
//! substrate, so the delta is exactly the wire: HTTP parse and JSON
//! encode/decode on both sides (the client's keep-alive pool removes the
//! per-request TCP connect from the steady state).
//!
//! Also runs the idle-connection soak: a child process (this binary
//! re-exec'd with `--soak-client`) holds thousands of idle keep-alive
//! sockets against the reactor while the parent verifies the thread count
//! stays flat and the server stays responsive — the one-thread-per-
//! connection design this replaced could not pass it, and a single
//! process could not hold both socket ends of 10k connections under the
//! default fd limit.
//!
//! Writes `BENCH_server.json` (first CLI argument overrides the output
//! path). Run with `cargo run --release -p grouptravel-bench --bin
//! server_throughput_report`. `GT_SERVER_THROUGHPUT_SMOKE=1` shrinks the
//! request counts to a CI-sized smoke run (and skips the soak);
//! `GT_SERVER_SOAK_SMOKE=1` runs a reduced 1k-connection soak.

use grouptravel::prelude::*;
use grouptravel_engine::{
    binary, Engine, EngineConfig, EngineRequest, EngineResponse, PackageRequest, RequestEnvelope,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{Backend, RunningServer, ServerConfig, WireFormat};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn paris_catalog() -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(97)).generate()
}

fn request_for(engine: &Engine, session_id: u64, fcm_seed: u64) -> PackageRequest {
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let profile = SyntheticGroupGenerator::new(schema, session_id)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile,
        query: GroupQuery::paper_default(),
        config: BuildConfig {
            seed: fcm_seed,
            ..BuildConfig::default()
        },
    }
}

/// Serves `n` warm one-shot requests in-process, returns requests/sec.
/// Requests are generated before the clock starts: the bench measures
/// serving, not synthetic-profile generation.
fn measure_in_process(engine: &Engine, n: u64) -> f64 {
    let requests: Vec<PackageRequest> = (0..n)
        .map(|i| request_for(engine, 10_000 + i, 42))
        .collect();
    let start = Instant::now();
    for request in &requests {
        let response = engine.serve(request);
        assert!(response.outcome.is_ok());
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Serves `n` warm one-shot requests over HTTP from `clients` concurrent
/// client threads (each with its own kept-alive pooled connection),
/// returns aggregate requests/sec. Requests are pre-generated, as in
/// [`measure_in_process`].
fn measure_http(
    engine: &Engine,
    addr: std::net::SocketAddr,
    n: u64,
    clients: u64,
    format: WireFormat,
) -> f64 {
    let per_client = n / clients.max(1);
    let prepared: Vec<Vec<PackageRequest>> = (0..clients.max(1))
        .map(|c| {
            (0..per_client)
                .map(|i| request_for(engine, 50_000 + c * per_client + i, 42))
                .collect()
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for requests in prepared {
            let client = EngineClient::with_wire_format(addr, format);
            scope.spawn(move || {
                for request in requests {
                    let response = client
                        .request(EngineRequest::Build {
                            request: Box::new(request),
                        })
                        .expect("transport works");
                    match response {
                        EngineResponse::Package { response } => {
                            assert!(response.outcome.is_ok());
                        }
                        other => panic!("expected Package, got {}", other.kind()),
                    }
                }
            });
        }
    });
    (per_client * clients.max(1)) as f64 / start.elapsed().as_secs_f64()
}

/// Serves `n` warm requests pipelined in chunks over one connection:
/// every frame of a chunk is written before the first response is read,
/// amortizing the write/read turnaround. Returns requests/sec.
fn measure_http_pipelined(
    engine: &Engine,
    addr: std::net::SocketAddr,
    n: u64,
    chunk: usize,
) -> f64 {
    let client = EngineClient::new(addr);
    let requests: Vec<EngineRequest> = (0..n)
        .map(|i| EngineRequest::Build {
            request: Box::new(request_for(engine, 70_000 + i, 42)),
        })
        .collect();
    let start = Instant::now();
    for batch in requests.chunks(chunk) {
        let responses = client.pipeline(batch).expect("pipeline works");
        assert_eq!(responses.len(), batch.len());
        for response in responses {
            assert!(matches!(response, EngineResponse::Package { .. }));
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// The pre-reactor design, reproduced for the in-run A/B: the blocking
/// worker-pool backend with a fresh TCP connection per request (a new
/// `EngineClient` each iteration starts with an empty pool). Returns
/// requests/sec.
fn measure_http_legacy(engine: &Engine, addr: std::net::SocketAddr, n: u64) -> f64 {
    let requests: Vec<PackageRequest> = (0..n)
        .map(|i| request_for(engine, 60_000 + i, 42))
        .collect();
    let start = Instant::now();
    for request in requests {
        let client = EngineClient::new(addr);
        let response = client
            .request(EngineRequest::Build {
                request: Box::new(request),
            })
            .expect("transport works");
        assert!(matches!(response, EngineResponse::Package { .. }));
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// `GET /healthz` on one pooled connection, `n` times: the wire's floor —
/// no engine work, no profile JSON on either side. Requests/sec.
fn measure_http_floor(addr: std::net::SocketAddr, n: u64) -> f64 {
    let client = EngineClient::new(addr);
    let start = Instant::now();
    for _ in 0..n {
        let (status, _) = client.http("GET", "/healthz", None).expect("probe");
        assert_eq!(status, 200);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Serves `n` warm requests as `EngineRequest::Batch` frames of `chunk`
/// builds each: one HTTP exchange per chunk, engine-side fan-out — the
/// protocol's own amortization of the wire. Returns builds/sec.
fn measure_http_batched(engine: &Engine, addr: std::net::SocketAddr, n: u64, chunk: u64) -> f64 {
    let client = EngineClient::new(addr);
    let chunks: Vec<Vec<PackageRequest>> = (0..n)
        .map(|i| request_for(engine, 80_000 + i, 42))
        .collect::<Vec<_>>()
        .chunks(chunk as usize)
        .map(<[PackageRequest]>::to_vec)
        .collect();
    let start = Instant::now();
    for requests in chunks {
        let expected = requests.len();
        let responses = client.build_batch(requests).expect("batch works");
        assert_eq!(responses.len(), expected);
        for response in &responses {
            assert!(response.outcome.is_ok());
        }
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// One cold build (fresh clustering seed), returns latency in microseconds.
fn measure_cold_once(engine: &Engine, client: Option<&EngineClient>, fcm_seed: u64) -> f64 {
    let request = request_for(engine, 90_000 + fcm_seed, fcm_seed);
    let start = Instant::now();
    match client {
        Some(client) => {
            let response = client
                .request(EngineRequest::Build {
                    request: Box::new(request),
                })
                .expect("transport works");
            assert!(matches!(response, EngineResponse::Package { .. }));
        }
        None => {
            let response = engine.serve(&request);
            assert!(response.outcome.is_ok());
        }
    }
    start.elapsed().as_secs_f64() * 1e6
}

/// Threads of this process, from /proc/self/status (0 off Linux).
fn thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find_map(|l| l.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Child role: hold `n` idle connections to `addr`, report, wait for the
/// parent to say `done`, exit. Run in a separate process so the 10k
/// client-side fds don't share the server process's fd budget.
fn run_soak_client(addr: &str, n: usize) -> ! {
    let mut held = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while held.len() < n {
        match TcpStream::connect(addr) {
            Ok(stream) => held.push(stream),
            Err(_) => {
                // Accept backlog overflow under the connect flood: back
                // off briefly and keep going.
                attempts += 1;
                if attempts > 1000 {
                    println!("FAILED {} of {n}", held.len());
                    std::process::exit(1);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    println!("HELD {n}");
    std::io::stdout().flush().ok();
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line); // `done` or parent EOF
    drop(held);
    std::process::exit(0);
}

struct SoakResult {
    connections: usize,
    threads_before: u64,
    threads_during: u64,
    healthz_under_load_us: f64,
}

/// Parent side of the soak: spawn the child, wait until it holds every
/// connection, check thread count and responsiveness, release the child.
fn run_soak(engine: &Arc<Engine>, n: usize) -> SoakResult {
    let server = RunningServer::start(
        Arc::clone(engine),
        ServerConfig {
            backend: Backend::Reactor,
            worker_threads: 2,
            // The soak holds connections for seconds; don't reap them.
            keep_alive_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
    )
    .expect("bind the soak server");
    let threads_before = thread_count();

    let exe = std::env::current_exe().expect("own path");
    let mut child = std::process::Command::new(exe)
        .arg("--soak-client")
        .arg(server.addr().to_string())
        .arg(n.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn the soak client");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    child_out.read_line(&mut line).expect("child reports");
    assert!(
        line.starts_with("HELD"),
        "soak client failed to hold {n} connections: {line}"
    );

    let threads_during = thread_count();
    // Responsiveness with every idle connection parked.
    let client = EngineClient::new(server.addr());
    let start = Instant::now();
    let (status, _) = client.http("GET", "/healthz", None).expect("probe");
    let healthz_under_load_us = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(status, 200);

    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(b"done\n")
        .ok();
    child.wait().ok();
    server.stop();
    SoakResult {
        connections: n,
        threads_before,
        threads_during,
        healthz_under_load_us,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).is_some_and(|a| a == "--soak-client") {
        let addr = args.get(2).expect("--soak-client <addr> <n>");
        let n: usize = args
            .get(3)
            .and_then(|v| v.parse().ok())
            .expect("conn count");
        run_soak_client(addr, n);
    }

    let out_path = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let smoke = std::env::var("GT_SERVER_THROUGHPUT_SMOKE").is_ok();
    let soak_smoke = std::env::var("GT_SERVER_SOAK_SMOKE").is_ok();
    let warm_requests: u64 = if smoke { 32 } else { 2_000 };
    let client_counts: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    let engine = Arc::new(Engine::new(EngineConfig::fast()));
    engine.register_catalog(paris_catalog()).unwrap();
    let server = RunningServer::start(
        Arc::clone(&engine),
        ServerConfig {
            // Dispatch workers sized to the machine: engine work is
            // CPU-bound, so extra workers are scheduler churn, not
            // throughput.
            worker_threads: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());

    // Cold latencies first (each uses a fresh clustering seed).
    let cold_in_process_us = measure_cold_once(&engine, None, 7_001);
    let cold_http_us = measure_cold_once(&engine, Some(&client), 7_002);

    // Warm the cache for the measured configuration, then throughput.
    engine.serve(&request_for(&engine, 1, 42));
    let in_process_rps = measure_in_process(&engine, warm_requests);
    let mut http_rows = Vec::new();
    for &clients in client_counts {
        let rps = measure_http(
            &engine,
            server.addr(),
            warm_requests,
            clients,
            WireFormat::Json,
        );
        eprintln!(
            "http warm, {clients} client(s): {rps:.0} req/s \
             (in-process sequential: {in_process_rps:.0} req/s)"
        );
        http_rows.push(format!(
            "    {{\"clients\": {clients}, \"requests_per_sec\": {rps:.1}, \
             \"relative_to_in_process\": {:.3}}}",
            rps / in_process_rps
        ));
    }
    let pipelined_rps = measure_http_pipelined(&engine, server.addr(), warm_requests, 64);
    eprintln!("http warm, pipelined x64: {pipelined_rps:.0} req/s");
    let batched_rps = measure_http_batched(&engine, server.addr(), warm_requests, 64);
    eprintln!("http warm, batched x64: {batched_rps:.0} builds/s");
    let floor_rps = measure_http_floor(server.addr(), warm_requests);
    eprintln!("http healthz floor: {floor_rps:.0} req/s");

    // Per-format A/B at one client: the wire-format tax in isolation —
    // same server, same warm cache, only the envelope encoding differs.
    // Payload sizes come from a representative warm build: its request
    // envelope and the engine's actual response, encoded in each format.
    let mut format_rows = Vec::new();
    let mut format_rps = [0.0f64; 2];
    // Best-of-N with the formats alternating inside each trial: the box
    // this runs on has noisy neighbors, and interleaving keeps a load
    // spike from being charged to one format.
    let trials = if smoke { 1 } else { 3 };
    for _ in 0..trials {
        for (i, format) in [WireFormat::Json, WireFormat::Binary]
            .into_iter()
            .enumerate()
        {
            let rps = measure_http(&engine, server.addr(), warm_requests, 1, format);
            format_rps[i] = format_rps[i].max(rps);
        }
    }
    for (i, format) in [WireFormat::Json, WireFormat::Binary]
        .into_iter()
        .enumerate()
    {
        let rps = format_rps[i];
        let request_envelope = RequestEnvelope::new(EngineRequest::Build {
            request: Box::new(request_for(&engine, 1, 42)),
        });
        let (request_bytes, response_bytes) = match format {
            WireFormat::Json => {
                let request = serde_json::to_vec(&request_envelope).unwrap().len();
                let response = serde_json::to_vec(&engine.dispatch_envelope(request_envelope))
                    .unwrap()
                    .len();
                (request, response)
            }
            WireFormat::Binary => {
                let request = binary::encode(&request_envelope).len();
                let response = binary::encode(&engine.dispatch_envelope(request_envelope)).len();
                (request, response)
            }
        };
        let name = match format {
            WireFormat::Json => "json",
            WireFormat::Binary => "gtbf1",
        };
        eprintln!(
            "http warm, 1 client, {name}: {rps:.0} req/s \
             (request {request_bytes} B, response {response_bytes} B)"
        );
        format_rows.push(format!(
            "    {{\"format\": \"{name}\", \"warm_rps\": {rps:.1}, \
             \"request_bytes\": {request_bytes}, \"response_bytes\": {response_bytes}}}"
        ));
    }
    eprintln!(
        "gtbf1 vs json at 1 client: {:.2}x",
        format_rps[1] / format_rps[0]
    );

    // In-run A/B against the design this PR replaced: blocking backend,
    // connection per request — same engine, same warm cache, same machine
    // state, so the delta is the front-end and nothing else.
    let legacy_server = RunningServer::start(
        Arc::clone(&engine),
        ServerConfig {
            backend: Backend::Blocking,
            worker_threads: std::thread::available_parallelism()
                .map_or(2, std::num::NonZeroUsize::get)
                .min(8),
            ..ServerConfig::default()
        },
    )
    .expect("bind the legacy server");
    let legacy_rps = measure_http_legacy(&engine, legacy_server.addr(), warm_requests);
    eprintln!("http warm, legacy (blocking + connection/request): {legacy_rps:.0} req/s");
    legacy_server.stop();

    // The pool must actually be reusing connections, or the numbers above
    // measure the wrong thing.
    let keepalive_reuses = engine
        .metrics_registry()
        .counter("gt_http_keepalive_reuses_total", "", &[])
        .get();
    assert!(
        keepalive_reuses > 0,
        "the bench client must reuse kept-alive connections"
    );
    server.stop();

    // Idle-connection soak (Linux reactor only; the throughput smoke
    // skips it unless the reduced soak was asked for explicitly).
    let soak = if cfg!(target_os = "linux") && (!smoke || soak_smoke) {
        let conns = if soak_smoke { 1_000 } else { 10_000 };
        let result = run_soak(&engine, conns);
        eprintln!(
            "soak: {} idle connections, threads {} -> {}, healthz under load {:.0}us",
            result.connections,
            result.threads_before,
            result.threads_during,
            result.healthz_under_load_us
        );
        assert!(
            result.threads_during <= result.threads_before + 4,
            "idle connections must not spawn threads"
        );
        format!(
            "{{\"connections\": {}, \"threads_before\": {}, \"threads_during\": {}, \
             \"healthz_under_load_us\": {:.0}, \"passed\": true}}",
            result.connections,
            result.threads_before,
            result.threads_during,
            result.healthz_under_load_us
        )
    } else {
        "null".to_string()
    };

    let stats = engine.stats();
    let json = format!(
        "{{\n  \"bench\": \"server_throughput\",\n  \"mode\": \"{}\",\n  \
         \"warm_requests\": {warm_requests},\n  \
         \"in_process_warm_rps\": {in_process_rps:.1},\n  \
         \"cold_build_us\": {{\"in_process\": {cold_in_process_us:.0}, \"http\": {cold_http_us:.0}}},\n  \
         \"fcm_trainings\": {},\n  \"lda_trainings\": {},\n  \
         \"keepalive_reuses\": {keepalive_reuses},\n  \
         \"http_warm_pipelined_rps\": {pipelined_rps:.1},\n  \
         \"http_warm_batched_rps\": {batched_rps:.1},\n  \
         \"http_healthz_floor_rps\": {floor_rps:.1},\n  \
         \"http_warm_legacy_rps\": {legacy_rps:.1},\n  \
         \"idle_soak\": {soak},\n  \
         \"wire_formats\": [\n{}\n  ],\n  \
         \"http_warm\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        stats.fcm_trainings,
        stats.lda_trainings,
        format_rows.join(",\n"),
        http_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write BENCH_server.json");
    eprintln!("wrote {out_path}");
}
