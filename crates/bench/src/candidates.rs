//! Fixtures and reference implementations for the candidate-scaling bench
//! (`benches/candidate_scaling.rs`), its CI smoke test, and the
//! `candidate_scaling_report` binary that writes `BENCH_candidates.json`.
//!
//! The brute-force reference here is deliberately the *seed's* hot path — a
//! full per-category scan with an `O(k·n)` exclusion filter and a full sort
//! — so the bench measures exactly what the grid k-NN replaced.

use grouptravel_dataset::{
    Category, CitySpec, Poi, PoiCatalog, PoiId, SyntheticCityConfig, SyntheticCityGenerator,
};
use grouptravel_geo::{DistanceMetric, GeoPoint};
use std::time::Instant;

/// The k the scaling bench asks for — a generous `ADD`-candidate page.
pub const KNN_K: usize = 16;
/// The candidate-pool size the scaling bench generates — the engine's
/// default `min_candidate_pool`.
pub const POOL_SIZE: usize = 64;
/// Distance metric of all scaling measurements (the paper's default).
pub const METRIC: DistanceMetric = DistanceMetric::Equirectangular;

/// A synthetic catalog of `total` POIs (split 1/8 accommodation, 1/8
/// transportation, 3/8 restaurants, 3/8 attractions, like a real city) with
/// minimal tag payload so the 10⁶ size stays memory-friendly.
#[must_use]
pub fn scaling_catalog(total: usize, seed: u64) -> PoiCatalog {
    let eighth = (total / 8).max(1);
    let config = SyntheticCityConfig {
        counts: [
            eighth,
            eighth,
            3 * eighth,
            // Remainder category; saturate so a total below 8 still yields
            // a small valid catalog instead of underflowing.
            total.saturating_sub(5 * eighth).max(1),
        ],
        seed,
        tags_per_poi: 1,
        ..SyntheticCityConfig::default()
    };
    SyntheticCityGenerator::new(CitySpec::paris(), config).generate()
}

/// Deterministic query points scattered over the catalog's bounding box
/// (plus a margin, so some queries come from outside the lattice).
#[must_use]
pub fn query_points(catalog: &PoiCatalog, count: usize) -> Vec<GeoPoint> {
    let bbox = catalog
        .bounding_box()
        .expect("scaling catalogs are non-empty")
        .expanded(0.01);
    let mut points = Vec::with_capacity(count);
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for _ in 0..count {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let fx = (x >> 32) as f64 / f64::from(u32::MAX);
        let fy = (x & 0xffff_ffff) as f64 / f64::from(u32::MAX);
        points.push(GeoPoint::new_unchecked(
            bbox.min_lat + bbox.lat_span() * fx,
            bbox.min_lon + bbox.lon_span() * fy,
        ));
    }
    points
}

/// The seed's k-nearest implementation: full category scan, `O(k·n)`
/// `exclude.contains` filter, full sort by distance (stable, so ties keep
/// catalog order), then take `k`.
#[must_use]
pub fn brute_force_k_nearest<'c>(
    catalog: &'c PoiCatalog,
    point: &GeoPoint,
    category: Category,
    k: usize,
    metric: DistanceMetric,
    exclude: &[PoiId],
) -> Vec<&'c Poi> {
    let mut candidates: Vec<(&Poi, f64)> = catalog
        .by_category(category)
        .into_iter()
        .filter(|p| !exclude.contains(&p.id))
        .map(|p| (p, metric.distance_km(point, &p.location)))
        .collect();
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    candidates.into_iter().take(k).map(|(p, _)| p).collect()
}

/// The seed-era candidate-pool generation: score-agnostic full category
/// scan (what `BruteForceCandidates` hands the builder to rank).
#[must_use]
pub fn brute_force_pool(catalog: &PoiCatalog, category: Category) -> Vec<&Poi> {
    catalog.by_category(category)
}

/// The builder's per-category work on a candidate pool: score every
/// candidate (geography blended with a non-geographic term, so the ranking
/// is *not* monotone in distance, exactly like the real
/// `β·geo + γ·affinity` score), sort by score, keep the best `take`.
///
/// Handing the builder a whole category means this runs O(category); the
/// grid's exact-k pool caps it at O(pool) — that difference, not the pool
/// copy itself, is the cost candidate generation controls.
#[must_use]
pub fn rank_candidates<'c>(pool: &[&'c Poi], center: &GeoPoint, take: usize) -> Vec<&'c Poi> {
    let mut scored: Vec<(&Poi, f64)> = pool
        .iter()
        .map(|&p| {
            let d = METRIC.distance_km(center, &p.location);
            // A deterministic stand-in for the profile-affinity cosine:
            // per-POI, cheap, and uncorrelated with distance.
            let affinity =
                (p.id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40) as f64 / (1u64 << 24) as f64;
            (p, 0.5 / (1.0 + d) + 0.5 * affinity)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(take).map(|(p, _)| p).collect()
}

/// POIs one composite item requests from a category (the paper's default
/// query asks for up to 2 per category; 6 total).
pub const CI_TAKE: usize = 2;

/// The grid-backed candidate pool: the exact `pool`-nearest POIs of the
/// category, resolved to catalog positions (what `GridCandidates` serves).
#[must_use]
pub fn grid_pool<'c>(
    catalog: &'c PoiCatalog,
    point: &GeoPoint,
    category: Category,
    pool: usize,
) -> Vec<&'c Poi> {
    catalog.k_nearest_in_category(point, category, pool, METRIC, &[])
}

/// Mean wall-clock nanoseconds per invocation of `f` over `queries`.
pub fn mean_ns_per_query<T>(queries: &[GeoPoint], mut f: impl FnMut(&GeoPoint) -> T) -> f64 {
    let start = Instant::now();
    for q in queries {
        std::hint::black_box(f(q));
    }
    start.elapsed().as_nanos() as f64 / queries.len() as f64
}

/// One catalog size's measurements, ready for JSON serialization.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Total POIs in the catalog.
    pub pois: usize,
    /// Time to build the per-category spatial index (ms).
    pub grid_build_ms: f64,
    /// Mean ns per k-NN query, seed implementation.
    pub knn_brute_ns: f64,
    /// Mean ns per k-NN query, grid-backed.
    pub knn_grid_ns: f64,
    /// Mean ns per candidate generation + ranking, full-category scan.
    pub pool_brute_ns: f64,
    /// Mean ns per candidate generation + ranking, grid-backed exact-k.
    pub pool_grid_ns: f64,
}

impl ScalingRow {
    /// brute/grid speed-up of the k-NN query.
    #[must_use]
    pub fn knn_speedup(&self) -> f64 {
        self.knn_brute_ns / self.knn_grid_ns.max(1.0)
    }

    /// brute/grid speed-up of candidate generation (pool of
    /// [`POOL_SIZE`] versus scanning the category).
    #[must_use]
    pub fn pool_speedup(&self) -> f64 {
        self.pool_brute_ns / self.pool_grid_ns.max(1.0)
    }
}

/// Measures one catalog size: k-NN and candidate-pool generation, grid vs
/// the seed's brute force, averaged over `queries_per_size` query points.
/// The catalog's grid is built (and timed) up front, exactly as the engine
/// primes it at registration.
#[must_use]
pub fn measure_scale(total: usize, queries_per_size: usize) -> ScalingRow {
    let catalog = scaling_catalog(total, 0xC0FFEE ^ total as u64);
    let queries = query_points(&catalog, queries_per_size);
    let category = Category::Restaurant;

    let build_start = Instant::now();
    let _ = std::hint::black_box(catalog.spatial());
    let grid_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    let knn_grid_ns = mean_ns_per_query(&queries, |q| {
        catalog.k_nearest_in_category(q, category, KNN_K, METRIC, &[])
    });
    let knn_brute_ns = mean_ns_per_query(&queries, |q| {
        brute_force_k_nearest(&catalog, q, category, KNN_K, METRIC, &[])
    });
    let pool_grid_ns = mean_ns_per_query(&queries, |q| {
        let pool = grid_pool(&catalog, q, category, POOL_SIZE);
        rank_candidates(&pool, q, CI_TAKE).len()
    });
    let pool_brute_ns = mean_ns_per_query(&queries, |q| {
        let pool = brute_force_pool(&catalog, category);
        rank_candidates(&pool, q, CI_TAKE).len()
    });

    ScalingRow {
        pois: total,
        grid_build_ms,
        knn_brute_ns,
        knn_grid_ns,
        pool_brute_ns,
        pool_grid_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_and_brute_agree_on_a_scaling_catalog() {
        let catalog = scaling_catalog(1_000, 7);
        for q in query_points(&catalog, 8) {
            for &category in &Category::ALL {
                let grid: Vec<PoiId> = catalog
                    .k_nearest_in_category(&q, category, KNN_K, METRIC, &[])
                    .iter()
                    .map(|p| p.id)
                    .collect();
                let brute: Vec<PoiId> =
                    brute_force_k_nearest(&catalog, &q, category, KNN_K, METRIC, &[])
                        .iter()
                        .map(|p| p.id)
                        .collect();
                assert_eq!(grid, brute, "category {category:?} query {q:?}");
            }
        }
    }
}
