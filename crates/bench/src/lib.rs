//! Shared fixtures for the Criterion benches.
//!
//! Every bench regenerates (a scaled-down version of) one table or figure of
//! the paper; the heavy one-time setup — synthetic city generation, LDA
//! training, worker recruitment — lives here so the timed sections measure
//! only the algorithmic work the paper's evaluation exercises.

pub mod candidates;
pub mod models;

use grouptravel::prelude::*;
use grouptravel_experiments::common::{SyntheticWorld, UserStudyWorld};
use grouptravel_experiments::ExperimentScale;

/// The scale used by all benches: big enough to be representative, small
/// enough that `cargo bench` finishes in minutes.
#[must_use]
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        groups_per_cell: 2,
        study_groups_per_cell: 1,
        ..ExperimentScale::smoke()
    }
}

/// A synthetic world (Paris session) at bench scale.
#[must_use]
pub fn synthetic_world() -> SyntheticWorld {
    SyntheticWorld::build(bench_scale())
}

/// A user-study world (Paris + Barcelona + recruited workers) at bench scale.
#[must_use]
pub fn user_study_world() -> UserStudyWorld {
    UserStudyWorld::build(bench_scale())
}

/// A ready-made (group, profile) pair of the requested shape for a world.
#[must_use]
pub fn group_and_profile(
    world: &SyntheticWorld,
    size: GroupSize,
    uniformity: Uniformity,
    method: ConsensusMethod,
    salt: u64,
) -> (Group, GroupProfile) {
    let mut generator = world.group_generator(salt);
    let group = generator.group(size, uniformity);
    let profile = group.profile(method);
    (group, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let world = synthetic_world();
        let (group, profile) = group_and_profile(
            &world,
            GroupSize::Small,
            Uniformity::Uniform,
            ConsensusMethod::average_preference(),
            1,
        );
        assert_eq!(group.size(), 5);
        assert_eq!(profile.schema(), world.session.profile_schema());
    }
}
