//! Fixtures and measurement helpers for the model-training bench
//! (`benches/model_training.rs`), its CI smoke test, and the
//! `model_training_report` binary that writes `BENCH_models.json`.
//!
//! The "seed" side of every measurement is the nested-`Vec` implementation
//! preserved in `grouptravel_cluster::reference` and
//! `grouptravel_topics::reference` — deliberately the exact algorithms the
//! flat hot paths replaced, the same way `candidates::brute_force_k_nearest`
//! preserves the seed spatial path.
//!
//! Configurations pin the sweep counts (`tolerance_km: 0.0` for FCM, a fixed
//! iteration budget for LDA) so seed and flat runs do identical algorithmic
//! work and the ratio measures implementation cost only.

use crate::candidates::scaling_catalog;
use grouptravel_cluster::{reference_fit, FcmConfig, FuzzyCMeans};
use grouptravel_geo::{DistanceMetric, GeoPoint};
use grouptravel_pool::WorkerPool;
use grouptravel_topics::{reference_train, LdaConfig, LdaModel, LdaSampler, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Clusters used by every FCM measurement — the paper's package size `k`
/// rounded up to a busier serving configuration.
pub const FCM_K: usize = 8;
/// FCM sweeps per fit; convergence is disabled (`tolerance_km: 0.0`) so
/// seed and flat runs execute exactly this many sweeps.
pub const FCM_SWEEPS: usize = 40;
/// Topics used by every LDA measurement.
pub const LDA_TOPICS: usize = 16;
/// Gibbs sweeps per LDA training run.
pub const LDA_SWEEPS: usize = 40;

/// The FCM configuration of all model-training measurements.
#[must_use]
pub fn fcm_config(seed: u64) -> FcmConfig {
    FcmConfig {
        k: FCM_K,
        fuzzifier: 2.0,
        max_iterations: FCM_SWEEPS,
        tolerance_km: 0.0,
        metric: DistanceMetric::Equirectangular,
        seed,
    }
}

/// The LDA configuration of all model-training measurements.
#[must_use]
pub fn lda_config(seed: u64) -> LdaConfig {
    LdaConfig {
        num_topics: LDA_TOPICS,
        alpha: 0.5,
        beta: 0.1,
        iterations: LDA_SWEEPS,
        seed,
        sampler: LdaSampler::Collapsed,
    }
}

/// POI locations of a synthetic city with `total` POIs — the exact point
/// set a cold package build hands to `FuzzyCMeans::fit`.
#[must_use]
pub fn training_points(total: usize, seed: u64) -> Vec<GeoPoint> {
    scaling_catalog(total, seed).locations()
}

/// A synthetic tag corpus: `docs` documents of 2–9 tokens over a vocabulary
/// that grows with the corpus (like real per-category tag sets), with loose
/// per-document themes so the topics are learnable.
#[must_use]
pub fn training_corpus(docs: usize, seed: u64) -> (Vec<Vec<usize>>, Vocabulary) {
    let vocab_size = (docs / 4).clamp(64, 32_768);
    let words: Vec<String> = (0..vocab_size).map(|i| format!("tag{i}")).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let docs_str: Vec<Vec<&str>> = (0..docs)
        .map(|_| {
            let len = rng.gen_range(2usize..10);
            let theme = rng.gen_range(0..vocab_size);
            (0..len)
                .map(|_| {
                    let w = if rng.gen_bool(0.7) {
                        (theme + rng.gen_range(0..1 + vocab_size / 8)) % vocab_size
                    } else {
                        rng.gen_range(0..vocab_size)
                    };
                    words[w].as_str()
                })
                .collect()
        })
        .collect();
    let vocab = Vocabulary::from_documents(docs_str.clone());
    let encoded = docs_str.iter().map(|d| vocab.encode(d)).collect();
    (encoded, vocab)
}

/// One FCM point-set size's measurements.
#[derive(Debug, Clone)]
pub struct FcmRow {
    /// Points clustered.
    pub points: usize,
    /// Seed (nested-`Vec`, trig-per-pair) fit, milliseconds.
    pub seed_ms: f64,
    /// Flat (trig-free, fused-sweep) fit, milliseconds.
    pub flat_ms: f64,
}

impl FcmRow {
    /// seed/flat speed-up.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.seed_ms / self.flat_ms.max(1e-9)
    }
}

/// One LDA corpus size's measurements.
#[derive(Debug, Clone)]
pub struct LdaRow {
    /// Documents in the corpus.
    pub docs: usize,
    /// Total tokens across the corpus.
    pub tokens: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Seed (topic-major nested-`Vec`) training, milliseconds.
    pub seed_ms: f64,
    /// Flat (word-major, sparse-short-doc) training, milliseconds.
    pub flat_ms: f64,
}

impl LdaRow {
    /// seed/flat speed-up.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.seed_ms / self.flat_ms.max(1e-9)
    }
}

fn time_ms<T>(f: impl FnOnce() -> T) -> f64 {
    let start = Instant::now();
    std::hint::black_box(f());
    start.elapsed().as_secs_f64() * 1e3
}

/// Measures one FCM point-set size, seed vs flat, best of `repeats` runs
/// each (model training is long enough that the minimum is stable).
#[must_use]
pub fn measure_fcm(total: usize, repeats: usize) -> FcmRow {
    let points = training_points(total, 0xF00D ^ total as u64);
    let config = fcm_config(7);
    let solver = FuzzyCMeans::new(config);
    let mut seed_ms = f64::INFINITY;
    let mut flat_ms = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        flat_ms = flat_ms.min(time_ms(|| solver.fit(&points).unwrap()));
        seed_ms = seed_ms.min(time_ms(|| reference_fit(&config, &points).unwrap()));
    }
    FcmRow {
        points: total,
        seed_ms,
        flat_ms,
    }
}

/// Measures one LDA corpus size, seed vs flat, best of `repeats` runs each.
#[must_use]
pub fn measure_lda(docs: usize, repeats: usize) -> LdaRow {
    let (encoded, vocab) = training_corpus(docs, 0xBEEF ^ docs as u64);
    let config = lda_config(11);
    let tokens = encoded.iter().map(Vec::len).sum();
    let mut seed_ms = f64::INFINITY;
    let mut flat_ms = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        flat_ms = flat_ms.min(time_ms(|| {
            LdaModel::train(&encoded, &vocab, config).unwrap()
        }));
        seed_ms = seed_ms.min(time_ms(|| {
            reference_train(&encoded, &vocab, config).unwrap()
        }));
    }
    LdaRow {
        docs,
        tokens,
        vocab: vocab.len(),
        seed_ms,
        flat_ms,
    }
}

/// One thread count's parallel-training measurements: the deterministic
/// chunk-parallel FCM fit and the block-Gibbs LDA training on a shared
/// pool of `threads` workers. `threads == 1` runs without a pool — the
/// sequential paths the 1-thread bit-identity tests pin — so the axis
/// measures the fan-out itself, same algorithm at every width.
#[derive(Debug, Clone)]
pub struct ThreadsRow {
    /// Pool width (1 = sequential, no pool).
    pub threads: usize,
    /// Parallel FCM fit, milliseconds.
    pub fcm_ms: f64,
    /// Block-Gibbs LDA training, milliseconds.
    pub lda_ms: f64,
}

/// The LDA configuration of threads-axis measurements: the deterministic
/// block-Gibbs sampler (the only one that fans out).
#[must_use]
pub fn block_lda_config(seed: u64) -> LdaConfig {
    LdaConfig {
        sampler: LdaSampler::BlockGibbsV1,
        ..lda_config(seed)
    }
}

/// Measures one pool width over an FCM point set and a block-Gibbs LDA
/// corpus, best of `repeats` runs each.
#[must_use]
pub fn measure_threads(points: usize, docs: usize, threads: usize, repeats: usize) -> ThreadsRow {
    let pool = (threads > 1).then(|| WorkerPool::new(threads));
    let pool = pool.as_ref();

    let point_set = training_points(points, 0xF00D ^ points as u64);
    let solver = FuzzyCMeans::new(fcm_config(7));
    let (encoded, vocab) = training_corpus(docs, 0xBEEF ^ docs as u64);
    let lda = block_lda_config(11);

    let mut fcm_ms = f64::INFINITY;
    let mut lda_ms = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        fcm_ms = fcm_ms.min(time_ms(|| solver.fit_on(&point_set, pool).unwrap()));
        lda_ms = lda_ms.min(time_ms(|| {
            LdaModel::train_on(&encoded, &vocab, lda, pool).unwrap()
        }));
    }
    ThreadsRow {
        threads,
        fcm_ms,
        lda_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcm_fixture_agrees_with_the_reference() {
        let points = training_points(500, 3);
        let config = fcm_config(5);
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let seed = reference_fit(&config, &points).unwrap();
        assert_eq!(flat.iterations, seed.iterations);
        for (a, b) in flat.centroids.iter().zip(&seed.centroids) {
            assert!((a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9);
        }
    }

    #[test]
    fn lda_fixture_agrees_with_the_reference_bitwise() {
        let (encoded, vocab) = training_corpus(120, 3);
        let config = lda_config(5);
        let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
        let seed = reference_train(&encoded, &vocab, config).unwrap();
        for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&seed.doc_topic) {
            for (a, b) in flat_theta.iter().zip(seed_theta) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn measurements_produce_positive_times() {
        let fcm = measure_fcm(300, 1);
        assert!(fcm.seed_ms > 0.0 && fcm.flat_ms > 0.0);
        let lda = measure_lda(80, 1);
        assert!(lda.seed_ms > 0.0 && lda.flat_ms > 0.0);
        assert!(lda.tokens > 0);
    }

    #[test]
    fn threads_axis_measures_every_width() {
        for threads in [1usize, 2] {
            let row = measure_threads(300, 80, threads, 1);
            assert_eq!(row.threads, threads);
            assert!(row.fcm_ms > 0.0 && row.lda_ms > 0.0);
        }
    }
}
