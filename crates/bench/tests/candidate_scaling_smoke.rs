//! Size-guarded smoke run of the candidate-scaling measurements: CI proves
//! the scaling path (catalog generation at scale, grid build, grid and
//! brute k-NN, pool generation, speed-up computation) compiles and runs —
//! at the 10³ size only, so the suite stays fast.

use grouptravel_bench::candidates::{
    brute_force_k_nearest, measure_scale, scaling_catalog, KNN_K, METRIC,
};
use grouptravel_dataset::Category;

#[test]
fn measure_scale_runs_at_the_smallest_size() {
    let row = measure_scale(1_000, 8);
    assert_eq!(row.pois, 1_000);
    assert!(row.grid_build_ms >= 0.0);
    assert!(row.knn_brute_ns > 0.0);
    assert!(row.knn_grid_ns > 0.0);
    assert!(row.pool_brute_ns > 0.0);
    assert!(row.pool_grid_ns > 0.0);
    assert!(row.knn_speedup() > 0.0);
    assert!(row.pool_speedup() > 0.0);
}

#[test]
fn grid_knn_equals_the_seed_implementation_at_scale() {
    // The same equivalence the property tests prove, exercised on the
    // bench's own catalog shape so the measured paths are the proven ones.
    let catalog = scaling_catalog(2_000, 3);
    let center = catalog.bounding_box().unwrap().center();
    for &category in &Category::ALL {
        let grid: Vec<u64> = catalog
            .k_nearest_in_category(&center, category, KNN_K, METRIC, &[])
            .iter()
            .map(|p| p.id.0)
            .collect();
        let brute: Vec<u64> =
            brute_force_k_nearest(&catalog, &center, category, KNN_K, METRIC, &[])
                .iter()
                .map(|p| p.id.0)
                .collect();
        assert_eq!(grid, brute, "category {category:?}");
    }
}
