//! Reading fuzzy clustering results.

use crate::fcm::FcmResult;

/// Hard cluster assignments: the index of the cluster with the highest
/// membership for every point (ties resolved towards the lower index).
#[must_use]
pub fn hard_assignments(result: &FcmResult) -> Vec<usize> {
    result
        .memberships
        .rows()
        .map(|row| {
            let mut best = 0;
            for (idx, &w) in row.iter().enumerate() {
                if w > row[best] {
                    best = idx;
                }
            }
            best
        })
        .collect()
}

/// The indices of the `n` points with the highest membership in cluster
/// `cluster`, strongest first.
#[must_use]
pub fn top_members(result: &FcmResult, cluster: usize, n: usize) -> Vec<usize> {
    let mut indexed: Vec<(usize, f64)> = result
        .memberships
        .rows()
        .enumerate()
        .filter_map(|(idx, row)| row.get(cluster).map(|&w| (idx, w)))
        .collect();
    indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    indexed.into_iter().take(n).map(|(idx, _)| idx).collect()
}

/// Bezdek's fuzzy partition coefficient `(1/N) Σ_ij w_ij²`: 1 for a crisp
/// partition, `1/k` for a maximally fuzzy one. Returns 0 for an empty result.
#[must_use]
pub fn fuzzy_partition_coefficient(result: &FcmResult) -> f64 {
    if result.memberships.is_empty() {
        return 0.0;
    }
    // The membership matrix is one contiguous buffer, so the double sum is
    // a single linear scan.
    let total: f64 = result.memberships.as_slice().iter().map(|&w| w * w).sum();
    total / result.memberships.nrows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_geo::{DenseMatrix, GeoPoint};

    fn fake_result(memberships: Vec<Vec<f64>>) -> FcmResult {
        let k = memberships.first().map_or(0, Vec::len);
        FcmResult {
            centroids: vec![GeoPoint::new_unchecked(0.0, 0.0); k],
            memberships: DenseMatrix::from_rows(memberships),
            iterations: 1,
            converged: true,
            objective: 0.0,
        }
    }

    #[test]
    fn hard_assignments_pick_the_max_membership() {
        let result = fake_result(vec![vec![0.8, 0.2], vec![0.3, 0.7], vec![0.5, 0.5]]);
        assert_eq!(hard_assignments(&result), vec![0, 1, 0]);
    }

    #[test]
    fn top_members_are_sorted_by_membership() {
        let result = fake_result(vec![vec![0.1, 0.9], vec![0.8, 0.2], vec![0.6, 0.4]]);
        assert_eq!(top_members(&result, 0, 2), vec![1, 2]);
        assert_eq!(top_members(&result, 1, 1), vec![0]);
        assert_eq!(top_members(&result, 1, 10).len(), 3);
        assert!(top_members(&result, 5, 2).is_empty());
    }

    #[test]
    fn partition_coefficient_bounds() {
        let crisp = fake_result(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert!((fuzzy_partition_coefficient(&crisp) - 1.0).abs() < 1e-12);
        let fuzzy = fake_result(vec![vec![0.5, 0.5], vec![0.5, 0.5]]);
        assert!((fuzzy_partition_coefficient(&fuzzy) - 0.5).abs() < 1e-12);
        let empty = fake_result(vec![]);
        assert_eq!(fuzzy_partition_coefficient(&empty), 0.0);
    }
}
