//! Fuzzy c-means (FCM) over geographic points.
//!
//! Bezdek's algorithm: memberships
//! `w_ij = 1 / Σ_l (d(i, μ_j) / d(i, μ_l))^(2/(m−1))` and centroids
//! `μ_j = Σ_i w_ij^m · x_i / Σ_i w_ij^m`, iterated until the centroids stop
//! moving. Distances are the paper's equirectangular approximation (or exact
//! Haversine, configurable). The paper writes the fuzzifier as `f`; the
//! conventional constraint `m > 1` applies — `m → 1` degenerates to hard
//! k-means, larger `m` makes memberships fuzzier.

use grouptravel_geo::{weighted_centroid, DistanceMetric, GeoPoint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the fuzzy c-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FcmConfig {
    /// Number of clusters `k` (one per composite item in GroupTravel).
    pub k: usize,
    /// Fuzzifier exponent `m` (the paper's `f`); must be > 1.
    pub fuzzifier: f64,
    /// Maximum number of update iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum centroid displacement, in
    /// kilometres.
    pub tolerance_km: f64,
    /// Distance metric (equirectangular by default, per the paper).
    pub metric: DistanceMetric,
    /// Randomness seed for centroid initialization.
    pub seed: u64,
}

impl Default for FcmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            fuzzifier: 2.0,
            max_iterations: 100,
            tolerance_km: 0.001,
            metric: DistanceMetric::Equirectangular,
            seed: 42,
        }
    }
}

impl FcmConfig {
    /// Convenience constructor for `k` clusters with defaults elsewhere.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// A 64-bit key identifying every parameter that influences the result
    /// of [`FuzzyCMeans::fit`] (FNV-1a over the exact field bits).
    ///
    /// Combined with a catalog fingerprint this keys the serving engine's
    /// model cache: equal keys over the same point set are guaranteed to
    /// produce identical clusterings, so a cached [`FcmResult`] can stand in
    /// for a fresh fit.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let mut hash = grouptravel_geo::Fnv1a::new();
        hash.write_u64(self.k as u64);
        hash.write_f64(self.fuzzifier);
        hash.write_u64(self.max_iterations as u64);
        hash.write_f64(self.tolerance_km);
        hash.write(&[match self.metric {
            DistanceMetric::Haversine => 0,
            DistanceMetric::Equirectangular => 1,
        }]);
        hash.write_u64(self.seed);
        hash.finish()
    }
}

/// Errors raised by [`FuzzyCMeans::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FcmError {
    /// `k` was zero.
    ZeroClusters,
    /// Fewer points than clusters.
    NotEnoughPoints,
    /// The fuzzifier was not greater than 1.
    InvalidFuzzifier,
}

impl fmt::Display for FcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcmError::ZeroClusters => write!(f, "k must be at least 1"),
            FcmError::NotEnoughPoints => write!(f, "need at least k points to place k centroids"),
            FcmError::InvalidFuzzifier => write!(f, "the fuzzifier must be greater than 1"),
        }
    }
}

impl std::error::Error for FcmError {}

/// Result of a fuzzy c-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcmResult {
    /// Final centroid positions, `k` of them.
    pub centroids: Vec<GeoPoint>,
    /// Membership matrix `W`: `memberships[i][j]` is the degree to which
    /// point `i` belongs to cluster `j`. Every row sums to 1.
    pub memberships: Vec<Vec<f64>>,
    /// Number of iterations actually run.
    pub iterations: usize,
    /// Whether the run converged before hitting the iteration cap.
    pub converged: bool,
    /// Value of the FCM objective `Σ_ij w_ij^m d_ij²` at the final state
    /// (kilometres squared).
    pub objective: f64,
}

/// The fuzzy c-means solver.
#[derive(Debug, Clone)]
pub struct FuzzyCMeans {
    config: FcmConfig,
}

impl FuzzyCMeans {
    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn new(config: FcmConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FcmConfig {
        &self.config
    }

    /// Runs fuzzy c-means over `points`.
    pub fn fit(&self, points: &[GeoPoint]) -> Result<FcmResult, FcmError> {
        self.validate(points)?;
        let centroids = self.initial_centroids(points);
        Ok(self.iterate(points, centroids))
    }

    /// Runs fuzzy c-means warm-started from `initial` centroids instead of
    /// k-means++ seeding — the resumable path: feeding back the centroids of
    /// a previous [`FcmResult`] (e.g. one pulled from the serving engine's
    /// model cache after a small catalog update) converges in a handful of
    /// iterations instead of a full fit.
    ///
    /// # Errors
    /// Same preconditions as [`FuzzyCMeans::fit`], plus `initial` must hold
    /// exactly `k` centroids (`FcmError::ZeroClusters` is returned for a
    /// mismatch of zero, `FcmError::NotEnoughPoints` otherwise).
    pub fn fit_from(
        &self,
        points: &[GeoPoint],
        initial: &[GeoPoint],
    ) -> Result<FcmResult, FcmError> {
        self.validate(points)?;
        if initial.len() != self.config.k {
            return Err(if initial.is_empty() {
                FcmError::ZeroClusters
            } else {
                FcmError::NotEnoughPoints
            });
        }
        Ok(self.iterate(points, initial.to_vec()))
    }

    fn validate(&self, points: &[GeoPoint]) -> Result<(), FcmError> {
        let k = self.config.k;
        if k == 0 {
            return Err(FcmError::ZeroClusters);
        }
        if points.len() < k {
            return Err(FcmError::NotEnoughPoints);
        }
        if self.config.fuzzifier <= 1.0 {
            return Err(FcmError::InvalidFuzzifier);
        }
        Ok(())
    }

    fn iterate(&self, points: &[GeoPoint], mut centroids: Vec<GeoPoint>) -> FcmResult {
        let k = self.config.k;
        let mut memberships = vec![vec![0.0; k]; points.len()];
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            self.update_memberships(points, &centroids, &mut memberships);
            let new_centroids = self.update_centroids(points, &memberships, &centroids);

            let max_shift = centroids
                .iter()
                .zip(&new_centroids)
                .map(|(old, new)| self.config.metric.distance_km(old, new))
                .fold(0.0f64, f64::max);
            centroids = new_centroids;

            if max_shift < self.config.tolerance_km {
                converged = true;
                break;
            }
        }
        // Make the memberships consistent with the final centroids.
        self.update_memberships(points, &centroids, &mut memberships);

        let objective = self.objective(points, &centroids, &memberships);
        FcmResult {
            centroids,
            memberships,
            iterations,
            converged,
            objective,
        }
    }

    /// k-means++-style seeding: the first centroid is a random point, each
    /// subsequent centroid is drawn with probability proportional to the
    /// squared distance from the nearest centroid chosen so far.
    fn initial_centroids(&self, points: &[GeoPoint]) -> Vec<GeoPoint> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut centroids = Vec::with_capacity(self.config.k);
        centroids.push(points[rng.gen_range(0..points.len())]);

        while centroids.len() < self.config.k {
            let distances: Vec<f64> = points
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| self.config.metric.distance_km(p, c).powi(2))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = distances.iter().sum();
            if total <= f64::EPSILON {
                // All remaining points coincide with existing centroids.
                centroids.push(points[rng.gen_range(0..points.len())]);
                continue;
            }
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = points.len() - 1;
            for (idx, &d) in distances.iter().enumerate() {
                if pick < d {
                    chosen = idx;
                    break;
                }
                pick -= d;
            }
            centroids.push(points[chosen]);
        }
        centroids
    }

    fn update_memberships(
        &self,
        points: &[GeoPoint],
        centroids: &[GeoPoint],
        memberships: &mut [Vec<f64>],
    ) {
        let exponent = 2.0 / (self.config.fuzzifier - 1.0);
        for (i, point) in points.iter().enumerate() {
            let distances: Vec<f64> = centroids
                .iter()
                .map(|c| self.config.metric.distance_km(point, c))
                .collect();

            // A point sitting exactly on one or more centroids belongs to
            // them (equally) and to nothing else.
            let coincident: Vec<usize> = distances
                .iter()
                .enumerate()
                .filter(|(_, &d)| d <= f64::EPSILON)
                .map(|(j, _)| j)
                .collect();
            if !coincident.is_empty() {
                let share = 1.0 / coincident.len() as f64;
                for (j, slot) in memberships[i].iter_mut().enumerate() {
                    *slot = if coincident.contains(&j) { share } else { 0.0 };
                }
                continue;
            }

            for j in 0..centroids.len() {
                let mut denom = 0.0;
                for &other in &distances {
                    denom += (distances[j] / other).powf(exponent);
                }
                memberships[i][j] = 1.0 / denom;
            }
        }
    }

    fn update_centroids(
        &self,
        points: &[GeoPoint],
        memberships: &[Vec<f64>],
        previous: &[GeoPoint],
    ) -> Vec<GeoPoint> {
        let m = self.config.fuzzifier;
        (0..self.config.k)
            .map(|j| {
                let weights: Vec<f64> = memberships.iter().map(|row| row[j].powf(m)).collect();
                weighted_centroid(points, &weights).unwrap_or(previous[j])
            })
            .collect()
    }

    fn objective(
        &self,
        points: &[GeoPoint],
        centroids: &[GeoPoint],
        memberships: &[Vec<f64>],
    ) -> f64 {
        let m = self.config.fuzzifier;
        let mut total = 0.0;
        for (point, row) in points.iter().zip(memberships) {
            for (centroid, &w) in centroids.iter().zip(row) {
                let d = self.config.metric.distance_km(point, centroid);
                total += w.powf(m) * d * d;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs around Paris landmarks.
    fn three_blobs() -> Vec<GeoPoint> {
        let centres = [
            GeoPoint::new_unchecked(48.8606, 2.3376), // Louvre
            GeoPoint::new_unchecked(48.8860, 2.3430), // Montmartre
            GeoPoint::new_unchecked(48.8530, 2.3700), // Bastille
        ];
        let mut points = Vec::new();
        for (b, centre) in centres.iter().enumerate() {
            for i in 0..12 {
                let offset = 0.0008 * (i as f64 - 5.5);
                points.push(GeoPoint::new_unchecked(
                    centre.lat + offset,
                    centre.lon + offset * if b % 2 == 0 { 1.0 } else { -1.0 },
                ));
            }
        }
        points
    }

    #[test]
    fn membership_rows_sum_to_one() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        for row in &result.memberships {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn converges_on_well_separated_blobs() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert!(
            result.converged,
            "did not converge in {} iterations",
            result.iterations
        );
        assert_eq!(result.centroids.len(), 3);
    }

    #[test]
    fn centroids_land_near_the_blob_centres() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        let expected = [
            GeoPoint::new_unchecked(48.8606, 2.3376),
            GeoPoint::new_unchecked(48.8860, 2.3430),
            GeoPoint::new_unchecked(48.8530, 2.3700),
        ];
        for target in &expected {
            let nearest = result
                .centroids
                .iter()
                .map(|c| DistanceMetric::Haversine.distance_km(c, target))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.5, "no centroid within 0.5 km of {target}");
        }
    }

    #[test]
    fn fit_is_deterministic_for_a_seed() {
        let points = three_blobs();
        let a = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        let b = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.memberships, b.memberships);
    }

    #[test]
    fn k_equal_to_number_of_points_is_allowed() {
        let points = vec![
            GeoPoint::new_unchecked(48.86, 2.33),
            GeoPoint::new_unchecked(48.88, 2.35),
        ];
        let result = FuzzyCMeans::new(FcmConfig::with_k(2)).fit(&points).unwrap();
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn error_cases_are_reported() {
        let points = three_blobs();
        assert_eq!(
            FuzzyCMeans::new(FcmConfig::with_k(0))
                .fit(&points)
                .unwrap_err(),
            FcmError::ZeroClusters
        );
        assert_eq!(
            FuzzyCMeans::new(FcmConfig::with_k(points.len() + 1))
                .fit(&points)
                .unwrap_err(),
            FcmError::NotEnoughPoints
        );
        let bad = FcmConfig {
            fuzzifier: 1.0,
            ..FcmConfig::with_k(2)
        };
        assert_eq!(
            FuzzyCMeans::new(bad).fit(&points).unwrap_err(),
            FcmError::InvalidFuzzifier
        );
    }

    #[test]
    fn duplicate_points_do_not_break_the_solver() {
        let p = GeoPoint::new_unchecked(48.86, 2.33);
        let q = GeoPoint::new_unchecked(48.90, 2.40);
        let points = vec![p, p, p, q, q, q];
        let result = FuzzyCMeans::new(FcmConfig::with_k(2)).fit(&points).unwrap();
        for row in &result.memberships {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_fuzzifier_gives_fuzzier_memberships() {
        let points = three_blobs();
        let crisp = FuzzyCMeans::new(FcmConfig {
            fuzzifier: 1.5,
            ..FcmConfig::with_k(3)
        })
        .fit(&points)
        .unwrap();
        let fuzzy = FuzzyCMeans::new(FcmConfig {
            fuzzifier: 3.0,
            ..FcmConfig::with_k(3)
        })
        .fit(&points)
        .unwrap();
        let avg_max = |result: &FcmResult| {
            result
                .memberships
                .iter()
                .map(|row| row.iter().copied().fold(0.0f64, f64::max))
                .sum::<f64>()
                / result.memberships.len() as f64
        };
        assert!(avg_max(&crisp) > avg_max(&fuzzy));
    }

    #[test]
    fn cache_key_separates_configs_and_is_stable() {
        let base = FcmConfig::with_k(5);
        assert_eq!(base.cache_key(), FcmConfig::with_k(5).cache_key());
        assert_ne!(base.cache_key(), FcmConfig::with_k(6).cache_key());
        assert_ne!(
            base.cache_key(),
            FcmConfig {
                fuzzifier: 2.5,
                ..base
            }
            .cache_key()
        );
        assert_ne!(base.cache_key(), FcmConfig { seed: 43, ..base }.cache_key());
        assert_ne!(
            base.cache_key(),
            FcmConfig {
                metric: DistanceMetric::Haversine,
                ..base
            }
            .cache_key()
        );
    }

    #[test]
    fn fit_from_resumes_a_converged_state_in_one_iteration() {
        let points = three_blobs();
        let solver = FuzzyCMeans::new(FcmConfig::with_k(3));
        let cold = solver.fit(&points).unwrap();
        let warm = solver.fit_from(&points, &cold.centroids).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= 2,
            "warm start took {} iterations",
            warm.iterations
        );
        // The resumed solution stays at the converged optimum.
        for (a, b) in cold.centroids.iter().zip(&warm.centroids) {
            assert!(DistanceMetric::Haversine.distance_km(a, b) < 0.01);
        }
    }

    #[test]
    fn fit_from_validates_the_initial_centroid_count() {
        let points = three_blobs();
        let solver = FuzzyCMeans::new(FcmConfig::with_k(3));
        assert_eq!(
            solver.fit_from(&points, &[]).unwrap_err(),
            FcmError::ZeroClusters
        );
        let two = vec![points[0], points[1]];
        assert_eq!(
            solver.fit_from(&points, &two).unwrap_err(),
            FcmError::NotEnoughPoints
        );
    }

    #[test]
    fn objective_is_lower_for_more_clusters() {
        let points = three_blobs();
        let k1 = FuzzyCMeans::new(FcmConfig::with_k(1)).fit(&points).unwrap();
        let k3 = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert!(k3.objective < k1.objective);
    }
}
