//! Fuzzy c-means (FCM) over geographic points.
//!
//! Bezdek's algorithm: memberships
//! `w_ij = 1 / Σ_l (d(i, μ_j) / d(i, μ_l))^(2/(m−1))` and centroids
//! `μ_j = Σ_i w_ij^m · x_i / Σ_i w_ij^m`, iterated until the centroids stop
//! moving. Distances are the paper's equirectangular approximation (or exact
//! Haversine, configurable). The paper writes the fuzzifier as `f`; the
//! conventional constraint `m > 1` applies — `m → 1` degenerates to hard
//! k-means, larger `m` makes memberships fuzzier.
//!
//! # The flat training hot path
//!
//! Cold package builds are dominated by this fit, so the solver is built on
//! flat buffers and precomputed geometry instead of the seed's nested
//! `Vec<Vec<f64>>` matrices (preserved in [`crate::reference`] for
//! differential tests and the before/after bench):
//!
//! * **Memberships** live in one row-major [`DenseMatrix`]; every scratch
//!   buffer (distance row, inverse row, coincidence flags, centroid
//!   accumulators) is hoisted out of the iteration loop — zero allocations
//!   per sweep.
//! * **No trig in the inner loop.** Each point is projected once into
//!   `(lat_rad, lon_rad, cos(lat/2), sin(lat/2), cos(lat))`; the
//!   equirectangular mean-latitude cosine is recovered with the angle-sum
//!   identity `cos((φ_p+φ_c)/2) = cos(φ_p/2)cos(φ_c/2) −
//!   sin(φ_p/2)sin(φ_c/2)` — a multiply-add per pair instead of a `cos`.
//!   Distances stay squared throughout (no `sqrt`): memberships only need
//!   ratios and the objective needs `d²`.
//! * **Fuzzifier fast path.** For `m == 2` (the default and the paper's
//!   setting) the membership row collapses to `w_j = (1/d²_j) / Σ_l 1/d²_l`
//!   — `O(k)` per point with no `powf`, versus the seed's `O(k²)` with a
//!   `powf` per ratio. The general-`m` path uses the same factorization with
//!   one `powf` per centroid, normalized by the row minimum so powered
//!   ratios stay in `(0, 1]`.
//! * **Fused sweep.** Membership update and centroid accumulation are one
//!   pass over the points, and the final objective reuses the fuzzified
//!   weights and squared distances already in the scratch buffers.
//!
//! Results are tolerance-equal (centroids/memberships within `1e-9`, hard
//! assignments identical) rather than bit-identical to the seed: the
//! refactored arithmetic rounds differently at the last ulp. k-means++
//! seeding, by contrast, *is* bit-identical — the running nearest-centroid
//! distance array (`O(n·k)` total instead of `O(n·k²)`) takes the same
//! minima over the same floats.
//!
//! # Deterministic parallel sweeps
//!
//! [`FuzzyCMeans::fit_on`] accepts a shared [`WorkerPool`]. The fused sweep
//! is chunked over **fixed point ranges** of [`PARALLEL_CHUNK_POINTS`]
//! points — the chunk grid depends only on `n`, never on the thread count —
//! each chunk fills its own membership rows and its own accumulator set, and
//! the per-chunk accumulators are reduced **in chunk-index order** on the
//! scope owner's thread. Consequences:
//!
//! * The result is a pure function of `(points, config)`: bit-identical
//!   run-to-run and across **any** pool width ≥ 2, because neither the
//!   chunk boundaries nor the reduction order depend on scheduling.
//! * The reduction **reorders float sums relative to the sequential
//!   solver**: sequentially, point `i`'s weighted contribution lands on the
//!   accumulator after points `0..i`; chunked, contributions are summed
//!   within each chunk first and the per-chunk subtotals are then added in
//!   chunk order. Centroids (and everything downstream: memberships,
//!   objective, iteration count at the convergence margin) therefore agree
//!   with the sequential solver to a tolerance (`diff_fcm` pins `1e-9`,
//!   hard assignments identical), not bitwise.
//! * A pool of width 1 — or no pool — takes the sequential single-chunk
//!   path, which performs exactly the PR 4 operation sequence:
//!   **bit-identical at 1 thread** (`diff_fcm` pins `to_bits` equality).
//!
//! k-means++ seeding stays sequential (it is a running-minimum scan with a
//! data dependence between rounds) and bit-identical in every mode.

use grouptravel_geo::{DenseMatrix, DistanceMetric, GeoPoint, EARTH_RADIUS_KM};
use grouptravel_pool::{TaskKind, WorkerPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the fuzzy c-means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FcmConfig {
    /// Number of clusters `k` (one per composite item in GroupTravel).
    pub k: usize,
    /// Fuzzifier exponent `m` (the paper's `f`); must be > 1.
    pub fuzzifier: f64,
    /// Maximum number of update iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the maximum centroid displacement, in
    /// kilometres.
    pub tolerance_km: f64,
    /// Distance metric (equirectangular by default, per the paper).
    pub metric: DistanceMetric,
    /// Randomness seed for centroid initialization.
    pub seed: u64,
}

impl Default for FcmConfig {
    fn default() -> Self {
        Self {
            k: 5,
            fuzzifier: 2.0,
            max_iterations: 100,
            tolerance_km: 0.001,
            metric: DistanceMetric::Equirectangular,
            seed: 42,
        }
    }
}

impl FcmConfig {
    /// Convenience constructor for `k` clusters with defaults elsewhere.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// A 64-bit key identifying every parameter that influences the result
    /// of [`FuzzyCMeans::fit`] (FNV-1a over the exact field bits).
    ///
    /// Combined with a catalog fingerprint this keys the serving engine's
    /// model cache: equal keys over the same point set are guaranteed to
    /// produce identical clusterings, so a cached [`FcmResult`] can stand in
    /// for a fresh fit.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let mut hash = grouptravel_geo::Fnv1a::new();
        hash.write_u64(self.k as u64);
        hash.write_f64(self.fuzzifier);
        hash.write_u64(self.max_iterations as u64);
        hash.write_f64(self.tolerance_km);
        hash.write(&[match self.metric {
            DistanceMetric::Haversine => 0,
            DistanceMetric::Equirectangular => 1,
        }]);
        hash.write_u64(self.seed);
        hash.finish()
    }
}

/// Errors raised by [`FuzzyCMeans::fit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FcmError {
    /// `k` was zero.
    ZeroClusters,
    /// Fewer points than clusters.
    NotEnoughPoints,
    /// The fuzzifier was not greater than 1.
    InvalidFuzzifier,
}

impl fmt::Display for FcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcmError::ZeroClusters => write!(f, "k must be at least 1"),
            FcmError::NotEnoughPoints => write!(f, "need at least k points to place k centroids"),
            FcmError::InvalidFuzzifier => write!(f, "the fuzzifier must be greater than 1"),
        }
    }
}

impl std::error::Error for FcmError {}

/// Result of a fuzzy c-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcmResult {
    /// Final centroid positions, `k` of them.
    pub centroids: Vec<GeoPoint>,
    /// Membership matrix `W` as a flat row-major `n × k` [`DenseMatrix`]:
    /// `memberships[i][j]` is the degree to which point `i` belongs to
    /// cluster `j`. Every row sums to 1.
    pub memberships: DenseMatrix,
    /// Number of iterations actually run.
    pub iterations: usize,
    /// Whether the run converged before hitting the iteration cap.
    pub converged: bool,
    /// Value of the FCM objective `Σ_ij w_ij^m d_ij²` at the final state
    /// (kilometres squared).
    pub objective: f64,
}

impl FcmResult {
    /// The membership row of point `i` (`k` weights summing to 1), or
    /// `None` when `i` is out of range.
    #[must_use]
    pub fn membership_row(&self, i: usize) -> Option<&[f64]> {
        self.memberships.get_row(i)
    }
}

/// Squared coincidence threshold: the seed treated `d <= f64::EPSILON` km
/// as "point sits on the centroid"; squared distances compare against the
/// squared bound.
const COINCIDENT_D2: f64 = f64::EPSILON * f64::EPSILON;

const EARTH_RADIUS_SQ: f64 = EARTH_RADIUS_KM * EARTH_RADIUS_KM;

/// Points per parallel sweep chunk. Part of the determinism contract: the
/// chunk grid is a function of `n` and this constant only, so the same
/// input produces the same per-chunk partial sums — and therefore the same
/// chunk-ordered reduction — at any thread count. Changing this constant
/// changes parallel results at the last ulp (it re-brackets the float
/// sums) and must be treated like a solver version bump.
pub const PARALLEL_CHUNK_POINTS: usize = 1024;

/// Per-point (or per-centroid) precomputed geometry: everything the squared
/// distance kernels need, so the inner loop is trig-free.
struct Projection {
    lat_rad: Vec<f64>,
    lon_rad: Vec<f64>,
    /// `cos(lat_rad / 2)` — one factor of the angle-sum identity for the
    /// equirectangular mean-latitude cosine.
    cos_half: Vec<f64>,
    /// `sin(lat_rad / 2)` — the other factor.
    sin_half: Vec<f64>,
    /// `cos(lat_rad)` — the Haversine latitude factor.
    cos_lat: Vec<f64>,
}

impl Projection {
    fn with_capacity(n: usize) -> Self {
        Self {
            lat_rad: Vec::with_capacity(n),
            lon_rad: Vec::with_capacity(n),
            cos_half: Vec::with_capacity(n),
            sin_half: Vec::with_capacity(n),
            cos_lat: Vec::with_capacity(n),
        }
    }

    fn of_points(points: &[GeoPoint]) -> Self {
        let mut proj = Self::with_capacity(points.len());
        proj.recompute(points);
        proj
    }

    /// Refills the buffers from `points` (used per iteration for the moving
    /// centroids — `k` trig evaluations per sweep instead of `n·k`).
    fn recompute(&mut self, points: &[GeoPoint]) {
        self.lat_rad.clear();
        self.lon_rad.clear();
        self.cos_half.clear();
        self.sin_half.clear();
        self.cos_lat.clear();
        for p in points {
            let lat = p.lat_rad();
            let (sin_half, cos_half) = (lat * 0.5).sin_cos();
            self.lat_rad.push(lat);
            self.lon_rad.push(p.lon_rad());
            self.cos_half.push(cos_half);
            self.sin_half.push(sin_half);
            self.cos_lat.push(lat.cos());
        }
    }
}

/// Iteration scratch, allocated once per fit and reused by every sweep.
struct Scratch {
    /// Squared distances of the current point to every centroid.
    d2: Vec<f64>,
    /// Inverse (powered) distances — the membership numerators.
    inv: Vec<f64>,
    /// Which centroids the current point coincides with (boolean row, the
    /// seed used an `O(k²)` `Vec::contains` scan here).
    coincident: Vec<bool>,
    /// Fused centroid accumulators: Σ w^m · lat, Σ w^m · lon, Σ w^m.
    acc_lat: Vec<f64>,
    acc_lon: Vec<f64>,
    acc_w: Vec<f64>,
}

impl Scratch {
    fn new(k: usize) -> Self {
        Self {
            d2: vec![0.0; k],
            inv: vec![0.0; k],
            coincident: vec![false; k],
            acc_lat: vec![0.0; k],
            acc_lon: vec![0.0; k],
            acc_w: vec![0.0; k],
        }
    }

    fn reset_accumulators(&mut self) {
        self.acc_lat.fill(0.0);
        self.acc_lon.fill(0.0);
        self.acc_w.fill(0.0);
    }
}

/// Per-fit sweep state: the fixed chunk grid, one [`Scratch`] and one
/// objective slot per chunk, and the chunk-ordered reduction target.
/// Allocated once per fit; zero allocations per sweep in either mode.
struct SweepBuffers<'p> {
    /// `None` runs chunks inline on the calling thread (the sequential
    /// single-chunk path); a pool wider than one worker runs them scoped.
    pool: Option<&'p WorkerPool>,
    /// Points per chunk — `n` when sequential, [`PARALLEL_CHUNK_POINTS`]
    /// when parallel. Never a function of the pool width.
    chunk_points: usize,
    scratches: Vec<Scratch>,
    objectives: Vec<f64>,
    /// Accumulators after [`SweepBuffers::reduce`].
    reduced: Scratch,
}

impl<'p> SweepBuffers<'p> {
    fn new(n: usize, k: usize, pool: Option<&'p WorkerPool>) -> Self {
        // A one-worker pool gains nothing from chunking; take the
        // sequential single-chunk path so 1-thread results stay
        // bit-identical to the plain sequential solver.
        let pool = pool.filter(|p| p.threads() > 1);
        let chunk_points = match pool {
            Some(_) => PARALLEL_CHUNK_POINTS,
            None => n.max(1),
        };
        let chunks = n.div_ceil(chunk_points).max(1);
        Self {
            pool,
            chunk_points,
            scratches: (0..chunks).map(|_| Scratch::new(k)).collect(),
            objectives: vec![0.0; chunks],
            reduced: Scratch::new(k),
        }
    }

    /// Reduces the per-chunk centroid accumulators in chunk-index order:
    /// chunk 0 is copied bit-exactly, chunks 1.. are added in order. With
    /// a single chunk this is a pure copy, so the sequential path's floats
    /// pass through untouched.
    fn reduce(&mut self) {
        let (first, rest) = self
            .scratches
            .split_first()
            .expect("at least one sweep chunk");
        self.reduced.acc_lat.copy_from_slice(&first.acc_lat);
        self.reduced.acc_lon.copy_from_slice(&first.acc_lon);
        self.reduced.acc_w.copy_from_slice(&first.acc_w);
        for scratch in rest {
            for (acc, &part) in self.reduced.acc_lat.iter_mut().zip(&scratch.acc_lat) {
                *acc += part;
            }
            for (acc, &part) in self.reduced.acc_lon.iter_mut().zip(&scratch.acc_lon) {
                *acc += part;
            }
            for (acc, &part) in self.reduced.acc_w.iter_mut().zip(&scratch.acc_w) {
                *acc += part;
            }
        }
    }

    /// The objective, reduced over the per-chunk partials in chunk order.
    fn objective(&self) -> f64 {
        let (&first, rest) = self
            .objectives
            .split_first()
            .expect("at least one sweep chunk");
        let mut total = first;
        for &part in rest {
            total += part;
        }
        total
    }
}

/// The fuzzy c-means solver.
#[derive(Debug, Clone)]
pub struct FuzzyCMeans {
    config: FcmConfig,
}

impl FuzzyCMeans {
    /// Creates a solver with the given configuration.
    #[must_use]
    pub fn new(config: FcmConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &FcmConfig {
        &self.config
    }

    /// Runs fuzzy c-means over `points`, sequentially.
    pub fn fit(&self, points: &[GeoPoint]) -> Result<FcmResult, FcmError> {
        self.fit_on(points, None)
    }

    /// Runs fuzzy c-means over `points`, parallelizing the fused sweeps on
    /// `pool` when one is given and wider than one worker (see the module
    /// docs for the determinism contract). `None` — or a one-worker pool —
    /// runs the sequential solver, bit-identical to [`FuzzyCMeans::fit`].
    ///
    /// # Errors
    /// Same preconditions as [`FuzzyCMeans::fit`].
    pub fn fit_on(
        &self,
        points: &[GeoPoint],
        pool: Option<&WorkerPool>,
    ) -> Result<FcmResult, FcmError> {
        self.validate(points)?;
        let centroids = self.initial_centroids(points);
        Ok(self.iterate(points, centroids, pool))
    }

    /// Runs fuzzy c-means warm-started from `initial` centroids instead of
    /// k-means++ seeding — the resumable path: feeding back the centroids of
    /// a previous [`FcmResult`] (e.g. one pulled from the serving engine's
    /// model cache after a small catalog update) converges in a handful of
    /// iterations instead of a full fit.
    ///
    /// # Errors
    /// Same preconditions as [`FuzzyCMeans::fit`], plus `initial` must hold
    /// exactly `k` centroids (`FcmError::ZeroClusters` is returned for a
    /// mismatch of zero, `FcmError::NotEnoughPoints` otherwise).
    pub fn fit_from(
        &self,
        points: &[GeoPoint],
        initial: &[GeoPoint],
    ) -> Result<FcmResult, FcmError> {
        self.fit_from_on(points, initial, None)
    }

    /// [`FuzzyCMeans::fit_from`] with an optional worker pool, under the
    /// same contract as [`FuzzyCMeans::fit_on`].
    ///
    /// # Errors
    /// Same preconditions as [`FuzzyCMeans::fit_from`].
    pub fn fit_from_on(
        &self,
        points: &[GeoPoint],
        initial: &[GeoPoint],
        pool: Option<&WorkerPool>,
    ) -> Result<FcmResult, FcmError> {
        self.validate(points)?;
        if initial.len() != self.config.k {
            return Err(if initial.is_empty() {
                FcmError::ZeroClusters
            } else {
                FcmError::NotEnoughPoints
            });
        }
        Ok(self.iterate(points, initial.to_vec(), pool))
    }

    fn validate(&self, points: &[GeoPoint]) -> Result<(), FcmError> {
        let k = self.config.k;
        if k == 0 {
            return Err(FcmError::ZeroClusters);
        }
        if points.len() < k {
            return Err(FcmError::NotEnoughPoints);
        }
        if self.config.fuzzifier <= 1.0 {
            return Err(FcmError::InvalidFuzzifier);
        }
        Ok(())
    }

    fn iterate(
        &self,
        points: &[GeoPoint],
        mut centroids: Vec<GeoPoint>,
        pool: Option<&WorkerPool>,
    ) -> FcmResult {
        let k = self.config.k;
        let proj = Projection::of_points(points);
        let mut cent_proj = Projection::with_capacity(k);
        let mut memberships = DenseMatrix::zeros(points.len(), k);
        let mut bufs = SweepBuffers::new(points.len(), k, pool);
        let mut iterations = 0;
        let mut converged = false;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            cent_proj.recompute(&centroids);
            self.sweep_all(points, &proj, &cent_proj, &mut memberships, &mut bufs, true);
            bufs.reduce();

            let max_shift = self.apply_centroids(&mut centroids, &bufs.reduced);
            if max_shift < self.config.tolerance_km {
                converged = true;
                break;
            }
        }
        // Make the memberships consistent with the final centroids; the
        // same pass accumulates the objective from the weights and squared
        // distances it just computed.
        cent_proj.recompute(&centroids);
        self.sweep_all(
            points,
            &proj,
            &cent_proj,
            &mut memberships,
            &mut bufs,
            false,
        );
        let objective = bufs.objective();

        FcmResult {
            centroids,
            memberships,
            iterations,
            converged,
            objective,
        }
    }

    /// k-means++-style seeding: the first centroid is a random point, each
    /// subsequent centroid is drawn with probability proportional to the
    /// squared distance from the nearest centroid chosen so far.
    ///
    /// The nearest-centroid distances are maintained as a running-minimum
    /// array updated once per new centroid (`O(n·k)` total); the seed
    /// re-scanned every chosen centroid every round (`O(n·k²)`). Both take
    /// the same minima over the same floats, so the chosen centroids are
    /// bit-identical.
    fn initial_centroids(&self, points: &[GeoPoint]) -> Vec<GeoPoint> {
        let metric = self.config.metric;
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut centroids = Vec::with_capacity(self.config.k);

        let first = points[rng.gen_range(0..points.len())];
        centroids.push(first);
        let mut nearest_d2: Vec<f64> = points
            .iter()
            .map(|p| metric.distance_km(p, &first).powi(2))
            .collect();

        while centroids.len() < self.config.k {
            let total: f64 = nearest_d2.iter().sum();
            let chosen = if total <= f64::EPSILON {
                // All remaining points coincide with existing centroids.
                rng.gen_range(0..points.len())
            } else {
                let mut pick = rng.gen_range(0.0..total);
                let mut chosen = points.len() - 1;
                for (idx, &d) in nearest_d2.iter().enumerate() {
                    if pick < d {
                        chosen = idx;
                        break;
                    }
                    pick -= d;
                }
                chosen
            };
            let centroid = points[chosen];
            centroids.push(centroid);
            for (best, p) in nearest_d2.iter_mut().zip(points) {
                let d = metric.distance_km(p, &centroid).powi(2);
                if d < *best {
                    *best = d;
                }
            }
        }
        centroids
    }

    /// Squared distances from point `i` to every centroid, written into
    /// `out` — pure multiply-add under the equirectangular metric.
    fn distance_sq_row(&self, proj: &Projection, i: usize, cent: &Projection, out: &mut [f64]) {
        let lat = proj.lat_rad[i];
        let lon = proj.lon_rad[i];
        match self.config.metric {
            DistanceMetric::Equirectangular => {
                let cos_half = proj.cos_half[i];
                let sin_half = proj.sin_half[i];
                for (j, d2) in out.iter_mut().enumerate() {
                    let cos_mean = cent.cos_half[j] * cos_half - cent.sin_half[j] * sin_half;
                    let x = (cent.lon_rad[j] - lon) * cos_mean;
                    let y = cent.lat_rad[j] - lat;
                    *d2 = (x * x + y * y) * EARTH_RADIUS_SQ;
                }
            }
            DistanceMetric::Haversine => {
                let cos_lat = proj.cos_lat[i];
                for (j, d2) in out.iter_mut().enumerate() {
                    let s = ((cent.lat_rad[j] - lat) * 0.5).sin().powi(2)
                        + cos_lat * cent.cos_lat[j] * ((cent.lon_rad[j] - lon) * 0.5).sin().powi(2);
                    let d = 2.0 * EARTH_RADIUS_KM * s.sqrt().asin();
                    *d2 = d * d;
                }
            }
        }
    }

    /// One fused pass over every point, chunked over the fixed grid in
    /// `bufs`: each chunk fills its membership rows and its own scratch
    /// accumulators / objective slot. With a pool the chunks run as scoped
    /// tasks (disjoint membership row ranges, disjoint scratches — no
    /// synchronization beyond the scope barrier); without one they run
    /// inline in chunk order. Callers reduce via [`SweepBuffers::reduce`] /
    /// [`SweepBuffers::objective`].
    fn sweep_all(
        &self,
        points: &[GeoPoint],
        proj: &Projection,
        cent: &Projection,
        memberships: &mut DenseMatrix,
        bufs: &mut SweepBuffers<'_>,
        accumulate: bool,
    ) {
        let k = self.config.k;
        let chunk_points = bufs.chunk_points;
        let rows = memberships.as_mut_slice();
        let chunk_iter = points
            .chunks(chunk_points)
            .zip(rows.chunks_mut(chunk_points * k))
            .zip(bufs.scratches.iter_mut().zip(bufs.objectives.iter_mut()))
            .enumerate();
        match bufs.pool {
            Some(pool) => pool.scope(TaskKind::FcmTrain, |scope| {
                for (c, ((point_chunk, row_chunk), (scratch, objective))) in chunk_iter {
                    let base = c * chunk_points;
                    scope.spawn(move || {
                        *objective = self.sweep_chunk(
                            point_chunk,
                            base,
                            proj,
                            cent,
                            row_chunk,
                            scratch,
                            accumulate,
                        );
                    });
                }
            }),
            None => {
                for (c, ((point_chunk, row_chunk), (scratch, objective))) in chunk_iter {
                    let base = c * chunk_points;
                    *objective = self.sweep_chunk(
                        point_chunk,
                        base,
                        proj,
                        cent,
                        row_chunk,
                        scratch,
                        accumulate,
                    );
                }
            }
        }
    }

    /// The fused membership + accumulation pass over one chunk of points:
    /// membership rows and, depending on `accumulate`, either the centroid
    /// accumulators (iteration sweeps) or the objective (final sweep).
    /// `base` is the global index of `points[0]`; `rows` is the chunk's
    /// slice of the membership matrix. Returns the chunk's objective
    /// partial (0 while iterating).
    #[allow(clippy::too_many_arguments)]
    fn sweep_chunk(
        &self,
        points: &[GeoPoint],
        base: usize,
        proj: &Projection,
        cent: &Projection,
        rows: &mut [f64],
        scratch: &mut Scratch,
        accumulate: bool,
    ) -> f64 {
        let k = self.config.k;
        let m = self.config.fuzzifier;
        let fast = m == 2.0;
        let inv_exponent = 1.0 / (m - 1.0);
        let mut objective = 0.0;
        if accumulate {
            scratch.reset_accumulators();
        }

        for (local, point) in points.iter().enumerate() {
            let i = base + local;
            self.distance_sq_row(proj, i, cent, &mut scratch.d2);

            // A point sitting exactly on one or more centroids belongs to
            // them (equally) and to nothing else.
            let mut coincident_count = 0usize;
            for (flag, &d2) in scratch.coincident.iter_mut().zip(&scratch.d2) {
                *flag = d2 <= COINCIDENT_D2;
                coincident_count += usize::from(*flag);
            }

            let row = &mut rows[local * k..(local + 1) * k];
            if coincident_count > 0 {
                let share = 1.0 / coincident_count as f64;
                for (slot, &flag) in row.iter_mut().zip(&scratch.coincident) {
                    *slot = if flag { share } else { 0.0 };
                }
            } else if fast {
                // m == 2: w_j = (1/d²_j) / Σ_l 1/d²_l — no powf at all.
                let mut total_inv = 0.0;
                for (inv, &d2) in scratch.inv.iter_mut().zip(&scratch.d2) {
                    *inv = 1.0 / d2;
                    total_inv += *inv;
                }
                for (slot, &inv) in row.iter_mut().zip(&scratch.inv) {
                    *slot = inv / total_inv;
                }
            } else {
                // General m: w_j ∝ d²_j^(−1/(m−1)). Normalizing by the row
                // minimum keeps every powered ratio in (0, 1], so fuzzifiers
                // close to 1 cannot overflow the way a raw reciprocal power
                // would.
                let d2_min = scratch.d2.iter().copied().fold(f64::INFINITY, f64::min);
                let mut total_inv = 0.0;
                for (inv, &d2) in scratch.inv.iter_mut().zip(&scratch.d2) {
                    *inv = (d2_min / d2).powf(inv_exponent);
                    total_inv += *inv;
                }
                for (slot, &inv) in row.iter_mut().zip(&scratch.inv) {
                    *slot = inv / total_inv;
                }
            }

            if accumulate {
                for (((&w, acc_w), acc_lat), acc_lon) in row
                    .iter()
                    .zip(&mut scratch.acc_w)
                    .zip(&mut scratch.acc_lat)
                    .zip(&mut scratch.acc_lon)
                {
                    let u = if fast { w * w } else { w.powf(m) };
                    *acc_w += u;
                    *acc_lat += point.lat * u;
                    *acc_lon += point.lon * u;
                }
            } else {
                for (&w, &d2) in row.iter().zip(&scratch.d2) {
                    let u = if fast { w * w } else { w.powf(m) };
                    objective += u * d2;
                }
            }
        }
        objective
    }

    /// Replaces `centroids` with the accumulated weighted means (falling
    /// back to the previous centroid when a cluster's total weight is
    /// numerically zero, as the seed's `weighted_centroid` did) and returns
    /// the maximum displacement in kilometres.
    fn apply_centroids(&self, centroids: &mut [GeoPoint], scratch: &Scratch) -> f64 {
        let mut max_shift = 0.0f64;
        for (j, centroid) in centroids.iter_mut().enumerate() {
            let total = scratch.acc_w[j];
            let new = if total > f64::EPSILON {
                GeoPoint::new_unchecked(scratch.acc_lat[j] / total, scratch.acc_lon[j] / total)
            } else {
                *centroid
            };
            max_shift = max_shift.max(self.config.metric.distance_km(centroid, &new));
            *centroid = new;
        }
        max_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs around Paris landmarks.
    fn three_blobs() -> Vec<GeoPoint> {
        let centres = [
            GeoPoint::new_unchecked(48.8606, 2.3376), // Louvre
            GeoPoint::new_unchecked(48.8860, 2.3430), // Montmartre
            GeoPoint::new_unchecked(48.8530, 2.3700), // Bastille
        ];
        let mut points = Vec::new();
        for (b, centre) in centres.iter().enumerate() {
            for i in 0..12 {
                let offset = 0.0008 * (i as f64 - 5.5);
                points.push(GeoPoint::new_unchecked(
                    centre.lat + offset,
                    centre.lon + offset * if b % 2 == 0 { 1.0 } else { -1.0 },
                ));
            }
        }
        points
    }

    #[test]
    fn membership_rows_sum_to_one() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        for row in &result.memberships {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn converges_on_well_separated_blobs() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert!(
            result.converged,
            "did not converge in {} iterations",
            result.iterations
        );
        assert_eq!(result.centroids.len(), 3);
    }

    #[test]
    fn centroids_land_near_the_blob_centres() {
        let points = three_blobs();
        let result = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        let expected = [
            GeoPoint::new_unchecked(48.8606, 2.3376),
            GeoPoint::new_unchecked(48.8860, 2.3430),
            GeoPoint::new_unchecked(48.8530, 2.3700),
        ];
        for target in &expected {
            let nearest = result
                .centroids
                .iter()
                .map(|c| DistanceMetric::Haversine.distance_km(c, target))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.5, "no centroid within 0.5 km of {target}");
        }
    }

    #[test]
    fn fit_is_deterministic_for_a_seed() {
        let points = three_blobs();
        let a = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        let b = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.memberships, b.memberships);
    }

    #[test]
    fn k_equal_to_number_of_points_is_allowed() {
        let points = vec![
            GeoPoint::new_unchecked(48.86, 2.33),
            GeoPoint::new_unchecked(48.88, 2.35),
        ];
        let result = FuzzyCMeans::new(FcmConfig::with_k(2)).fit(&points).unwrap();
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn error_cases_are_reported() {
        let points = three_blobs();
        assert_eq!(
            FuzzyCMeans::new(FcmConfig::with_k(0))
                .fit(&points)
                .unwrap_err(),
            FcmError::ZeroClusters
        );
        assert_eq!(
            FuzzyCMeans::new(FcmConfig::with_k(points.len() + 1))
                .fit(&points)
                .unwrap_err(),
            FcmError::NotEnoughPoints
        );
        let bad = FcmConfig {
            fuzzifier: 1.0,
            ..FcmConfig::with_k(2)
        };
        assert_eq!(
            FuzzyCMeans::new(bad).fit(&points).unwrap_err(),
            FcmError::InvalidFuzzifier
        );
    }

    #[test]
    fn duplicate_points_do_not_break_the_solver() {
        let p = GeoPoint::new_unchecked(48.86, 2.33);
        let q = GeoPoint::new_unchecked(48.90, 2.40);
        let points = vec![p, p, p, q, q, q];
        let result = FuzzyCMeans::new(FcmConfig::with_k(2)).fit(&points).unwrap();
        for row in &result.memberships {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_fuzzifier_gives_fuzzier_memberships() {
        let points = three_blobs();
        let crisp = FuzzyCMeans::new(FcmConfig {
            fuzzifier: 1.5,
            ..FcmConfig::with_k(3)
        })
        .fit(&points)
        .unwrap();
        let fuzzy = FuzzyCMeans::new(FcmConfig {
            fuzzifier: 3.0,
            ..FcmConfig::with_k(3)
        })
        .fit(&points)
        .unwrap();
        let avg_max = |result: &FcmResult| {
            result
                .memberships
                .rows()
                .map(|row| row.iter().copied().fold(0.0f64, f64::max))
                .sum::<f64>()
                / result.memberships.nrows() as f64
        };
        assert!(avg_max(&crisp) > avg_max(&fuzzy));
    }

    #[test]
    fn angle_sum_identity_recovers_the_mean_latitude_cosine() {
        let points = vec![
            GeoPoint::new_unchecked(48.8606, 2.3376),
            GeoPoint::new_unchecked(41.4036, 2.1744),
            GeoPoint::new_unchecked(-33.8688, 151.2093),
        ];
        let proj = Projection::of_points(&points);
        for (a, b) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let direct = ((points[a].lat + points[b].lat) / 2.0).to_radians().cos();
            let identity =
                proj.cos_half[a] * proj.cos_half[b] - proj.sin_half[a] * proj.sin_half[b];
            assert!(
                (direct - identity).abs() < 1e-14,
                "identity drifted: {direct} vs {identity}"
            );
        }
    }

    #[test]
    fn squared_distance_row_matches_the_scalar_metrics() {
        let points = three_blobs();
        let centroids = vec![
            GeoPoint::new_unchecked(48.87, 2.34),
            GeoPoint::new_unchecked(48.85, 2.37),
        ];
        for metric in [DistanceMetric::Equirectangular, DistanceMetric::Haversine] {
            let solver = FuzzyCMeans::new(FcmConfig {
                metric,
                ..FcmConfig::with_k(2)
            });
            let proj = Projection::of_points(&points);
            let cent = Projection::of_points(&centroids);
            let mut d2 = vec![0.0; centroids.len()];
            for (i, p) in points.iter().enumerate() {
                solver.distance_sq_row(&proj, i, &cent, &mut d2);
                for (j, c) in centroids.iter().enumerate() {
                    let direct = metric.distance_km(p, c);
                    assert!(
                        (d2[j].sqrt() - direct).abs() < 1e-9,
                        "{metric:?} point {i} centroid {j}: {} vs {direct}",
                        d2[j].sqrt()
                    );
                }
            }
        }
    }

    #[test]
    fn cache_key_separates_configs_and_is_stable() {
        let base = FcmConfig::with_k(5);
        assert_eq!(base.cache_key(), FcmConfig::with_k(5).cache_key());
        assert_ne!(base.cache_key(), FcmConfig::with_k(6).cache_key());
        assert_ne!(
            base.cache_key(),
            FcmConfig {
                fuzzifier: 2.5,
                ..base
            }
            .cache_key()
        );
        assert_ne!(base.cache_key(), FcmConfig { seed: 43, ..base }.cache_key());
        assert_ne!(
            base.cache_key(),
            FcmConfig {
                metric: DistanceMetric::Haversine,
                ..base
            }
            .cache_key()
        );
    }

    #[test]
    fn fit_from_resumes_a_converged_state_in_one_iteration() {
        let points = three_blobs();
        let solver = FuzzyCMeans::new(FcmConfig::with_k(3));
        let cold = solver.fit(&points).unwrap();
        let warm = solver.fit_from(&points, &cold.centroids).unwrap();
        assert!(warm.converged);
        assert!(
            warm.iterations <= 2,
            "warm start took {} iterations",
            warm.iterations
        );
        // The resumed solution stays at the converged optimum.
        for (a, b) in cold.centroids.iter().zip(&warm.centroids) {
            assert!(DistanceMetric::Haversine.distance_km(a, b) < 0.01);
        }
    }

    #[test]
    fn fit_from_validates_the_initial_centroid_count() {
        let points = three_blobs();
        let solver = FuzzyCMeans::new(FcmConfig::with_k(3));
        assert_eq!(
            solver.fit_from(&points, &[]).unwrap_err(),
            FcmError::ZeroClusters
        );
        let two = vec![points[0], points[1]];
        assert_eq!(
            solver.fit_from(&points, &two).unwrap_err(),
            FcmError::NotEnoughPoints
        );
    }

    #[test]
    fn objective_is_lower_for_more_clusters() {
        let points = three_blobs();
        let k1 = FuzzyCMeans::new(FcmConfig::with_k(1)).fit(&points).unwrap();
        let k3 = FuzzyCMeans::new(FcmConfig::with_k(3)).fit(&points).unwrap();
        assert!(k3.objective < k1.objective);
    }
}
