//! Fuzzy clustering substrate for GroupTravel.
//!
//! The KFC algorithm (Leroy et al., CIKM 2015), which GroupTravel builds on,
//! positions `k` centroids over the city with *fuzzy c-means* so that the
//! resulting composite items "cover" the whole dataset, and allows the same
//! POI to participate in several composite items (§3.2). This crate provides
//! that substrate:
//!
//! * [`fcm`] — fuzzy c-means over geographic points with the membership
//!   matrix `W` (rows sum to 1), k-means++-style seeding, and convergence by
//!   centroid displacement.
//! * [`assignment`] — helpers to read the fuzzy result: hard assignments,
//!   per-cluster top members, and the fuzzy partition coefficient.
//! * [`reference`] — the seed's nested-`Vec` solver, kept verbatim so the
//!   differential tests and the `model_training` bench can measure the flat
//!   hot path against exactly what it replaced.

pub mod assignment;
pub mod fcm;
pub mod reference;

pub use assignment::{fuzzy_partition_coefficient, hard_assignments, top_members};
pub use fcm::{FcmConfig, FcmError, FcmResult, FuzzyCMeans};
pub use reference::{reference_fit, reference_fit_from, ReferenceFcmResult};
