//! Fuzzy clustering substrate for GroupTravel.
//!
//! The KFC algorithm (Leroy et al., CIKM 2015), which GroupTravel builds on,
//! positions `k` centroids over the city with *fuzzy c-means* so that the
//! resulting composite items "cover" the whole dataset, and allows the same
//! POI to participate in several composite items (§3.2). This crate provides
//! that substrate:
//!
//! * [`fcm`] — fuzzy c-means over geographic points with the membership
//!   matrix `W` (rows sum to 1), k-means++-style seeding, and convergence by
//!   centroid displacement.
//! * [`assignment`] — helpers to read the fuzzy result: hard assignments,
//!   per-cluster top members, and the fuzzy partition coefficient.

pub mod assignment;
pub mod fcm;

pub use assignment::{fuzzy_partition_coefficient, hard_assignments, top_members};
pub use fcm::{FcmConfig, FcmError, FcmResult, FuzzyCMeans};
