//! The seed fuzzy-c-means implementation, kept as a reference.
//!
//! This is the nested-`Vec`, trig-per-pair, `powf`-per-ratio solver the flat
//! [`crate::FuzzyCMeans`] replaced. It exists for two reasons:
//!
//! * the differential test suite proves the optimized solver reproduces it
//!   (identical hard assignments under equal seeds, centroids and
//!   memberships within `1e-9`), and
//! * the `model_training` bench and `model_training_report` binary measure
//!   the optimized solver *against exactly what it replaced*, the same way
//!   `candidates::brute_force_k_nearest` preserves the seed spatial path.
//!
//! Do not "fix" or speed up this module: its value is bit-for-bit fidelity
//! to the seed algorithm.

use crate::fcm::{FcmConfig, FcmError};
use grouptravel_geo::{weighted_centroid, GeoPoint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a reference run, with the seed's nested-`Vec` membership rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceFcmResult {
    /// Final centroid positions, `k` of them.
    pub centroids: Vec<GeoPoint>,
    /// Membership matrix, one `Vec` per point.
    pub memberships: Vec<Vec<f64>>,
    /// Number of iterations actually run.
    pub iterations: usize,
    /// Whether the run converged before hitting the iteration cap.
    pub converged: bool,
    /// FCM objective at the final state (km²).
    pub objective: f64,
}

/// Runs the seed fuzzy-c-means algorithm with `config` over `points`.
///
/// # Errors
/// Same preconditions as [`crate::FuzzyCMeans::fit`].
pub fn reference_fit(
    config: &FcmConfig,
    points: &[GeoPoint],
) -> Result<ReferenceFcmResult, FcmError> {
    if config.k == 0 {
        return Err(FcmError::ZeroClusters);
    }
    if points.len() < config.k {
        return Err(FcmError::NotEnoughPoints);
    }
    if config.fuzzifier <= 1.0 {
        return Err(FcmError::InvalidFuzzifier);
    }
    let centroids = initial_centroids(config, points);
    Ok(iterate(config, points, centroids))
}

/// Runs the seed algorithm warm-started from `initial` centroids (the
/// counterpart of [`crate::FuzzyCMeans::fit_from`]).
///
/// # Errors
/// Same preconditions as [`reference_fit`], plus `initial` must hold exactly
/// `config.k` centroids.
pub fn reference_fit_from(
    config: &FcmConfig,
    points: &[GeoPoint],
    initial: &[GeoPoint],
) -> Result<ReferenceFcmResult, FcmError> {
    if config.k == 0 {
        return Err(FcmError::ZeroClusters);
    }
    if points.len() < config.k {
        return Err(FcmError::NotEnoughPoints);
    }
    if config.fuzzifier <= 1.0 {
        return Err(FcmError::InvalidFuzzifier);
    }
    if initial.len() != config.k {
        return Err(if initial.is_empty() {
            FcmError::ZeroClusters
        } else {
            FcmError::NotEnoughPoints
        });
    }
    Ok(iterate(config, points, initial.to_vec()))
}

fn iterate(
    config: &FcmConfig,
    points: &[GeoPoint],
    mut centroids: Vec<GeoPoint>,
) -> ReferenceFcmResult {
    let k = config.k;
    let mut memberships = vec![vec![0.0; k]; points.len()];
    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        update_memberships(config, points, &centroids, &mut memberships);
        let new_centroids = update_centroids(config, points, &memberships, &centroids);

        let max_shift = centroids
            .iter()
            .zip(&new_centroids)
            .map(|(old, new)| config.metric.distance_km(old, new))
            .fold(0.0f64, f64::max);
        centroids = new_centroids;

        if max_shift < config.tolerance_km {
            converged = true;
            break;
        }
    }
    update_memberships(config, points, &centroids, &mut memberships);

    let objective = objective(config, points, &centroids, &memberships);
    ReferenceFcmResult {
        centroids,
        memberships,
        iterations,
        converged,
        objective,
    }
}

fn initial_centroids(config: &FcmConfig, points: &[GeoPoint]) -> Vec<GeoPoint> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut centroids = Vec::with_capacity(config.k);
    centroids.push(points[rng.gen_range(0..points.len())]);

    while centroids.len() < config.k {
        let distances: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| config.metric.distance_km(p, c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = distances.iter().sum();
        if total <= f64::EPSILON {
            centroids.push(points[rng.gen_range(0..points.len())]);
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (idx, &d) in distances.iter().enumerate() {
            if pick < d {
                chosen = idx;
                break;
            }
            pick -= d;
        }
        centroids.push(points[chosen]);
    }
    centroids
}

fn update_memberships(
    config: &FcmConfig,
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    memberships: &mut [Vec<f64>],
) {
    let exponent = 2.0 / (config.fuzzifier - 1.0);
    for (i, point) in points.iter().enumerate() {
        let distances: Vec<f64> = centroids
            .iter()
            .map(|c| config.metric.distance_km(point, c))
            .collect();

        let coincident: Vec<usize> = distances
            .iter()
            .enumerate()
            .filter(|(_, &d)| d <= f64::EPSILON)
            .map(|(j, _)| j)
            .collect();
        if !coincident.is_empty() {
            let share = 1.0 / coincident.len() as f64;
            for (j, slot) in memberships[i].iter_mut().enumerate() {
                *slot = if coincident.contains(&j) { share } else { 0.0 };
            }
            continue;
        }

        for j in 0..centroids.len() {
            let mut denom = 0.0;
            for &other in &distances {
                denom += (distances[j] / other).powf(exponent);
            }
            memberships[i][j] = 1.0 / denom;
        }
    }
}

fn update_centroids(
    config: &FcmConfig,
    points: &[GeoPoint],
    memberships: &[Vec<f64>],
    previous: &[GeoPoint],
) -> Vec<GeoPoint> {
    let m = config.fuzzifier;
    (0..config.k)
        .map(|j| {
            let weights: Vec<f64> = memberships.iter().map(|row| row[j].powf(m)).collect();
            weighted_centroid(points, &weights).unwrap_or(previous[j])
        })
        .collect()
}

fn objective(
    config: &FcmConfig,
    points: &[GeoPoint],
    centroids: &[GeoPoint],
    memberships: &[Vec<f64>],
) -> f64 {
    let m = config.fuzzifier;
    let mut total = 0.0;
    for (point, row) in points.iter().zip(memberships) {
        for (centroid, &w) in centroids.iter().zip(row) {
            let d = config.metric.distance_km(point, centroid);
            total += w.powf(m) * d * d;
        }
    }
    total
}
