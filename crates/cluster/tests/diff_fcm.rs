//! Differential tests: the flat, trig-free fuzzy-c-means solver must
//! reproduce the seed implementation (preserved in
//! `grouptravel_cluster::reference`).
//!
//! Equivalence contract (documented in the README's "model-training hot
//! path" section):
//!
//! * k-means++ seeding is **bit-identical** — the running nearest-centroid
//!   minimum takes the same minima over the same floats as the seed's
//!   per-round re-scan.
//! * Iterated results are **tolerance-equal**: the refactored inner loop
//!   (angle-sum cosine, squared distances, inverse-sum memberships) rounds
//!   differently at the last ulp, so centroids, memberships, and the
//!   objective agree to `1e-9` rather than bitwise. Hard assignments,
//!   iteration counts, and convergence flags are identical.

use grouptravel_cluster::reference::{reference_fit, reference_fit_from, ReferenceFcmResult};
use grouptravel_cluster::{FcmConfig, FcmResult, FuzzyCMeans};
use grouptravel_geo::{DistanceMetric, GeoPoint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic mixture of Gaussian-ish blobs over Paris.
fn blob_points(n: usize, blobs: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centres: Vec<(f64, f64)> = (0..blobs)
        .map(|_| (rng.gen_range(48.80f64..48.92), rng.gen_range(2.25f64..2.45)))
        .collect();
    (0..n)
        .map(|i| {
            let (clat, clon) = centres[i % blobs];
            GeoPoint::new_unchecked(
                clat + rng.gen_range(-0.01f64..0.01),
                clon + rng.gen_range(-0.01f64..0.01),
            )
        })
        .collect()
}

fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (idx, &w) in row.iter().enumerate() {
        if w > row[best] {
            best = idx;
        }
    }
    best
}

/// Asserts the equivalence contract between a flat and a reference run.
fn assert_equivalent(flat: &FcmResult, seed: &ReferenceFcmResult, context: &str) {
    assert_eq!(flat.iterations, seed.iterations, "{context}: iterations");
    assert_eq!(flat.converged, seed.converged, "{context}: converged");
    assert_eq!(
        flat.centroids.len(),
        seed.centroids.len(),
        "{context}: centroid count"
    );
    for (j, (a, b)) in flat.centroids.iter().zip(&seed.centroids).enumerate() {
        assert!(
            (a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9,
            "{context}: centroid {j} drifted: {a} vs {b}"
        );
    }
    assert_eq!(
        flat.memberships.nrows(),
        seed.memberships.len(),
        "{context}: membership rows"
    );
    for (i, (flat_row, seed_row)) in flat.memberships.rows().zip(&seed.memberships).enumerate() {
        assert_eq!(
            argmax(flat_row),
            argmax(seed_row),
            "{context}: hard assignment of point {i}"
        );
        for (j, (a, b)) in flat_row.iter().zip(seed_row).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{context}: membership [{i}][{j}] drifted: {a} vs {b}"
            );
        }
    }
    let scale = seed.objective.abs().max(1.0);
    assert!(
        (flat.objective - seed.objective).abs() / scale < 1e-9,
        "{context}: objective drifted: {} vs {}",
        flat.objective,
        seed.objective
    );
}

#[test]
fn fast_path_reproduces_the_seed_under_both_metrics() {
    for metric in [DistanceMetric::Equirectangular, DistanceMetric::Haversine] {
        for (n, k, seed) in [(60, 3, 1u64), (120, 5, 2), (200, 8, 3)] {
            let points = blob_points(n, k, seed * 31 + 7);
            // fuzzifier 2.0: the multiplication fast path vs the seed's
            // powf(exponent) with exponent == 2.
            let config = FcmConfig {
                k,
                metric,
                seed,
                ..FcmConfig::default()
            };
            let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
            let reference = reference_fit(&config, &points).unwrap();
            assert_equivalent(&flat, &reference, &format!("{metric:?} n={n} k={k}"));
        }
    }
}

#[test]
fn general_fuzzifier_path_reproduces_the_seed() {
    for fuzzifier in [1.5, 2.5, 3.0] {
        let points = blob_points(90, 4, 11);
        let config = FcmConfig {
            k: 4,
            fuzzifier,
            seed: 5,
            ..FcmConfig::default()
        };
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        assert_equivalent(&flat, &reference, &format!("m={fuzzifier}"));
    }
}

#[test]
fn fast_path_agrees_with_the_general_path_at_m_two() {
    // The m == 2 fast path (pure multiplication) and the powf path must be
    // the same function; nudge the fuzzifier off 2.0 by a hair to force the
    // general branch and compare against the true fast path.
    let points = blob_points(80, 4, 21);
    let fast = FuzzyCMeans::new(FcmConfig {
        k: 4,
        fuzzifier: 2.0,
        ..FcmConfig::default()
    })
    .fit(&points)
    .unwrap();
    let nudged = FuzzyCMeans::new(FcmConfig {
        k: 4,
        fuzzifier: 2.0 + 1e-12,
        ..FcmConfig::default()
    })
    .fit(&points)
    .unwrap();
    assert_eq!(fast.iterations, nudged.iterations);
    for (a, b) in fast.centroids.iter().zip(&nudged.centroids) {
        assert!((a.lat - b.lat).abs() < 1e-7 && (a.lon - b.lon).abs() < 1e-7);
    }
}

#[test]
fn kmeanspp_seeding_is_bit_identical_to_the_seed() {
    // With zero iterations the returned centroids are exactly the k-means++
    // seeds; the running-minimum rewrite must pick the same points bit for
    // bit (same RNG draws, same minima, same prefix sums).
    for seed in 0..20u64 {
        let points = blob_points(150, 6, seed.wrapping_mul(0x9E37) + 1);
        let config = FcmConfig {
            k: 6,
            max_iterations: 0,
            seed,
            ..FcmConfig::default()
        };
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        for (a, b) in flat.centroids.iter().zip(&reference.centroids) {
            assert_eq!(a.lat.to_bits(), b.lat.to_bits(), "seed {seed}");
            assert_eq!(a.lon.to_bits(), b.lon.to_bits(), "seed {seed}");
        }
    }
}

#[test]
fn duplicate_and_coincident_points_are_handled_identically() {
    let p = GeoPoint::new_unchecked(48.86, 2.33);
    let q = GeoPoint::new_unchecked(48.90, 2.40);
    let r = GeoPoint::new_unchecked(48.82, 2.28);
    let points = vec![p, p, p, q, q, q, r, r];
    for k in [2usize, 3] {
        let config = FcmConfig::with_k(k);
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        assert_equivalent(&flat, &reference, &format!("duplicates k={k}"));
    }
}

#[test]
fn warm_started_fits_are_equivalent_too() {
    let points = blob_points(100, 4, 77);
    let config = FcmConfig {
        k: 4,
        seed: 9,
        ..FcmConfig::default()
    };
    let cold = FuzzyCMeans::new(config).fit(&points).unwrap();
    // Perturb the catalog slightly and resume both solvers from the cold
    // centroids, as the engine's incremental path would.
    let moved: Vec<GeoPoint> = points
        .iter()
        .map(|p| GeoPoint::new_unchecked(p.lat + 0.0003, p.lon - 0.0002))
        .collect();
    let flat = FuzzyCMeans::new(config)
        .fit_from(&moved, &cold.centroids)
        .unwrap();
    let reference = reference_fit_from(&config, &moved, &cold.centroids).unwrap();
    assert_equivalent(&flat, &reference, "warm start");
}

// ---------------------------------------------------------------------------
// Parallel sweeps (PR 8): the chunked solver against the sequential one.
//
// Contract (module docs of `fcm`):
// * pool width 1 (or no pool) → **bit-identical** to the sequential solver;
// * pool width ≥ 2 → fixed chunk grid + chunk-ordered reduction, so results
//   are bit-identical across *any* width ≥ 2 and run-to-run, but only
//   tolerance-equal (1e-9, hard assignments identical) to the sequential
//   solver, whose float sums bracket differently.
// ---------------------------------------------------------------------------

use grouptravel_pool::WorkerPool;
use proptest::prelude::*;

/// Bitwise equality of two solver results, `to_bits` on every float.
fn assert_bits_equal(a: &FcmResult, b: &FcmResult, context: &str) {
    assert_eq!(a.iterations, b.iterations, "{context}: iterations");
    assert_eq!(a.converged, b.converged, "{context}: converged");
    for (j, (ca, cb)) in a.centroids.iter().zip(&b.centroids).enumerate() {
        assert_eq!(
            ca.lat.to_bits(),
            cb.lat.to_bits(),
            "{context}: centroid {j} lat"
        );
        assert_eq!(
            ca.lon.to_bits(),
            cb.lon.to_bits(),
            "{context}: centroid {j} lon"
        );
    }
    let (wa, wb) = (a.memberships.as_slice(), b.memberships.as_slice());
    assert_eq!(wa.len(), wb.len(), "{context}: membership size");
    for (i, (x, y)) in wa.iter().zip(wb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: membership flat[{i}]");
    }
    assert_eq!(
        a.objective.to_bits(),
        b.objective.to_bits(),
        "{context}: objective"
    );
}

/// Tolerance equality between the chunked and sequential solvers: hard
/// assignments identical, floats within 1e-9.
fn assert_tolerance_equal(par: &FcmResult, seq: &FcmResult, context: &str) {
    assert_eq!(par.iterations, seq.iterations, "{context}: iterations");
    assert_eq!(par.converged, seq.converged, "{context}: converged");
    for (j, (a, b)) in par.centroids.iter().zip(&seq.centroids).enumerate() {
        assert!(
            (a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9,
            "{context}: centroid {j} drifted: {a} vs {b}"
        );
    }
    for (i, (prow, srow)) in par
        .memberships
        .rows()
        .zip(seq.memberships.rows())
        .enumerate()
    {
        assert_eq!(
            argmax(prow),
            argmax(srow),
            "{context}: hard assignment of point {i}"
        );
        for (j, (a, b)) in prow.iter().zip(srow).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{context}: membership [{i}][{j}] drifted: {a} vs {b}"
            );
        }
    }
    let denom = seq.objective.abs().max(1.0);
    assert!(
        ((par.objective - seq.objective) / denom).abs() < 1e-9,
        "{context}: objective drifted: {} vs {}",
        par.objective,
        seq.objective
    );
}

#[test]
fn one_thread_pool_is_bit_identical_to_sequential() {
    // 2600 points: three chunks in the parallel grid — but a width-1 pool
    // must take the sequential single-chunk path regardless.
    let points = blob_points(2600, 5, 11);
    let solver = FuzzyCMeans::new(FcmConfig {
        k: 5,
        seed: 3,
        ..FcmConfig::default()
    });
    let pool = WorkerPool::new(1);
    let sequential = solver.fit(&points).unwrap();
    let pooled = solver.fit_on(&points, Some(&pool)).unwrap();
    assert_bits_equal(&pooled, &sequential, "1-thread pool");
}

#[test]
fn parallel_matches_sequential_within_tolerance_at_2_4_8_threads() {
    let points = blob_points(2600, 5, 21);
    let solver = FuzzyCMeans::new(FcmConfig {
        k: 5,
        seed: 7,
        ..FcmConfig::default()
    });
    let sequential = solver.fit(&points).unwrap();
    for threads in [2usize, 4, 8] {
        let pool = WorkerPool::new(threads);
        let parallel = solver.fit_on(&points, Some(&pool)).unwrap();
        assert_tolerance_equal(&parallel, &sequential, &format!("{threads} threads"));
    }
}

#[test]
fn parallel_results_are_bit_identical_across_thread_counts() {
    let points = blob_points(3100, 6, 31);
    let solver = FuzzyCMeans::new(FcmConfig {
        k: 6,
        seed: 5,
        ..FcmConfig::default()
    });
    let two = solver.fit_on(&points, Some(&WorkerPool::new(2))).unwrap();
    for threads in [3usize, 4, 8] {
        let other = solver
            .fit_on(&points, Some(&WorkerPool::new(threads)))
            .unwrap();
        assert_bits_equal(&other, &two, &format!("{threads} vs 2 threads"));
    }
}

#[test]
fn parallel_runs_are_reproducible_at_the_same_thread_count() {
    // Acceptance criterion: two identical runs at the same thread count
    // produce bit-identical models, T ∈ {2, 8}.
    let points = blob_points(2600, 4, 41);
    let solver = FuzzyCMeans::new(FcmConfig {
        k: 4,
        seed: 13,
        ..FcmConfig::default()
    });
    for threads in [2usize, 8] {
        let first = solver
            .fit_on(&points, Some(&WorkerPool::new(threads)))
            .unwrap();
        let second = solver
            .fit_on(&points, Some(&WorkerPool::new(threads)))
            .unwrap();
        assert_bits_equal(&second, &first, &format!("repeat at {threads} threads"));
    }
}

#[test]
fn warm_started_parallel_fit_matches_sequential() {
    let points = blob_points(2100, 4, 51);
    let solver = FuzzyCMeans::new(FcmConfig {
        k: 4,
        seed: 17,
        ..FcmConfig::default()
    });
    let cold = solver.fit(&points).unwrap();
    let moved: Vec<GeoPoint> = points
        .iter()
        .map(|p| GeoPoint::new_unchecked(p.lat + 0.0004, p.lon - 0.0003))
        .collect();
    let sequential = solver.fit_from(&moved, &cold.centroids).unwrap();
    let parallel = solver
        .fit_from_on(&moved, &cold.centroids, Some(&WorkerPool::new(4)))
        .unwrap();
    assert_tolerance_equal(&parallel, &sequential, "warm start, 4 threads");
    let one = solver
        .fit_from_on(&moved, &cold.centroids, Some(&WorkerPool::new(1)))
        .unwrap();
    assert_bits_equal(&one, &sequential, "warm start, 1 thread");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The parallel solver tracks the sequential one on arbitrary blob
    /// mixes, chunk-boundary-straddling sizes, and thread counts 2/4/8 —
    /// and a 1-thread pool stays bitwise sequential.
    #[test]
    fn parallel_solver_tracks_sequential_solver(
        n in 1025usize..2400,
        blobs in 2usize..6,
        k in 2usize..6,
        seed in 0u64..1000,
        threads_idx in 0usize..3,
    ) {
        let threads = [2usize, 4, 8][threads_idx];
        let points = blob_points(n, blobs, seed);
        let solver = FuzzyCMeans::new(FcmConfig {
            k,
            seed,
            max_iterations: 25,
            ..FcmConfig::default()
        });
        let sequential = solver.fit(&points).expect("valid inputs");
        let parallel = solver
            .fit_on(&points, Some(&WorkerPool::new(threads)))
            .expect("valid inputs");
        assert_tolerance_equal(&parallel, &sequential, &format!("prop {threads} threads"));
        let one = solver
            .fit_on(&points, Some(&WorkerPool::new(1)))
            .expect("valid inputs");
        assert_bits_equal(&one, &sequential, "prop 1 thread");
    }
}
