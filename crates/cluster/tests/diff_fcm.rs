//! Differential tests: the flat, trig-free fuzzy-c-means solver must
//! reproduce the seed implementation (preserved in
//! `grouptravel_cluster::reference`).
//!
//! Equivalence contract (documented in the README's "model-training hot
//! path" section):
//!
//! * k-means++ seeding is **bit-identical** — the running nearest-centroid
//!   minimum takes the same minima over the same floats as the seed's
//!   per-round re-scan.
//! * Iterated results are **tolerance-equal**: the refactored inner loop
//!   (angle-sum cosine, squared distances, inverse-sum memberships) rounds
//!   differently at the last ulp, so centroids, memberships, and the
//!   objective agree to `1e-9` rather than bitwise. Hard assignments,
//!   iteration counts, and convergence flags are identical.

use grouptravel_cluster::reference::{reference_fit, reference_fit_from, ReferenceFcmResult};
use grouptravel_cluster::{FcmConfig, FcmResult, FuzzyCMeans};
use grouptravel_geo::{DistanceMetric, GeoPoint};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic mixture of Gaussian-ish blobs over Paris.
fn blob_points(n: usize, blobs: usize, seed: u64) -> Vec<GeoPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let centres: Vec<(f64, f64)> = (0..blobs)
        .map(|_| (rng.gen_range(48.80f64..48.92), rng.gen_range(2.25f64..2.45)))
        .collect();
    (0..n)
        .map(|i| {
            let (clat, clon) = centres[i % blobs];
            GeoPoint::new_unchecked(
                clat + rng.gen_range(-0.01f64..0.01),
                clon + rng.gen_range(-0.01f64..0.01),
            )
        })
        .collect()
}

fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (idx, &w) in row.iter().enumerate() {
        if w > row[best] {
            best = idx;
        }
    }
    best
}

/// Asserts the equivalence contract between a flat and a reference run.
fn assert_equivalent(flat: &FcmResult, seed: &ReferenceFcmResult, context: &str) {
    assert_eq!(flat.iterations, seed.iterations, "{context}: iterations");
    assert_eq!(flat.converged, seed.converged, "{context}: converged");
    assert_eq!(
        flat.centroids.len(),
        seed.centroids.len(),
        "{context}: centroid count"
    );
    for (j, (a, b)) in flat.centroids.iter().zip(&seed.centroids).enumerate() {
        assert!(
            (a.lat - b.lat).abs() < 1e-9 && (a.lon - b.lon).abs() < 1e-9,
            "{context}: centroid {j} drifted: {a} vs {b}"
        );
    }
    assert_eq!(
        flat.memberships.nrows(),
        seed.memberships.len(),
        "{context}: membership rows"
    );
    for (i, (flat_row, seed_row)) in flat.memberships.rows().zip(&seed.memberships).enumerate() {
        assert_eq!(
            argmax(flat_row),
            argmax(seed_row),
            "{context}: hard assignment of point {i}"
        );
        for (j, (a, b)) in flat_row.iter().zip(seed_row).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{context}: membership [{i}][{j}] drifted: {a} vs {b}"
            );
        }
    }
    let scale = seed.objective.abs().max(1.0);
    assert!(
        (flat.objective - seed.objective).abs() / scale < 1e-9,
        "{context}: objective drifted: {} vs {}",
        flat.objective,
        seed.objective
    );
}

#[test]
fn fast_path_reproduces_the_seed_under_both_metrics() {
    for metric in [DistanceMetric::Equirectangular, DistanceMetric::Haversine] {
        for (n, k, seed) in [(60, 3, 1u64), (120, 5, 2), (200, 8, 3)] {
            let points = blob_points(n, k, seed * 31 + 7);
            // fuzzifier 2.0: the multiplication fast path vs the seed's
            // powf(exponent) with exponent == 2.
            let config = FcmConfig {
                k,
                metric,
                seed,
                ..FcmConfig::default()
            };
            let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
            let reference = reference_fit(&config, &points).unwrap();
            assert_equivalent(&flat, &reference, &format!("{metric:?} n={n} k={k}"));
        }
    }
}

#[test]
fn general_fuzzifier_path_reproduces_the_seed() {
    for fuzzifier in [1.5, 2.5, 3.0] {
        let points = blob_points(90, 4, 11);
        let config = FcmConfig {
            k: 4,
            fuzzifier,
            seed: 5,
            ..FcmConfig::default()
        };
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        assert_equivalent(&flat, &reference, &format!("m={fuzzifier}"));
    }
}

#[test]
fn fast_path_agrees_with_the_general_path_at_m_two() {
    // The m == 2 fast path (pure multiplication) and the powf path must be
    // the same function; nudge the fuzzifier off 2.0 by a hair to force the
    // general branch and compare against the true fast path.
    let points = blob_points(80, 4, 21);
    let fast = FuzzyCMeans::new(FcmConfig {
        k: 4,
        fuzzifier: 2.0,
        ..FcmConfig::default()
    })
    .fit(&points)
    .unwrap();
    let nudged = FuzzyCMeans::new(FcmConfig {
        k: 4,
        fuzzifier: 2.0 + 1e-12,
        ..FcmConfig::default()
    })
    .fit(&points)
    .unwrap();
    assert_eq!(fast.iterations, nudged.iterations);
    for (a, b) in fast.centroids.iter().zip(&nudged.centroids) {
        assert!((a.lat - b.lat).abs() < 1e-7 && (a.lon - b.lon).abs() < 1e-7);
    }
}

#[test]
fn kmeanspp_seeding_is_bit_identical_to_the_seed() {
    // With zero iterations the returned centroids are exactly the k-means++
    // seeds; the running-minimum rewrite must pick the same points bit for
    // bit (same RNG draws, same minima, same prefix sums).
    for seed in 0..20u64 {
        let points = blob_points(150, 6, seed.wrapping_mul(0x9E37) + 1);
        let config = FcmConfig {
            k: 6,
            max_iterations: 0,
            seed,
            ..FcmConfig::default()
        };
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        for (a, b) in flat.centroids.iter().zip(&reference.centroids) {
            assert_eq!(a.lat.to_bits(), b.lat.to_bits(), "seed {seed}");
            assert_eq!(a.lon.to_bits(), b.lon.to_bits(), "seed {seed}");
        }
    }
}

#[test]
fn duplicate_and_coincident_points_are_handled_identically() {
    let p = GeoPoint::new_unchecked(48.86, 2.33);
    let q = GeoPoint::new_unchecked(48.90, 2.40);
    let r = GeoPoint::new_unchecked(48.82, 2.28);
    let points = vec![p, p, p, q, q, q, r, r];
    for k in [2usize, 3] {
        let config = FcmConfig::with_k(k);
        let flat = FuzzyCMeans::new(config).fit(&points).unwrap();
        let reference = reference_fit(&config, &points).unwrap();
        assert_equivalent(&flat, &reference, &format!("duplicates k={k}"));
    }
}

#[test]
fn warm_started_fits_are_equivalent_too() {
    let points = blob_points(100, 4, 77);
    let config = FcmConfig {
        k: 4,
        seed: 9,
        ..FcmConfig::default()
    };
    let cold = FuzzyCMeans::new(config).fit(&points).unwrap();
    // Perturb the catalog slightly and resume both solvers from the cold
    // centroids, as the engine's incremental path would.
    let moved: Vec<GeoPoint> = points
        .iter()
        .map(|p| GeoPoint::new_unchecked(p.lat + 0.0003, p.lon - 0.0002))
        .collect();
    let flat = FuzzyCMeans::new(config)
        .fit_from(&moved, &cold.centroids)
        .unwrap();
    let reference = reference_fit_from(&config, &moved, &cold.centroids).unwrap();
    assert_equivalent(&flat, &reference, "warm start");
}
