//! Property-based tests for the fuzzy c-means substrate.

use grouptravel_cluster::{fuzzy_partition_coefficient, hard_assignments, FcmConfig, FuzzyCMeans};
use grouptravel_geo::{BoundingBox, DistanceMetric, GeoPoint};
use proptest::prelude::*;

fn paris_point() -> impl Strategy<Value = GeoPoint> {
    (48.80f64..48.92, 2.25f64..2.45).prop_map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn membership_rows_always_sum_to_one(
        points in prop::collection::vec(paris_point(), 6..40),
        k in 1usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(points.len() >= k);
        let config = FcmConfig {
            k,
            seed,
            max_iterations: 20,
            ..FcmConfig::default()
        };
        let result = FuzzyCMeans::new(config).fit(&points).expect("valid inputs");
        prop_assert_eq!(result.centroids.len(), k);
        for row in &result.memberships {
            prop_assert_eq!(row.len(), k);
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "row sums to {sum}");
            prop_assert!(row.iter().all(|&w| (-1e-9..=1.0 + 1e-9).contains(&w)));
        }
    }

    #[test]
    fn centroids_stay_inside_the_points_bounding_box(
        points in prop::collection::vec(paris_point(), 8..40),
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(points.len() >= k);
        let result = FuzzyCMeans::new(FcmConfig {
            k,
            seed,
            max_iterations: 25,
            ..FcmConfig::default()
        })
        .fit(&points)
        .expect("valid inputs");
        // Weighted means of the points can never leave their bounding box
        // (modulo floating point slack).
        let bbox = BoundingBox::from_points(&points).unwrap().expanded(1e-9);
        for centroid in &result.centroids {
            prop_assert!(bbox.contains(centroid), "centroid {centroid} escaped the bbox");
        }
    }

    #[test]
    fn hard_assignments_and_partition_coefficient_are_consistent(
        points in prop::collection::vec(paris_point(), 6..30),
        seed in 0u64..1000,
    ) {
        let k = 3usize;
        prop_assume!(points.len() >= k);
        let result = FuzzyCMeans::new(FcmConfig {
            k,
            seed,
            max_iterations: 20,
            ..FcmConfig::default()
        })
        .fit(&points)
        .expect("valid inputs");
        let assignments = hard_assignments(&result);
        prop_assert_eq!(assignments.len(), points.len());
        prop_assert!(assignments.iter().all(|&a| a < k));
        let fpc = fuzzy_partition_coefficient(&result);
        prop_assert!(fpc >= 1.0 / k as f64 - 1e-9);
        prop_assert!(fpc <= 1.0 + 1e-9);
    }

    #[test]
    fn objective_never_increases_with_more_clusters(
        points in prop::collection::vec(paris_point(), 12..40),
        seed in 0u64..200,
    ) {
        let fit = |k: usize| {
            FuzzyCMeans::new(FcmConfig {
                k,
                seed,
                max_iterations: 40,
                metric: DistanceMetric::Equirectangular,
                ..FcmConfig::default()
            })
            .fit(&points)
            .expect("valid inputs")
            .objective
        };
        let one = fit(1);
        let many = fit(4);
        // Allow a little slack: FCM is a local optimizer, but with k-means++
        // seeding the 4-cluster objective should essentially never exceed the
        // single-cluster objective.
        prop_assert!(many <= one * 1.05 + 1e-9, "k=4 objective {many} vs k=1 {one}");
    }
}
