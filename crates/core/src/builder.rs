//! The travel-package builder.
//!
//! §3.2: building a TP is formulated as fuzzy clustering (KFC). Fuzzy c-means
//! positions `k` centroids that cover the city (the α term of Eq. 1); around
//! every centroid a *valid* composite item is assembled by picking, per
//! requested category, the POIs that maximize
//! `β · (1 − distance-to-centroid) + γ · cosine(item vector, group profile)` —
//! the cohesiveness and personalization terms. Because the clustering is
//! fuzzy, the same POI may appear in several composite items (e.g. the
//! group's hotel, or a museum that needs more than one visit).
//!
//! The builder also provides the two baselines used in the user study
//! (§4.4.3): the *non-personalized* package (personalization weight zero) and
//! the *random* package with intentionally invalid composite items that is
//! injected as an attention check.

use crate::composite::CompositeItem;
use crate::error::GroupTravelError;
use crate::items::ItemVectorizer;
use crate::objective::ObjectiveWeights;
use crate::package::TravelPackage;
use crate::query::GroupQuery;
use grouptravel_cluster::{FcmConfig, FcmResult, FuzzyCMeans};
use grouptravel_dataset::{Category, Poi, PoiCatalog};
use grouptravel_geo::{DistanceMetric, DistanceNormalizer, GeoPoint};
use grouptravel_pool::WorkerPool;
use grouptravel_profile::GroupProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Produces the per-category candidate pool a composite item is assembled
/// from.
///
/// The builder scores whatever the provider returns and picks greedily, so a
/// provider narrows *where the builder looks*, not *how it ranks*. The
/// default, [`BruteForceCandidates`], returns every POI of the category —
/// the seed's original behavior. The serving engine plugs in a spatial-grid
/// provider that only surfaces POIs near the centroid, turning candidate
/// generation from O(catalog) into O(cells touched).
///
/// Implementations must return each POI at most once. Returning fewer
/// candidates than `needed` is allowed (e.g. a sparse region); the composite
/// item then simply comes out smaller, exactly as with a small catalog.
pub trait CandidateProvider {
    /// Candidate POIs of `category` for a composite item anchored at
    /// `centroid`. `needed` is the number of POIs the query requests for
    /// this category — providers can use it to size their pool.
    fn candidates<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        needed: usize,
    ) -> Vec<&'c Poi>;

    /// A strictly larger candidate pool after a shortfall: the greedy pass
    /// could not place `needed` POIs from a pool of `previous` candidates
    /// (typically because the budget rejected the well-scored ones), so the
    /// builder asks for more before settling for an under-filled item.
    ///
    /// Returns `None` when no larger pool exists — the previous pool already
    /// covered everything the provider can see. The default implementation
    /// returns `None`, which is correct for exhaustive providers like
    /// [`BruteForceCandidates`]: their first pool is already the whole
    /// category, so a shortfall there is a genuine budget infeasibility.
    fn widen<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        needed: usize,
        previous: usize,
    ) -> Option<Vec<&'c Poi>> {
        let _ = (catalog, category, centroid, needed, previous);
        None
    }
}

/// The default provider: every POI of the category, via the catalog's
/// category index (a full scan of that category).
#[derive(Debug, Clone, Copy, Default)]
pub struct BruteForceCandidates;

impl CandidateProvider for BruteForceCandidates {
    fn candidates<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        _centroid: &GeoPoint,
        _needed: usize,
    ) -> Vec<&'c Poi> {
        catalog.by_category(category)
    }
}

/// Configuration of a package build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// Number of composite items `k` (5 in all of the paper's experiments:
    /// one per day of the trip).
    pub k: usize,
    /// Objective weights (α, β, γ, fuzzifier).
    pub weights: ObjectiveWeights,
    /// Distance metric (equirectangular by default).
    pub metric: DistanceMetric,
    /// Iteration cap for the fuzzy clustering.
    pub max_fcm_iterations: usize,
    /// Randomness seed (clustering initialization).
    pub seed: u64,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            k: 5,
            weights: ObjectiveWeights::default(),
            metric: DistanceMetric::Equirectangular,
            max_fcm_iterations: 60,
            seed: 42,
        }
    }
}

impl BuildConfig {
    /// Convenience constructor overriding only `k`.
    #[must_use]
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// The same configuration with personalization disabled (γ = 0), the
    /// paper's non-personalized baseline.
    #[must_use]
    pub fn non_personalized(mut self) -> Self {
        self.weights = self.weights.non_personalized();
        self
    }
}

/// Builds travel packages over one catalog.
#[derive(Debug, Clone)]
pub struct PackageBuilder<'a> {
    catalog: &'a PoiCatalog,
    vectorizer: &'a ItemVectorizer,
}

impl<'a> PackageBuilder<'a> {
    /// Creates a builder for a catalog and its item vectorizer.
    #[must_use]
    pub fn new(catalog: &'a PoiCatalog, vectorizer: &'a ItemVectorizer) -> Self {
        Self {
            catalog,
            vectorizer,
        }
    }

    /// The catalog this builder draws POIs from.
    #[must_use]
    pub fn catalog(&self) -> &PoiCatalog {
        self.catalog
    }

    /// Builds a personalized travel package for `profile`.
    ///
    /// # Errors
    /// Fails when the catalog is empty or too small for the query, when the
    /// query requests no POIs, when `k` is zero, or when clustering cannot
    /// place `k` centroids.
    pub fn build(
        &self,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<TravelPackage, GroupTravelError> {
        self.build_with(&BruteForceCandidates, None, profile, query, config)
    }

    /// Builds a package with an explicit candidate provider and, optionally,
    /// precomputed cluster centroids — the serving engine's entry point.
    ///
    /// * `provider` narrows the POIs considered around each centroid; pass
    ///   [`BruteForceCandidates`] for the paper's exhaustive behavior.
    /// * `clustering` short-circuits the fuzzy-c-means fit when cached
    ///   centroids for this catalog and configuration are available (e.g.
    ///   from a prior [`PackageBuilder::cluster`] run). They are used only
    ///   if there are exactly `config.k` of them; a mismatched slice is
    ///   ignored and a fresh fit is run instead.
    ///
    /// # Errors
    /// Same failure modes as [`PackageBuilder::build`].
    pub fn build_with(
        &self,
        provider: &dyn CandidateProvider,
        clustering: Option<&[GeoPoint]>,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<TravelPackage, GroupTravelError> {
        self.validate(query, config)?;
        let weights = config.weights.sanitized();

        let owned;
        let centroids: &[GeoPoint] = match clustering {
            Some(cached) if cached.len() == config.k => cached,
            _ => {
                owned = self.cluster(config)?;
                &owned.centroids
            }
        };

        let normalizer = self.catalog.distance_normalizer(config.metric);
        let composite_items = centroids
            .iter()
            .map(|centroid| {
                self.assemble_ci_with(provider, *centroid, profile, query, &weights, &normalizer)
            })
            .collect();

        Ok(TravelPackage::new(composite_items))
    }

    /// Runs the fuzzy-c-means clustering a build with `config` would run,
    /// without assembling composite items.
    ///
    /// The serving engine calls this to populate its model cache; the result
    /// can then be fed back into [`PackageBuilder::build_with`] for any
    /// number of requests against the same catalog. The returned
    /// [`FcmResult`] carries its membership matrix as a flat row-major
    /// `DenseMatrix` (the engine caches only the centroids).
    ///
    /// # Errors
    /// Fails when clustering cannot place `config.k` centroids.
    pub fn cluster(&self, config: &BuildConfig) -> Result<FcmResult, GroupTravelError> {
        self.cluster_on(config, None)
    }

    /// [`PackageBuilder::cluster`] with an optional worker pool: the fit
    /// runs its membership+centroid sweeps chunk-parallel on `pool` (see
    /// `FuzzyCMeans::fit_on`), producing the same result deterministically
    /// at any pool width.
    ///
    /// # Errors
    /// Fails when clustering cannot place `config.k` centroids.
    pub fn cluster_on(
        &self,
        config: &BuildConfig,
        pool: Option<&WorkerPool>,
    ) -> Result<FcmResult, GroupTravelError> {
        let fcm = FuzzyCMeans::new(self.fcm_config(config));
        fcm.fit_on(&self.catalog.locations(), pool)
            .map_err(|e| GroupTravelError::Clustering(e.to_string()))
    }

    /// The exact clustering configuration a build with `config` uses
    /// (weights sanitized internally, exactly as the build path does) —
    /// exposed so cache keys derived from it (via `FcmConfig::cache_key`)
    /// always match what [`PackageBuilder::cluster`] actually runs.
    #[must_use]
    pub fn fcm_config(&self, config: &BuildConfig) -> FcmConfig {
        FcmConfig {
            k: config.k,
            fuzzifier: config.weights.sanitized().fuzzifier,
            max_iterations: config.max_fcm_iterations,
            tolerance_km: 0.001,
            metric: config.metric,
            seed: config.seed,
        }
    }

    /// Builds the non-personalized baseline (γ = 0) for the same query.
    pub fn build_non_personalized(
        &self,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<TravelPackage, GroupTravelError> {
        self.build(profile, query, &(*config).non_personalized())
    }

    /// Builds the attention-check package of the user study: `k` composite
    /// items assembled from uniformly random POIs with random sizes, which
    /// are (almost always) *invalid* with respect to the query.
    pub fn build_random(
        &self,
        query: &GroupQuery,
        k: usize,
        seed: u64,
    ) -> Result<TravelPackage, GroupTravelError> {
        if k == 0 {
            return Err(GroupTravelError::ZeroCompositeItems);
        }
        if self.catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let pois = self.catalog.pois();
        let target = query.total_pois().max(2);
        let mut cis = Vec::with_capacity(k);
        for _ in 0..k {
            // Random size around the requested size but deliberately not
            // honouring the per-category counts.
            let size = rng.gen_range(1..=target + 2);
            let ids = (0..size)
                .map(|_| pois[rng.gen_range(0..pois.len())].id)
                .collect();
            cis.push(CompositeItem::new(ids));
        }
        Ok(TravelPackage::new(cis))
    }

    /// Assembles a single composite item around `centroid`, used both by
    /// [`PackageBuilder::build`] and by the `GENERATE(RECTANGLE)` operator.
    ///
    /// Per requested category the candidates are ranked by
    /// `β · (1 − normalized distance to the centroid) + γ · cosine(item
    /// vector, group profile)` and picked greedily while the budget allows;
    /// if the greedy pass cannot fill the requested count within budget, the
    /// cheapest remaining candidates are used to top the CI up.
    #[must_use]
    pub fn assemble_ci(
        &self,
        centroid: GeoPoint,
        profile: &GroupProfile,
        query: &GroupQuery,
        weights: &ObjectiveWeights,
        normalizer: &DistanceNormalizer,
    ) -> CompositeItem {
        self.assemble_ci_with(
            &BruteForceCandidates,
            centroid,
            profile,
            query,
            weights,
            normalizer,
        )
    }

    /// [`PackageBuilder::assemble_ci`] with an explicit candidate provider.
    ///
    /// When the greedy pass (plus its cheapest-skipped top-up) cannot place
    /// the requested number of POIs for a category — a budget-driven
    /// shortfall — the provider is asked to [`CandidateProvider::widen`] the
    /// pool and that category's selection reruns from scratch, until either
    /// the count is met or the pool cannot grow further. A widened pool that
    /// reaches the whole category therefore reproduces the brute-force
    /// selection exactly; only genuinely infeasible budgets leave an item
    /// under-filled.
    #[must_use]
    pub fn assemble_ci_with(
        &self,
        provider: &dyn CandidateProvider,
        centroid: GeoPoint,
        profile: &GroupProfile,
        query: &GroupQuery,
        weights: &ObjectiveWeights,
        normalizer: &DistanceNormalizer,
    ) -> CompositeItem {
        let mut chosen: Vec<&Poi> = Vec::with_capacity(query.total_pois());
        let mut spent = 0.0f64;
        let budget = query.budget();

        for category in Category::ALL {
            let needed = query.count(category);
            if needed == 0 {
                continue;
            }
            let mut pool = provider.candidates(self.catalog, category, &centroid, needed);
            // Selection is transactional per category so a widened pool can
            // rerun it without carrying picks made from the smaller one.
            let chosen_mark = chosen.len();
            let spent_mark = spent;
            loop {
                let taken = self.select_category(
                    &pool,
                    category,
                    &centroid,
                    profile,
                    query,
                    weights,
                    normalizer,
                    budget,
                    &mut chosen,
                    &mut spent,
                );
                if taken == needed {
                    break;
                }
                match provider.widen(self.catalog, category, &centroid, needed, pool.len()) {
                    Some(wider) if wider.len() > pool.len() => {
                        chosen.truncate(chosen_mark);
                        spent = spent_mark;
                        pool = wider;
                    }
                    _ => break,
                }
            }
        }

        CompositeItem::with_anchor(chosen.iter().map(|p| p.id).collect(), centroid)
    }

    /// One category's greedy selection: rank `pool` by
    /// `β · geo-similarity + γ · profile affinity`, pick while the budget
    /// allows, then top the count up with the cheapest skipped candidates.
    /// Returns how many POIs were placed.
    #[allow(clippy::too_many_arguments)]
    fn select_category<'c>(
        &self,
        pool: &[&'c Poi],
        category: Category,
        centroid: &GeoPoint,
        profile: &GroupProfile,
        query: &GroupQuery,
        weights: &ObjectiveWeights,
        normalizer: &DistanceNormalizer,
        budget: Option<f64>,
        chosen: &mut Vec<&'c Poi>,
        spent: &mut f64,
    ) -> usize {
        let needed = query.count(category);
        let mut candidates: Vec<(&Poi, f64)> = pool
            .iter()
            .map(|&poi| {
                let geo = normalizer.similarity(&poi.location, centroid);
                let affinity = profile.item_affinity(category, &self.vectorizer.item_vector(poi));
                (poi, weights.item_score(geo, affinity))
            })
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

        let mut taken = 0usize;
        let mut skipped: Vec<&Poi> = Vec::new();
        for (poi, _) in &candidates {
            if taken == needed {
                break;
            }
            if chosen.iter().any(|p| p.id == poi.id) {
                continue;
            }
            let fits = match budget {
                Some(b) => *spent + poi.cost <= b + 1e-9,
                None => true,
            };
            if fits {
                chosen.push(poi);
                *spent += poi.cost;
                taken += 1;
            } else {
                skipped.push(poi);
            }
        }
        if taken < needed {
            // Budget-driven shortfall: top up with the cheapest skipped
            // candidates that still fit (best-effort; the CI may end up
            // invalid if the budget is simply too tight).
            skipped.sort_by(|a, b| {
                a.cost
                    .partial_cmp(&b.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for poi in skipped {
                if taken == needed {
                    break;
                }
                let fits = match budget {
                    Some(b) => *spent + poi.cost <= b + 1e-9,
                    None => true,
                };
                if fits && !chosen.iter().any(|p| p.id == poi.id) {
                    chosen.push(poi);
                    *spent += poi.cost;
                    taken += 1;
                }
            }
        }
        taken
    }

    /// Checks that a build with `query` and `config` can succeed against
    /// this catalog — the exact precondition [`PackageBuilder::build`]
    /// enforces. The serving engine calls this up front so invalid requests
    /// are rejected before any clustering work (or cache traffic) happens.
    ///
    /// # Errors
    /// The same validation failures [`PackageBuilder::build`] reports.
    pub fn validate(
        &self,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<(), GroupTravelError> {
        if config.k == 0 {
            return Err(GroupTravelError::ZeroCompositeItems);
        }
        if self.catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        if query.is_empty() {
            return Err(GroupTravelError::EmptyQuery);
        }
        for category in Category::ALL {
            let required = query.count(category);
            let available = self.catalog.count_category(category);
            if required > available {
                return Err(GroupTravelError::InsufficientCategory {
                    category,
                    required,
                    available,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_profile::{
        ConsensusMethod, GroupSize, ProfileSchema, SyntheticGroupGenerator, Uniformity,
    };
    use grouptravel_topics::LdaConfig;

    struct Fixture {
        catalog: PoiCatalog,
        vectorizer: ItemVectorizer,
    }

    fn fixture() -> Fixture {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(41))
                .generate();
        let vectorizer = ItemVectorizer::fit(
            &catalog,
            LdaConfig {
                iterations: 40,
                ..LdaConfig::default()
            },
        )
        .unwrap();
        Fixture {
            catalog,
            vectorizer,
        }
    }

    fn profile(schema: ProfileSchema, seed: u64) -> GroupProfile {
        let mut gen = SyntheticGroupGenerator::new(schema, seed);
        gen.group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::average_preference())
    }

    #[test]
    fn builds_a_valid_package_with_k_composite_items() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 1);
        let query = GroupQuery::paper_default();
        let package = builder
            .build(&profile, &query, &BuildConfig::default())
            .unwrap();
        assert_eq!(package.len(), 5);
        assert!(
            package.is_valid(&f.catalog, &query),
            "package should be valid"
        );
        for ci in package.composite_items() {
            assert!(ci.anchor().is_some());
            assert_eq!(ci.len(), query.total_pois());
        }
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 2);
        let query = GroupQuery::paper_default();
        let a = builder
            .build(&profile, &query, &BuildConfig::default())
            .unwrap();
        let b = builder
            .build(&profile, &query, &BuildConfig::default())
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn non_personalized_build_ignores_the_profile() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();
        let p1 = profile(f.vectorizer.schema(), 3);
        let p2 = profile(f.vectorizer.schema(), 4);
        let a = builder
            .build_non_personalized(&p1, &query, &config)
            .unwrap();
        let b = builder
            .build_non_personalized(&p2, &query, &config)
            .unwrap();
        assert_eq!(
            a, b,
            "without personalization, different profiles give the same package"
        );
    }

    #[test]
    fn personalization_changes_the_package_for_different_profiles() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();
        let mut differs = false;
        for seed in 0..5u64 {
            let p1 = profile(f.vectorizer.schema(), 10 + seed);
            let p2 = profile(f.vectorizer.schema(), 20 + seed);
            let a = builder.build(&p1, &query, &config).unwrap();
            let b = builder.build(&p2, &query, &config).unwrap();
            if a != b {
                differs = true;
                break;
            }
        }
        assert!(
            differs,
            "personalized packages never differed across profiles"
        );
    }

    #[test]
    fn budget_is_respected_when_finite() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 5);
        let query = GroupQuery::paper_default().with_budget(Some(18.0));
        let package = builder
            .build(&profile, &query, &BuildConfig::default())
            .unwrap();
        for ci in package.composite_items() {
            assert!(
                ci.total_cost(&f.catalog) <= 18.0 + 1e-9,
                "CI exceeds the budget"
            );
        }
    }

    #[test]
    fn error_cases_are_detected() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 6);
        let query = GroupQuery::paper_default();
        assert_eq!(
            builder
                .build(&profile, &query, &BuildConfig::with_k(0))
                .unwrap_err(),
            GroupTravelError::ZeroCompositeItems
        );
        assert_eq!(
            builder
                .build(
                    &profile,
                    &GroupQuery::new([0, 0, 0, 0], None),
                    &BuildConfig::default()
                )
                .unwrap_err(),
            GroupTravelError::EmptyQuery
        );
        let greedy_query = GroupQuery::new([1000, 1, 1, 1], None);
        assert!(matches!(
            builder
                .build(&profile, &greedy_query, &BuildConfig::default())
                .unwrap_err(),
            GroupTravelError::InsufficientCategory {
                category: Category::Accommodation,
                ..
            }
        ));
    }

    #[test]
    fn random_package_is_mostly_invalid() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let query = GroupQuery::paper_default();
        let package = builder.build_random(&query, 5, 99).unwrap();
        assert_eq!(package.len(), 5);
        assert!(
            !package.is_valid(&f.catalog, &query),
            "the attention-check package should not be valid"
        );
        assert!(builder.build_random(&query, 0, 1).is_err());
    }

    #[test]
    fn build_with_brute_force_matches_build() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 8);
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();
        let direct = builder.build(&profile, &query, &config).unwrap();
        let via_seam = builder
            .build_with(&BruteForceCandidates, None, &profile, &query, &config)
            .unwrap();
        assert_eq!(direct, via_seam);
    }

    #[test]
    fn build_with_precomputed_clustering_matches_a_fresh_fit() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 9);
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();
        let clustering = builder.cluster(&config).unwrap();
        let cached = builder
            .build_with(
                &BruteForceCandidates,
                Some(&clustering.centroids),
                &profile,
                &query,
                &config,
            )
            .unwrap();
        let fresh = builder.build(&profile, &query, &config).unwrap();
        assert_eq!(
            cached, fresh,
            "a cached clustering must not change the package"
        );
    }

    #[test]
    fn build_with_ignores_a_mismatched_clustering() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 10);
        let query = GroupQuery::paper_default();
        let three = builder.cluster(&BuildConfig::with_k(3)).unwrap();
        // k = 5 build fed a k = 3 clustering: the stale result is discarded.
        let package = builder
            .build_with(
                &BruteForceCandidates,
                Some(&three.centroids),
                &profile,
                &query,
                &BuildConfig::default(),
            )
            .unwrap();
        assert_eq!(package.len(), 5);
    }

    #[test]
    fn a_restrictive_provider_narrows_the_choice() {
        /// Keeps only the cheapest POI of each category.
        struct CheapestOnly;
        impl CandidateProvider for CheapestOnly {
            fn candidates<'c>(
                &self,
                catalog: &'c PoiCatalog,
                category: Category,
                _centroid: &GeoPoint,
                _needed: usize,
            ) -> Vec<&'c Poi> {
                let mut pois = catalog.by_category(category);
                pois.sort_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                pois.truncate(1);
                pois
            }
        }

        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 11);
        let query = GroupQuery::paper_default();
        let package = builder
            .build_with(
                &CheapestOnly,
                None,
                &profile,
                &query,
                &BuildConfig::default(),
            )
            .unwrap();
        // One candidate per category: every CI holds at most 4 POIs, all of
        // them the per-category cheapest.
        for ci in package.composite_items() {
            assert!(ci.len() <= Category::ALL.len());
            for poi in ci.resolve(&f.catalog) {
                let cheapest = f
                    .catalog
                    .by_category(poi.category)
                    .into_iter()
                    .map(|p| p.cost)
                    .fold(f64::INFINITY, f64::min);
                assert!((poi.cost - cheapest).abs() < 1e-12);
            }
        }
    }

    /// Serves the first `start` POIs of each category and doubles the pool
    /// on every widen until the whole category is exposed — the same
    /// escalation contract the engine's grid provider follows.
    struct Escalating {
        start: usize,
        widenings: std::cell::Cell<usize>,
    }
    impl CandidateProvider for Escalating {
        fn candidates<'c>(
            &self,
            catalog: &'c PoiCatalog,
            category: Category,
            _centroid: &GeoPoint,
            _needed: usize,
        ) -> Vec<&'c Poi> {
            let mut pois = catalog.by_category(category);
            pois.truncate(self.start);
            pois
        }
        fn widen<'c>(
            &self,
            catalog: &'c PoiCatalog,
            category: Category,
            _centroid: &GeoPoint,
            _needed: usize,
            previous: usize,
        ) -> Option<Vec<&'c Poi>> {
            let all = catalog.by_category(category);
            if previous >= all.len() {
                return None;
            }
            self.widenings.set(self.widenings.get() + 1);
            let mut pois = all;
            pois.truncate((previous * 2).max(1));
            Some(pois)
        }
    }

    #[test]
    fn a_widening_provider_recovers_the_brute_force_package_under_tight_budgets() {
        use std::cell::Cell;

        /// The same truncated pools, but refusing to widen — the old
        /// fixed-pool behavior a shortfall used to be stuck with.
        struct Fixed {
            start: usize,
        }
        impl CandidateProvider for Fixed {
            fn candidates<'c>(
                &self,
                catalog: &'c PoiCatalog,
                category: Category,
                _centroid: &GeoPoint,
                _needed: usize,
            ) -> Vec<&'c Poi> {
                let mut pois = catalog.by_category(category);
                pois.truncate(self.start);
                pois
            }
        }

        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 12);
        // A budget tight enough that a one-POI pool cannot fill the
        // per-category counts: without widening the item comes out
        // under-filled; with widening the selection escalates until the
        // counts are met and the package is as valid as brute force's.
        let query = GroupQuery::paper_default().with_budget(Some(30.0));
        let config = BuildConfig::default();
        let brute = builder.build(&profile, &query, &config).unwrap();
        let provider = Escalating {
            start: 1,
            widenings: Cell::new(0),
        };
        let widened = builder
            .build_with(&provider, None, &profile, &query, &config)
            .unwrap();
        let stuck = builder
            .build_with(&Fixed { start: 1 }, None, &profile, &query, &config)
            .unwrap();
        assert!(
            provider.widenings.get() > 0,
            "the tight pool must trigger at least one widening"
        );
        let total = |p: &TravelPackage| -> usize {
            p.composite_items().iter().map(CompositeItem::len).sum()
        };
        assert!(
            total(&stuck) < total(&brute),
            "a fixed one-POI pool must under-fill ({} vs {})",
            total(&stuck),
            total(&brute)
        );
        assert_eq!(
            total(&widened),
            total(&brute),
            "widening must recover every placement brute force makes"
        );
        assert_eq!(
            brute.is_valid(&f.catalog, &query),
            widened.is_valid(&f.catalog, &query)
        );
        for ci in widened.composite_items() {
            assert!(ci.total_cost(&f.catalog) <= 30.0 + 1e-9);
        }
    }

    #[test]
    fn full_escalation_matches_brute_force_exactly() {
        use std::cell::Cell;

        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 13);
        // The query demands every POI of every category, so no proper pool
        // can satisfy it: widening must escalate to the whole category and
        // then stop (widen returns None) — at which point the selection is
        // running on exactly the brute-force pool, in the brute-force
        // order, and the packages are bit-identical (same POIs, same
        // in-item order).
        let query = GroupQuery::new([20, 15, 40, 40], None);
        let config = BuildConfig::default();
        let brute = builder.build(&profile, &query, &config).unwrap();
        let provider = Escalating {
            start: 1,
            widenings: Cell::new(0),
        };
        let widened = builder
            .build_with(&provider, None, &profile, &query, &config)
            .unwrap();
        assert!(provider.widenings.get() > 0);
        assert_eq!(widened, brute);
    }

    #[test]
    fn composite_items_are_cohesive_around_their_anchor() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let profile = profile(f.vectorizer.schema(), 7);
        let query = GroupQuery::paper_default();
        // Pure cohesiveness configuration: geography only.
        let config = BuildConfig {
            weights: ObjectiveWeights {
                alpha: 0.5,
                beta: 1.0,
                gamma: 0.0,
                fuzzifier: 2.0,
            },
            ..BuildConfig::default()
        };
        let package = builder.build(&profile, &query, &config).unwrap();
        let bbox = f.catalog.bounding_box().unwrap();
        let city_diag = DistanceMetric::Equirectangular.distance_km(
            &GeoPoint::new_unchecked(bbox.min_lat, bbox.min_lon),
            &GeoPoint::new_unchecked(bbox.max_lat, bbox.max_lon),
        );
        for ci in package.composite_items() {
            let anchor = ci.anchor().unwrap();
            for poi in ci.resolve(&f.catalog) {
                let d = DistanceMetric::Equirectangular.distance_km(&poi.location, &anchor);
                assert!(
                    d <= city_diag,
                    "POI {} is implausibly far from its anchor",
                    poi.name
                );
            }
        }
    }
}
