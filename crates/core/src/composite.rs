//! Composite Items.
//!
//! §3.1: a Composite Item (CI) is a set of POIs whose categories match the
//! group query's requested counts and whose total cost respects the budget.
//! A CI is the "things to do in one area of the city" unit: one day of the
//! travel package.

use crate::query::GroupQuery;
use grouptravel_dataset::{Category, Poi, PoiCatalog, PoiId};
use grouptravel_geo::{Centroid, DistanceMetric, GeoPoint};
use serde::{Deserialize, Serialize};

/// A Composite Item: an (unordered) set of POIs, optionally remembering the
/// cluster centroid it was built around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositeItem {
    poi_ids: Vec<PoiId>,
    /// The fuzzy-cluster centroid this CI was assembled around, when built by
    /// the package builder (used by the representativity metric and by the
    /// REPLACE/ADD recommendations).
    anchor: Option<GeoPoint>,
}

impl CompositeItem {
    /// Creates a CI from POI ids (duplicates removed, order preserved).
    #[must_use]
    pub fn new(poi_ids: Vec<PoiId>) -> Self {
        let mut seen = Vec::with_capacity(poi_ids.len());
        for id in poi_ids {
            if !seen.contains(&id) {
                seen.push(id);
            }
        }
        Self {
            poi_ids: seen,
            anchor: None,
        }
    }

    /// Creates a CI anchored at a cluster centroid.
    #[must_use]
    pub fn with_anchor(poi_ids: Vec<PoiId>, anchor: GeoPoint) -> Self {
        let mut ci = Self::new(poi_ids);
        ci.anchor = Some(anchor);
        ci
    }

    /// The POI ids in the CI.
    #[must_use]
    pub fn poi_ids(&self) -> &[PoiId] {
        &self.poi_ids
    }

    /// Number of POIs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.poi_ids.len()
    }

    /// Whether the CI is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.poi_ids.is_empty()
    }

    /// Whether the CI contains a POI.
    #[must_use]
    pub fn contains(&self, id: PoiId) -> bool {
        self.poi_ids.contains(&id)
    }

    /// The anchor centroid, if the CI was built by the package builder.
    #[must_use]
    pub fn anchor(&self) -> Option<GeoPoint> {
        self.anchor
    }

    /// Adds a POI (no-op if already present). Returns whether it was added.
    pub fn add(&mut self, id: PoiId) -> bool {
        if self.contains(id) {
            return false;
        }
        self.poi_ids.push(id);
        true
    }

    /// Removes a POI. Returns whether it was present.
    pub fn remove(&mut self, id: PoiId) -> bool {
        let before = self.poi_ids.len();
        self.poi_ids.retain(|&p| p != id);
        before != self.poi_ids.len()
    }

    /// Replaces `old` with `new` in place (keeping the position). Returns
    /// whether `old` was present.
    pub fn replace(&mut self, old: PoiId, new: PoiId) -> bool {
        match self.poi_ids.iter().position(|&p| p == old) {
            Some(idx) => {
                if self.contains(new) {
                    // The replacement already exists: just drop the old POI.
                    self.poi_ids.remove(idx);
                } else {
                    self.poi_ids[idx] = new;
                }
                true
            }
            None => false,
        }
    }

    /// Resolves the CI's POIs against a catalog (ids missing from the catalog
    /// are skipped).
    #[must_use]
    pub fn resolve<'a>(&self, catalog: &'a PoiCatalog) -> Vec<&'a Poi> {
        self.poi_ids
            .iter()
            .filter_map(|&id| catalog.get(id))
            .collect()
    }

    /// Total cost of the CI's POIs.
    #[must_use]
    pub fn total_cost(&self, catalog: &PoiCatalog) -> f64 {
        self.resolve(catalog).iter().map(|p| p.cost).sum()
    }

    /// Number of POIs of each category, in [`Category::ALL`] order.
    #[must_use]
    pub fn category_counts(&self, catalog: &PoiCatalog) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for poi in self.resolve(catalog) {
            counts[poi.category.index()] += 1;
        }
        counts
    }

    /// Validity with respect to a query (§3.1): exact category counts and
    /// total cost within budget.
    #[must_use]
    pub fn is_valid(&self, catalog: &PoiCatalog, query: &GroupQuery) -> bool {
        let counts = self.category_counts(catalog);
        for category in Category::ALL {
            if counts[category.index()] != query.count(category) {
                return false;
            }
        }
        query.within_budget(self.total_cost(catalog))
    }

    /// Geographic centre of the CI: the anchor if present, otherwise the mean
    /// of its POI locations. Returns `None` for an empty, anchorless CI.
    #[must_use]
    pub fn centroid(&self, catalog: &PoiCatalog) -> Option<GeoPoint> {
        if let Some(anchor) = self.anchor {
            return Some(anchor);
        }
        let locations: Vec<GeoPoint> = self.resolve(catalog).iter().map(|p| p.location).collect();
        Centroid::mean(&locations).map(|c| c.position)
    }

    /// Sum of pairwise distances between the CI's POIs in kilometres (the
    /// inner sum of the cohesiveness metric, Eq. 3).
    #[must_use]
    pub fn internal_distance_km(&self, catalog: &PoiCatalog, metric: DistanceMetric) -> f64 {
        let pois = self.resolve(catalog);
        let mut total = 0.0;
        for (i, a) in pois.iter().enumerate() {
            for b in &pois[i + 1..] {
                total += metric.distance_km(&a.location, &b.location);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::sample::table1_pois;

    fn catalog() -> PoiCatalog {
        PoiCatalog::new("Paris", table1_pois())
    }

    #[test]
    fn construction_deduplicates_ids() {
        let ci = CompositeItem::new(vec![PoiId(1), PoiId(2), PoiId(1)]);
        assert_eq!(ci.len(), 2);
        assert!(ci.contains(PoiId(1)));
        assert!(!ci.is_empty());
    }

    #[test]
    fn add_remove_replace() {
        let mut ci = CompositeItem::new(vec![PoiId(1), PoiId(2)]);
        assert!(ci.add(PoiId(3)));
        assert!(!ci.add(PoiId(3)));
        assert!(ci.remove(PoiId(1)));
        assert!(!ci.remove(PoiId(1)));
        assert!(ci.replace(PoiId(2), PoiId(4)));
        assert!(!ci.replace(PoiId(2), PoiId(5)));
        assert_eq!(ci.poi_ids(), &[PoiId(4), PoiId(3)]);
    }

    #[test]
    fn replace_with_an_existing_poi_just_drops_the_old_one() {
        let mut ci = CompositeItem::new(vec![PoiId(1), PoiId(2)]);
        assert!(ci.replace(PoiId(1), PoiId(2)));
        assert_eq!(ci.poi_ids(), &[PoiId(2)]);
    }

    #[test]
    fn cost_and_category_counts() {
        let c = catalog();
        let ci = CompositeItem::new(vec![PoiId(1), PoiId(3), PoiId(4)]);
        assert!((ci.total_cost(&c) - (3.00 + 3.20 + 3.86)).abs() < 1e-9);
        assert_eq!(ci.category_counts(&c), [1, 0, 1, 1]);
    }

    #[test]
    fn unknown_ids_are_ignored_when_resolving() {
        let c = catalog();
        let ci = CompositeItem::new(vec![PoiId(1), PoiId(999)]);
        assert_eq!(ci.resolve(&c).len(), 1);
    }

    #[test]
    fn validity_requires_exact_counts_and_budget() {
        let c = catalog();
        let query = GroupQuery::new([1, 1, 1, 1], None);
        let full = CompositeItem::new(vec![PoiId(1), PoiId(2), PoiId(3), PoiId(4)]);
        assert!(full.is_valid(&c, &query));
        let missing_attr = CompositeItem::new(vec![PoiId(1), PoiId(2), PoiId(3)]);
        assert!(!missing_attr.is_valid(&c, &query));
        let tight_budget = GroupQuery::new([1, 1, 1, 1], Some(5.0));
        assert!(!full.is_valid(&c, &tight_budget));
        let generous_budget = GroupQuery::new([1, 1, 1, 1], Some(20.0));
        assert!(full.is_valid(&c, &generous_budget));
    }

    #[test]
    fn centroid_prefers_the_anchor() {
        let c = catalog();
        let anchor = GeoPoint::new_unchecked(48.9, 2.4);
        let ci = CompositeItem::with_anchor(vec![PoiId(1)], anchor);
        assert_eq!(ci.centroid(&c), Some(anchor));
        let no_anchor = CompositeItem::new(vec![PoiId(1), PoiId(2)]);
        let centroid = no_anchor.centroid(&c).unwrap();
        assert!((centroid.lat - (48.8679 + 48.8642) / 2.0).abs() < 1e-9);
        assert!(CompositeItem::new(vec![]).centroid(&c).is_none());
    }

    #[test]
    fn internal_distance_is_zero_for_singletons_and_positive_otherwise() {
        let c = catalog();
        let single = CompositeItem::new(vec![PoiId(1)]);
        assert_eq!(
            single.internal_distance_km(&c, DistanceMetric::Haversine),
            0.0
        );
        let pair = CompositeItem::new(vec![PoiId(1), PoiId(2)]);
        assert!(pair.internal_distance_km(&c, DistanceMetric::Haversine) > 0.0);
    }
}
