//! Customization operators and interaction logs.
//!
//! §3.3: group members interact with the displayed travel package through
//! five atomic operations — remove a POI, add a POI, replace a POI with a
//! system-recommended neighbour, generate a new composite item inside a
//! rectangle drawn on the map, and (by iterated removal) delete a composite
//! item. The interactions are recorded per member as implicit feedback and
//! later used to refine the group profile ([`crate::refine`]).
//!
//! The operations themselves are *applied* by
//! [`crate::session::GroupTravelSession::apply`], which has access to the
//! catalog and the builder needed by REPLACE and GENERATE; this module holds
//! the operation descriptions and the bookkeeping.

use grouptravel_dataset::PoiId;
use grouptravel_geo::Rectangle;
use serde::{Deserialize, Serialize};

/// One atomic customization requested by a group member.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CustomizationOp {
    /// `REMOVE(i, CI)`: remove POI `poi` from the `ci_index`-th composite item.
    Remove {
        /// Index of the composite item in the package.
        ci_index: usize,
        /// The POI to remove.
        poi: PoiId,
    },
    /// `ADD(i, CI)`: add POI `poi` to the `ci_index`-th composite item.
    Add {
        /// Index of the composite item in the package.
        ci_index: usize,
        /// The POI to add.
        poi: PoiId,
    },
    /// `REPLACE(i, CI)`: replace POI `poi` with the geographically closest POI
    /// of the same category (chosen by the system).
    Replace {
        /// Index of the composite item in the package.
        ci_index: usize,
        /// The POI to replace.
        poi: PoiId,
    },
    /// `GENERATE(RECTANGLE(x, y, w, h))`: generate a new valid, cohesive
    /// composite item centred in the rectangle.
    Generate {
        /// The rectangle drawn on the map.
        rectangle: Rectangle,
    },
    /// Delete a whole composite item (the paper models this as iteratively
    /// removing every POI in it).
    DeleteCi {
        /// Index of the composite item to delete.
        ci_index: usize,
    },
}

/// What actually changed when an operation was applied: which POIs entered
/// the package and which left it. This is exactly the information the
/// refinement strategies need (`I⁺` and `I⁻` in §3.3).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InteractionLog {
    /// POIs added to the package.
    pub added: Vec<PoiId>,
    /// POIs removed from the package.
    pub removed: Vec<PoiId>,
}

impl InteractionLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an addition.
    pub fn record_add(&mut self, poi: PoiId) {
        self.added.push(poi);
    }

    /// Records a removal.
    pub fn record_remove(&mut self, poi: PoiId) {
        self.removed.push(poi);
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: &InteractionLog) {
        self.added.extend_from_slice(&other.added);
        self.removed.extend_from_slice(&other.removed);
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Total number of recorded interactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// The interactions of one group member with the travel package.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberInteractions {
    /// The member's user id (matches [`grouptravel_profile::UserProfile::user_id`]).
    pub user_id: u64,
    /// What the member added and removed.
    pub log: InteractionLog,
}

impl MemberInteractions {
    /// Creates an empty interaction record for a member.
    #[must_use]
    pub fn new(user_id: u64) -> Self {
        Self {
            user_id,
            log: InteractionLog::new(),
        }
    }

    /// Creates a record with an existing log.
    #[must_use]
    pub fn with_log(user_id: u64, log: InteractionLog) -> Self {
        Self { user_id, log }
    }
}

/// Attributes `log` to `user_id` in a running per-member ledger: merged
/// into the member's existing record when present, appended (in
/// first-interaction order) otherwise. Empty logs are dropped.
///
/// The serving engine's interactive sessions and the one-shot replay in the
/// differential tests both accumulate through this function, so the pooled
/// feedback — and therefore every refinement derived from it — is
/// bit-identical between the two paths (floating-point means depend on
/// accumulation order).
pub fn record_member_log(
    members: &mut Vec<MemberInteractions>,
    user_id: u64,
    log: &InteractionLog,
) {
    if log.is_empty() {
        return;
    }
    match members.iter_mut().find(|m| m.user_id == user_id) {
        Some(member) => member.log.merge(log),
        None => members.push(MemberInteractions::with_log(user_id, log.clone())),
    }
}

/// Pools the interactions of all members into a single log (the *batch*
/// refinement strategy works on this pooled view).
#[must_use]
pub fn pool_interactions(members: &[MemberInteractions]) -> InteractionLog {
    let mut pooled = InteractionLog::new();
    for member in members {
        pooled.merge(&member.log);
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_counts() {
        let mut log = InteractionLog::new();
        assert!(log.is_empty());
        log.record_add(PoiId(1));
        log.record_remove(PoiId(2));
        log.record_add(PoiId(3));
        assert_eq!(log.len(), 3);
        assert_eq!(log.added, vec![PoiId(1), PoiId(3)]);
        assert_eq!(log.removed, vec![PoiId(2)]);
        assert!(!log.is_empty());
    }

    #[test]
    fn merge_concatenates_both_sides() {
        let mut a = InteractionLog::new();
        a.record_add(PoiId(1));
        let mut b = InteractionLog::new();
        b.record_remove(PoiId(2));
        b.record_add(PoiId(3));
        a.merge(&b);
        assert_eq!(a.added, vec![PoiId(1), PoiId(3)]);
        assert_eq!(a.removed, vec![PoiId(2)]);
    }

    #[test]
    fn pooling_combines_all_members() {
        let mut m1 = MemberInteractions::new(1);
        m1.log.record_add(PoiId(10));
        let mut m2 = MemberInteractions::new(2);
        m2.log.record_remove(PoiId(20));
        let pooled = pool_interactions(&[m1, m2]);
        assert_eq!(pooled.added, vec![PoiId(10)]);
        assert_eq!(pooled.removed, vec![PoiId(20)]);
        assert!(pool_interactions(&[]).is_empty());
    }

    #[test]
    fn ops_are_serializable() {
        let op = CustomizationOp::Generate {
            rectangle: Rectangle::new(2.32, 48.87, 0.02, 0.01),
        };
        let json = serde_json::to_string(&op).unwrap();
        let back: CustomizationOp = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
    }
}
