//! Error type of the core library.

use grouptravel_dataset::Category;
use std::fmt;

/// Errors raised while building or customizing travel packages.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupTravelError {
    /// The catalog has no POIs at all.
    EmptyCatalog,
    /// The catalog cannot satisfy the query: it has fewer POIs of `category`
    /// than the query requires per composite item.
    InsufficientCategory {
        /// The category that is short.
        category: Category,
        /// How many POIs of that category each CI needs.
        required: usize,
        /// How many the catalog actually has.
        available: usize,
    },
    /// The requested number of composite items was zero.
    ZeroCompositeItems,
    /// The query requests no POIs at all.
    EmptyQuery,
    /// The fuzzy clustering substrate failed (e.g. fewer POIs than clusters).
    Clustering(String),
    /// Topic-model training failed for a category.
    TopicModel(Category),
    /// A customization operation referenced a POI or CI that does not exist.
    InvalidOperation(String),
}

impl fmt::Display for GroupTravelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupTravelError::EmptyCatalog => write!(f, "the POI catalog is empty"),
            GroupTravelError::InsufficientCategory {
                category,
                required,
                available,
            } => write!(
                f,
                "the catalog has only {available} POIs of category {category} but each composite item needs {required}"
            ),
            GroupTravelError::ZeroCompositeItems => {
                write!(f, "a travel package must contain at least one composite item")
            }
            GroupTravelError::EmptyQuery => {
                write!(f, "the group query requests no POIs")
            }
            GroupTravelError::Clustering(msg) => write!(f, "fuzzy clustering failed: {msg}"),
            GroupTravelError::TopicModel(category) => {
                write!(f, "could not train a topic model for category {category}")
            }
            GroupTravelError::InvalidOperation(msg) => {
                write!(f, "invalid customization operation: {msg}")
            }
        }
    }
}

impl std::error::Error for GroupTravelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GroupTravelError::InsufficientCategory {
            category: Category::Restaurant,
            required: 2,
            available: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("rest"));
        assert!(msg.contains('2'));
        assert!(msg.contains('1'));
        assert!(GroupTravelError::EmptyCatalog.to_string().contains("empty"));
        assert!(GroupTravelError::Clustering("k too large".into())
            .to_string()
            .contains("k too large"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GroupTravelError::ZeroCompositeItems,
            GroupTravelError::ZeroCompositeItems
        );
        assert_ne!(GroupTravelError::EmptyCatalog, GroupTravelError::EmptyQuery);
    }
}
