//! Error type of the core library.

use grouptravel_dataset::Category;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while building or customizing travel packages.
///
/// Every variant has a **stable numeric code** ([`GroupTravelError::code`])
/// used verbatim on the serving engine's wire protocol, so clients can
/// match on errors without parsing messages. Codes are append-only: a
/// variant's code never changes or gets reused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GroupTravelError {
    /// The catalog has no POIs at all.
    EmptyCatalog,
    /// The catalog cannot satisfy the query: it has fewer POIs of `category`
    /// than the query requires per composite item.
    InsufficientCategory {
        /// The category that is short.
        category: Category,
        /// How many POIs of that category each CI needs.
        required: usize,
        /// How many the catalog actually has.
        available: usize,
    },
    /// The requested number of composite items was zero.
    ZeroCompositeItems,
    /// The query requests no POIs at all.
    EmptyQuery,
    /// The fuzzy clustering substrate failed (e.g. fewer POIs than clusters).
    Clustering(String),
    /// Topic-model training failed for a category.
    TopicModel(Category),
    /// A customization operation referenced a POI or CI that does not exist.
    InvalidOperation(String),
}

impl GroupTravelError {
    /// The stable numeric code of this error on the wire protocol.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            GroupTravelError::EmptyCatalog => 10,
            GroupTravelError::InsufficientCategory { .. } => 11,
            GroupTravelError::ZeroCompositeItems => 12,
            GroupTravelError::EmptyQuery => 13,
            GroupTravelError::Clustering(_) => 14,
            GroupTravelError::TopicModel(_) => 15,
            GroupTravelError::InvalidOperation(_) => 16,
        }
    }
}

impl fmt::Display for GroupTravelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupTravelError::EmptyCatalog => write!(f, "the POI catalog is empty"),
            GroupTravelError::InsufficientCategory {
                category,
                required,
                available,
            } => write!(
                f,
                "the catalog has only {available} POIs of category {category} but each composite item needs {required}"
            ),
            GroupTravelError::ZeroCompositeItems => {
                write!(f, "a travel package must contain at least one composite item")
            }
            GroupTravelError::EmptyQuery => {
                write!(f, "the group query requests no POIs")
            }
            GroupTravelError::Clustering(msg) => write!(f, "fuzzy clustering failed: {msg}"),
            GroupTravelError::TopicModel(category) => {
                write!(f, "could not train a topic model for category {category}")
            }
            GroupTravelError::InvalidOperation(msg) => {
                write!(f, "invalid customization operation: {msg}")
            }
        }
    }
}

impl std::error::Error for GroupTravelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            GroupTravelError::EmptyCatalog,
            GroupTravelError::InsufficientCategory {
                category: Category::Restaurant,
                required: 2,
                available: 1,
            },
            GroupTravelError::ZeroCompositeItems,
            GroupTravelError::EmptyQuery,
            GroupTravelError::Clustering("k".into()),
            GroupTravelError::TopicModel(Category::Attraction),
            GroupTravelError::InvalidOperation("x".into()),
        ];
        let codes: Vec<u16> = all.iter().map(GroupTravelError::code).collect();
        assert_eq!(codes, vec![10, 11, 12, 13, 14, 15, 16]);
    }

    #[test]
    fn errors_round_trip_through_json() {
        let e = GroupTravelError::InsufficientCategory {
            category: Category::Restaurant,
            required: 2,
            available: 1,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<GroupTravelError>(&json).unwrap(), e);
    }

    #[test]
    fn display_messages_are_informative() {
        let e = GroupTravelError::InsufficientCategory {
            category: Category::Restaurant,
            required: 2,
            available: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("rest"));
        assert!(msg.contains('2'));
        assert!(msg.contains('1'));
        assert!(GroupTravelError::EmptyCatalog.to_string().contains("empty"));
        assert!(GroupTravelError::Clustering("k too large".into())
            .to_string()
            .contains("k too large"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GroupTravelError::ZeroCompositeItems,
            GroupTravelError::ZeroCompositeItems
        );
        assert_ne!(GroupTravelError::EmptyCatalog, GroupTravelError::EmptyQuery);
    }
}
