//! Item vectors.
//!
//! §3.2: every POI gets an *item vector* over its category's types. For
//! accommodation and transportation the vector is the one-hot encoding of the
//! POI's explicit type; for restaurants and attractions it is the topic
//! distribution obtained from LDA over the POI's tags. The item vector is
//! compared (cosine) to the group profile to score personalization.

use crate::error::GroupTravelError;
use grouptravel_dataset::{Category, Poi, PoiCatalog, TypeVocabulary};
use grouptravel_pool::WorkerPool;
use grouptravel_profile::ProfileSchema;
use grouptravel_topics::{CategoryTopicModel, LdaConfig};

/// Produces item vectors for the POIs of one catalog.
#[derive(Debug, Clone)]
pub struct ItemVectorizer {
    acco_types: TypeVocabulary,
    trans_types: TypeVocabulary,
    restaurant_topics: CategoryTopicModel,
    attraction_topics: CategoryTopicModel,
    schema: ProfileSchema,
}

impl ItemVectorizer {
    /// Trains the LDA models needed for restaurants and attractions and wires
    /// up the explicit type vocabularies.
    ///
    /// # Errors
    /// Returns [`GroupTravelError::TopicModel`] when a category has no POIs
    /// or no tags to train on.
    pub fn fit(catalog: &PoiCatalog, lda: LdaConfig) -> Result<Self, GroupTravelError> {
        Self::fit_on(catalog, lda, None)
    }

    /// [`ItemVectorizer::fit`] with an optional worker pool handed through
    /// to the per-category LDA training runs. Only the block-Gibbs sampler
    /// fans out; results are identical with or without a pool.
    ///
    /// # Errors
    /// Returns [`GroupTravelError::TopicModel`] when a category has no POIs
    /// or no tags to train on.
    pub fn fit_on(
        catalog: &PoiCatalog,
        lda: LdaConfig,
        pool: Option<&WorkerPool>,
    ) -> Result<Self, GroupTravelError> {
        let restaurant_topics =
            CategoryTopicModel::train_on(catalog, Category::Restaurant, lda, pool)
                .ok_or(GroupTravelError::TopicModel(Category::Restaurant))?;
        let attraction_topics =
            CategoryTopicModel::train_on(catalog, Category::Attraction, lda, pool)
                .ok_or(GroupTravelError::TopicModel(Category::Attraction))?;
        let acco_types = TypeVocabulary::default_accommodation();
        let trans_types = TypeVocabulary::default_transportation();
        let schema = ProfileSchema::new([
            acco_types.len(),
            trans_types.len(),
            restaurant_topics.num_topics(),
            attraction_topics.num_topics(),
        ]);
        Ok(Self {
            acco_types,
            trans_types,
            restaurant_topics,
            attraction_topics,
            schema,
        })
    }

    /// The profile schema induced by the vocabularies and topic models: user
    /// and group profiles must use this schema for cosine similarities with
    /// item vectors to be meaningful.
    #[must_use]
    pub fn schema(&self) -> ProfileSchema {
        self.schema
    }

    /// The item vector of a POI (length = schema dimension of its category).
    #[must_use]
    pub fn item_vector(&self, poi: &Poi) -> Vec<f64> {
        match poi.category {
            Category::Accommodation => self.acco_types.one_hot(&poi.poi_type),
            Category::Transportation => self.trans_types.one_hot(&poi.poi_type),
            Category::Restaurant => self.restaurant_topics.topics_of_poi(poi),
            Category::Attraction => self.attraction_topics.topics_of_poi(poi),
        }
    }

    /// The human-readable labels of the latent topics for restaurants or
    /// attractions (empty for the explicit-type categories). These are the
    /// "types" users rate when building their profiles.
    #[must_use]
    pub fn topic_labels(&self, category: Category) -> Vec<String> {
        match category {
            Category::Restaurant => self
                .restaurant_topics
                .labels()
                .iter()
                .map(|l| l.display())
                .collect(),
            Category::Attraction => self
                .attraction_topics
                .labels()
                .iter()
                .map(|l| l.display())
                .collect(),
            Category::Accommodation | Category::Transportation => Vec::new(),
        }
    }

    /// The explicit type names of a category (empty for restaurant /
    /// attraction, whose "types" are topics).
    #[must_use]
    pub fn type_names(&self, category: Category) -> Vec<String> {
        match category {
            Category::Accommodation => self.acco_types.types().to_vec(),
            Category::Transportation => self.trans_types.types().to_vec(),
            Category::Restaurant | Category::Attraction => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};

    fn vectorizer() -> (PoiCatalog, ItemVectorizer) {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(31))
                .generate();
        let lda = LdaConfig {
            iterations: 60,
            ..LdaConfig::default()
        };
        let v = ItemVectorizer::fit(&catalog, lda).unwrap();
        (catalog, v)
    }

    #[test]
    fn schema_dimensions_match_vocabularies_and_topics() {
        let (_, v) = vectorizer();
        assert_eq!(
            v.schema().dim(Category::Accommodation),
            TypeVocabulary::default_accommodation().len()
        );
        assert_eq!(v.schema().dim(Category::Restaurant), 4);
        assert_eq!(v.schema().dim(Category::Attraction), 4);
    }

    #[test]
    fn accommodation_vectors_are_one_hot() {
        let (catalog, v) = vectorizer();
        for poi in catalog.by_category(Category::Accommodation) {
            let vec = v.item_vector(poi);
            assert_eq!(vec.len(), v.schema().dim(Category::Accommodation));
            assert!((vec.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(vec.iter().filter(|&&x| x > 0.0).count(), 1);
        }
    }

    #[test]
    fn restaurant_vectors_are_probability_distributions() {
        let (catalog, v) = vectorizer();
        for poi in catalog.by_category(Category::Restaurant).iter().take(10) {
            let vec = v.item_vector(poi);
            assert_eq!(vec.len(), v.schema().dim(Category::Restaurant));
            assert!((vec.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(vec.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn topic_labels_exist_for_latent_categories_only() {
        let (_, v) = vectorizer();
        assert_eq!(v.topic_labels(Category::Restaurant).len(), 4);
        assert_eq!(v.topic_labels(Category::Attraction).len(), 4);
        assert!(v.topic_labels(Category::Accommodation).is_empty());
        assert!(!v.type_names(Category::Accommodation).is_empty());
        assert!(v.type_names(Category::Restaurant).is_empty());
    }

    #[test]
    fn fitting_on_an_empty_catalog_fails() {
        let empty = PoiCatalog::new("Empty", vec![]);
        let err = ItemVectorizer::fit(&empty, LdaConfig::default()).unwrap_err();
        assert_eq!(err, GroupTravelError::TopicModel(Category::Restaurant));
    }
}
