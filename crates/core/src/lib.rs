//! # GroupTravel
//!
//! A reproduction of *GroupTravel: Customizing Travel Packages for Groups*
//! (Amer-Yahia et al., EDBT 2019). GroupTravel generates a **Travel Package
//! (TP)** — a set of `k` **Composite Items (CIs)**, each a set of POIs of the
//! categories requested by a group query, under a budget — that is *valid*,
//! *representative* of the city, *cohesive* (POIs in a CI are geographically
//! close) and *personalized* to a group profile aggregated from individual
//! member preferences with a consensus function. Group members can then
//! interact with the package (add / remove / replace POIs, generate new CIs)
//! and their interactions refine the group profile.
//!
//! ## Quick start
//!
//! ```
//! use grouptravel::prelude::*;
//!
//! // 1. A synthetic Paris catalog (substitute for TourPedia + Foursquare).
//! let catalog = SyntheticCityGenerator::new(
//!     CitySpec::paris(),
//!     SyntheticCityConfig::small(7),
//! )
//! .generate();
//!
//! // 2. A session wires the catalog to LDA topic models and item vectors.
//! let session = GroupTravelSession::new(catalog, SessionConfig::default()).unwrap();
//!
//! // 3. A group of travelers and their consensus profile.
//! let mut gen = SyntheticGroupGenerator::new(session.profile_schema(), 1);
//! let group = gen.group(GroupSize::Small, Uniformity::Uniform);
//! let profile = group.profile(ConsensusMethod::pairwise_disagreement());
//!
//! // 4. Build a 5-CI package for the default query.
//! let package = session
//!     .build_package(&profile, &GroupQuery::paper_default(), &BuildConfig::default())
//!     .unwrap();
//! assert_eq!(package.len(), 5);
//! ```
//!
//! ## Crate map
//!
//! * [`query`] — group queries ⟨#acco, #trans, #rest, #attr, budget⟩.
//! * [`items`] — item vectors (one-hot types / LDA topic distributions).
//! * [`composite`] — composite items and validity.
//! * [`package`] — travel packages.
//! * [`objective`] — the weights of objective function Eq. 1.
//! * [`builder`] — the KFC-style fuzzy-clustering package builder, plus the
//!   non-personalized and random baselines used in the user study.
//! * [`metrics`] — representativity, cohesiveness, personalization (Eq. 2–4).
//! * [`customize`] — the REMOVE/ADD/REPLACE/GENERATE operators (§3.3).
//! * [`refine`] — individual and batch group-profile refinement.
//! * [`session`] — the high-level facade tying everything together (Fig. 2).

pub mod builder;
pub mod composite;
pub mod customize;
pub mod error;
pub mod items;
pub mod metrics;
pub mod objective;
pub mod package;
pub mod query;
pub mod refine;
pub mod session;

pub use builder::{BruteForceCandidates, BuildConfig, CandidateProvider, PackageBuilder};
pub use composite::CompositeItem;
pub use customize::{record_member_log, CustomizationOp, InteractionLog, MemberInteractions};
pub use error::GroupTravelError;
pub use items::ItemVectorizer;
pub use metrics::{cohesiveness, personalization, representativity, OptimizationDimensions};
pub use objective::ObjectiveWeights;
pub use package::TravelPackage;
pub use query::GroupQuery;
pub use refine::{refine_batch, refine_individual, RefinementStrategy};
pub use session::{apply_op, suggest_replacement_in, GroupTravelSession, SessionConfig};

/// Convenience re-exports for downstream code and the examples.
pub mod prelude {
    pub use crate::builder::{
        BruteForceCandidates, BuildConfig, CandidateProvider, PackageBuilder,
    };
    pub use crate::composite::CompositeItem;
    pub use crate::customize::{CustomizationOp, InteractionLog, MemberInteractions};
    pub use crate::error::GroupTravelError;
    pub use crate::metrics::OptimizationDimensions;
    pub use crate::objective::ObjectiveWeights;
    pub use crate::package::TravelPackage;
    pub use crate::query::GroupQuery;
    pub use crate::refine::RefinementStrategy;
    pub use crate::session::{GroupTravelSession, SessionConfig};
    pub use grouptravel_dataset::{
        Category, CitySpec, Poi, PoiCatalog, PoiId, SyntheticCityConfig, SyntheticCityGenerator,
    };
    pub use grouptravel_geo::{GeoPoint, Rectangle};
    pub use grouptravel_profile::{
        ConsensusMethod, Group, GroupProfile, GroupSize, ProfileSchema, SyntheticGroupGenerator,
        Uniformity, UserProfile,
    };
}
