//! Optimization dimensions (Eq. 2–4).
//!
//! Once a travel package is computed, the synthetic experiment measures each
//! component of the objective (§4.2):
//!
//! * **Representativity** (Eq. 2): the sum of pairwise distances between the
//!   composite items' centroids — the farther apart the CIs, the better the
//!   city is covered.
//! * **Cohesiveness** (Eq. 3): `S − Σ_CI Σ_{i,j∈CI} distance(i, j)` — the
//!   constant `S` (221.79 in the paper's run) turns "small internal
//!   distances" into "large cohesiveness".
//! * **Personalization** (Eq. 4): `Σ_CI Σ_{i∈CI} cosine(item vector, group
//!   profile)`.

use crate::items::ItemVectorizer;
use crate::package::TravelPackage;
use grouptravel_dataset::PoiCatalog;
use grouptravel_geo::DistanceMetric;
use grouptravel_profile::GroupProfile;
use serde::{Deserialize, Serialize};

/// The cohesiveness offset `S` used in the paper's synthetic experiment
/// (§4.2): "the largest observed value for aggregated distances".
pub const PAPER_COHESIVENESS_OFFSET: f64 = 221.79;

/// The three measured dimensions of one travel package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OptimizationDimensions {
    /// Representativity (Eq. 2), kilometres.
    pub representativity: f64,
    /// Cohesiveness (Eq. 3), kilometres (offset minus internal distances).
    pub cohesiveness: f64,
    /// Personalization (Eq. 4), summed cosine similarity.
    pub personalization: f64,
}

impl OptimizationDimensions {
    /// Measures all three dimensions of `package`.
    #[must_use]
    pub fn measure(
        package: &TravelPackage,
        catalog: &PoiCatalog,
        vectorizer: &ItemVectorizer,
        profile: &GroupProfile,
        metric: DistanceMetric,
    ) -> Self {
        Self {
            representativity: representativity(package, catalog, metric),
            cohesiveness: cohesiveness(package, catalog, metric, PAPER_COHESIVENESS_OFFSET),
            personalization: personalization(package, catalog, vectorizer, profile),
        }
    }

    /// The dimensions as an array `[R, C, P]` (handy for normalization).
    #[must_use]
    pub fn as_array(&self) -> [f64; 3] {
        [
            self.representativity,
            self.cohesiveness,
            self.personalization,
        ]
    }
}

/// Representativity (Eq. 2): sum of pairwise distances between CI centroids.
/// Packages whose composite items have no resolvable centroid contribute
/// nothing.
#[must_use]
pub fn representativity(
    package: &TravelPackage,
    catalog: &PoiCatalog,
    metric: DistanceMetric,
) -> f64 {
    let centroids: Vec<_> = package
        .composite_items()
        .iter()
        .filter_map(|ci| ci.centroid(catalog))
        .collect();
    let mut total = 0.0;
    for (i, a) in centroids.iter().enumerate() {
        for b in &centroids[i + 1..] {
            total += metric.distance_km(a, b);
        }
    }
    total
}

/// Cohesiveness (Eq. 3): `offset − Σ_CI Σ_{i,j∈CI} distance(i, j)`.
///
/// Following the paper, the offset is a constant chosen as the largest
/// observed aggregate distance, so that tighter composite items score higher.
/// The value is *not* clamped: a package whose internal distances exceed the
/// offset scores negative, which preserves the ordering the experiments rely
/// on.
#[must_use]
pub fn cohesiveness(
    package: &TravelPackage,
    catalog: &PoiCatalog,
    metric: DistanceMetric,
    offset: f64,
) -> f64 {
    let internal: f64 = package
        .composite_items()
        .iter()
        .map(|ci| ci.internal_distance_km(catalog, metric))
        .sum();
    offset - internal
}

/// Personalization (Eq. 4): summed cosine similarity between every item in
/// the package and the group profile vector of the item's category.
#[must_use]
pub fn personalization(
    package: &TravelPackage,
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
    profile: &GroupProfile,
) -> f64 {
    package
        .composite_items()
        .iter()
        .flat_map(|ci| ci.resolve(catalog))
        .map(|poi| profile.item_affinity(poi.category, &vectorizer.item_vector(poi)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuildConfig, PackageBuilder};
    use crate::composite::CompositeItem;
    use crate::query::GroupQuery;
    use grouptravel_dataset::{CitySpec, PoiId, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_profile::{ConsensusMethod, GroupSize, SyntheticGroupGenerator, Uniformity};
    use grouptravel_topics::LdaConfig;

    struct Fixture {
        catalog: PoiCatalog,
        vectorizer: ItemVectorizer,
        profile: GroupProfile,
    }

    fn fixture() -> Fixture {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(51))
                .generate();
        let vectorizer = ItemVectorizer::fit(
            &catalog,
            LdaConfig {
                iterations: 40,
                ..LdaConfig::default()
            },
        )
        .unwrap();
        let mut gen = SyntheticGroupGenerator::new(vectorizer.schema(), 9);
        let profile = gen
            .group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::average_preference());
        Fixture {
            catalog,
            vectorizer,
            profile,
        }
    }

    #[test]
    fn empty_package_has_zero_representativity_and_personalization() {
        let f = fixture();
        let tp = TravelPackage::default();
        assert_eq!(
            representativity(&tp, &f.catalog, DistanceMetric::Equirectangular),
            0.0
        );
        assert_eq!(
            personalization(&tp, &f.catalog, &f.vectorizer, &f.profile),
            0.0
        );
        assert_eq!(
            cohesiveness(&tp, &f.catalog, DistanceMetric::Equirectangular, 10.0),
            10.0
        );
    }

    #[test]
    fn representativity_grows_with_spread_out_composite_items() {
        let f = fixture();
        // Two CIs anchored at opposite corners of Paris vs. two at the same spot.
        let bbox = f.catalog.bounding_box().unwrap();
        let far = TravelPackage::new(vec![
            CompositeItem::with_anchor(
                vec![],
                grouptravel_geo::GeoPoint::new_unchecked(bbox.min_lat, bbox.min_lon),
            ),
            CompositeItem::with_anchor(
                vec![],
                grouptravel_geo::GeoPoint::new_unchecked(bbox.max_lat, bbox.max_lon),
            ),
        ]);
        let near = TravelPackage::new(vec![
            CompositeItem::with_anchor(vec![], bbox.center()),
            CompositeItem::with_anchor(vec![], bbox.center()),
        ]);
        let r_far = representativity(&far, &f.catalog, DistanceMetric::Equirectangular);
        let r_near = representativity(&near, &f.catalog, DistanceMetric::Equirectangular);
        assert!(r_far > r_near);
        assert_eq!(r_near, 0.0);
    }

    #[test]
    fn cohesiveness_decreases_when_a_far_poi_is_added() {
        let f = fixture();
        let ids: Vec<PoiId> = f.catalog.pois().iter().map(|p| p.id).collect();
        let tight = TravelPackage::new(vec![CompositeItem::new(vec![ids[0], ids[1]])]);
        // Add the POI farthest from the first one to loosen the CI.
        let first = f.catalog.get(ids[0]).unwrap().location;
        let far_id = f
            .catalog
            .pois()
            .iter()
            .max_by(|a, b| {
                let da = DistanceMetric::Equirectangular.distance_km(&first, &a.location);
                let db = DistanceMetric::Equirectangular.distance_km(&first, &b.location);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap()
            .id;
        let loose = TravelPackage::new(vec![CompositeItem::new(vec![ids[0], ids[1], far_id])]);
        let c_tight = cohesiveness(
            &tight,
            &f.catalog,
            DistanceMetric::Equirectangular,
            PAPER_COHESIVENESS_OFFSET,
        );
        let c_loose = cohesiveness(
            &loose,
            &f.catalog,
            DistanceMetric::Equirectangular,
            PAPER_COHESIVENESS_OFFSET,
        );
        assert!(c_tight > c_loose);
    }

    #[test]
    fn personalization_is_higher_for_personalized_builds() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();
        let personalized = builder.build(&f.profile, &query, &config).unwrap();
        let non_personalized = builder
            .build_non_personalized(&f.profile, &query, &config)
            .unwrap();
        let p_yes = personalization(&personalized, &f.catalog, &f.vectorizer, &f.profile);
        let p_no = personalization(&non_personalized, &f.catalog, &f.vectorizer, &f.profile);
        assert!(
            p_yes >= p_no,
            "personalized build scored {p_yes} < non-personalized {p_no}"
        );
    }

    #[test]
    fn measure_bundles_all_three_dimensions() {
        let f = fixture();
        let builder = PackageBuilder::new(&f.catalog, &f.vectorizer);
        let package = builder
            .build(
                &f.profile,
                &GroupQuery::paper_default(),
                &BuildConfig::default(),
            )
            .unwrap();
        let dims = OptimizationDimensions::measure(
            &package,
            &f.catalog,
            &f.vectorizer,
            &f.profile,
            DistanceMetric::Equirectangular,
        );
        assert!(dims.representativity > 0.0);
        assert!(dims.personalization > 0.0);
        assert!(dims.cohesiveness <= PAPER_COHESIVENESS_OFFSET);
        let arr = dims.as_array();
        assert_eq!(arr[0], dims.representativity);
        assert_eq!(arr[2], dims.personalization);
    }
}
