//! Weights of the objective function (Eq. 1).
//!
//! The objective maximized when building a travel package combines three
//! components:
//!
//! * `α` — the fuzzy-clustering (representativity) term
//!   `Σ_j Σ_i w_ij^f (1 − d(i, μ_j))`,
//! * `β` — the cohesiveness term: items in a CI should be close to their
//!   centroid,
//! * `γ` — the personalization term: cosine similarity between item vectors
//!   and the group profile.
//!
//! The synthetic experiment fixes `γ = 1.0` and draws `α`, `β` uniformly in
//! `[0, 1]` to avoid biasing either geometric objective (§4.3.1). The
//! non-personalized baseline of the user study is obtained by setting the
//! personalization weight to zero.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Weights of the three objective components and the fuzzifier exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight of the fuzzy-clustering / representativity term.
    pub alpha: f64,
    /// Weight of the cohesiveness term.
    pub beta: f64,
    /// Weight of the personalization term.
    pub gamma: f64,
    /// Fuzzifier exponent used by the clustering substrate.
    pub fuzzifier: f64,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beta: 0.5,
            gamma: 1.0,
            fuzzifier: 2.0,
        }
    }
}

impl ObjectiveWeights {
    /// The synthetic-experiment setting: `γ = 1`, `α` and `β` drawn uniformly
    /// at random in `[0, 1]` (deterministically from `seed`).
    #[must_use]
    pub fn paper_synthetic(seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self {
            alpha: rng.gen_range(0.0..=1.0),
            beta: rng.gen_range(0.0..=1.0),
            gamma: 1.0,
            fuzzifier: 2.0,
        }
    }

    /// The non-personalized baseline: the personalization weight is zero, so
    /// the package is driven purely by geography.
    #[must_use]
    pub fn non_personalized(self) -> Self {
        Self { gamma: 0.0, ..self }
    }

    /// Whether this configuration personalizes at all.
    #[must_use]
    pub fn is_personalized(&self) -> bool {
        self.gamma > 0.0
    }

    /// Clamps every weight to `[0, 1]` and the fuzzifier above 1, returning a
    /// sanitized copy.
    #[must_use]
    pub fn sanitized(&self) -> Self {
        Self {
            alpha: self.alpha.clamp(0.0, 1.0),
            beta: self.beta.clamp(0.0, 1.0),
            gamma: self.gamma.clamp(0.0, 1.0),
            fuzzifier: if self.fuzzifier > 1.0 {
                self.fuzzifier
            } else {
                2.0
            },
        }
    }

    /// The per-item score used when assembling composite items around a
    /// centroid: `β · (1 − distance) + γ · cosine` (the second and third
    /// components of Eq. 1 for a single item).
    #[must_use]
    pub fn item_score(&self, geographic_similarity: f64, profile_affinity: f64) -> f64 {
        self.beta * geographic_similarity + self.gamma * profile_affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_personalize() {
        let w = ObjectiveWeights::default();
        assert!(w.is_personalized());
        assert_eq!(w.gamma, 1.0);
    }

    #[test]
    fn paper_synthetic_fixes_gamma_and_randomizes_alpha_beta() {
        let w = ObjectiveWeights::paper_synthetic(3);
        assert_eq!(w.gamma, 1.0);
        assert!((0.0..=1.0).contains(&w.alpha));
        assert!((0.0..=1.0).contains(&w.beta));
        // Deterministic per seed, different across seeds.
        assert_eq!(w, ObjectiveWeights::paper_synthetic(3));
        assert_ne!(w, ObjectiveWeights::paper_synthetic(4));
    }

    #[test]
    fn non_personalized_zeroes_gamma_only() {
        let w = ObjectiveWeights::default().non_personalized();
        assert!(!w.is_personalized());
        assert_eq!(w.beta, 0.5);
    }

    #[test]
    fn sanitized_clamps_out_of_range_values() {
        let w = ObjectiveWeights {
            alpha: -1.0,
            beta: 2.0,
            gamma: 0.3,
            fuzzifier: 0.5,
        }
        .sanitized();
        assert_eq!(w.alpha, 0.0);
        assert_eq!(w.beta, 1.0);
        assert_eq!(w.gamma, 0.3);
        assert_eq!(w.fuzzifier, 2.0);
    }

    #[test]
    fn item_score_combines_geography_and_affinity() {
        let w = ObjectiveWeights {
            alpha: 0.0,
            beta: 0.5,
            gamma: 1.0,
            fuzzifier: 2.0,
        };
        assert!((w.item_score(0.8, 0.6) - (0.4 + 0.6)).abs() < 1e-12);
        let np = w.non_personalized();
        assert!((np.item_score(0.8, 0.6) - 0.4).abs() < 1e-12);
    }
}
