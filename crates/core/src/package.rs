//! Travel Packages.
//!
//! §3.2: a travel package is a set of `k` composite items
//! `TP = {CI_1, …, CI_k}`, one per day of the trip in the running example.

use crate::composite::CompositeItem;
use crate::query::GroupQuery;
use grouptravel_dataset::{PoiCatalog, PoiId};
use serde::{Deserialize, Serialize};

/// A travel package: `k` composite items.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TravelPackage {
    composite_items: Vec<CompositeItem>,
}

impl TravelPackage {
    /// Creates a package from composite items.
    #[must_use]
    pub fn new(composite_items: Vec<CompositeItem>) -> Self {
        Self { composite_items }
    }

    /// The composite items.
    #[must_use]
    pub fn composite_items(&self) -> &[CompositeItem] {
        &self.composite_items
    }

    /// Mutable access to the composite items (customization operators).
    #[must_use]
    pub fn composite_items_mut(&mut self) -> &mut [CompositeItem] {
        &mut self.composite_items
    }

    /// Number of composite items `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.composite_items.len()
    }

    /// Whether the package has no composite items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.composite_items.is_empty()
    }

    /// The `idx`-th composite item.
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<&CompositeItem> {
        self.composite_items.get(idx)
    }

    /// Mutable access to the `idx`-th composite item.
    #[must_use]
    pub fn get_mut(&mut self, idx: usize) -> Option<&mut CompositeItem> {
        self.composite_items.get_mut(idx)
    }

    /// Appends a composite item (the GENERATE operator) and returns its
    /// index.
    pub fn push(&mut self, ci: CompositeItem) -> usize {
        self.composite_items.push(ci);
        self.composite_items.len() - 1
    }

    /// Removes the `idx`-th composite item (deleting a CI is iteratively
    /// removing its items in the paper; the harness exposes it directly).
    pub fn remove(&mut self, idx: usize) -> Option<CompositeItem> {
        if idx < self.composite_items.len() {
            Some(self.composite_items.remove(idx))
        } else {
            None
        }
    }

    /// Drops composite items that became empty after customization.
    pub fn prune_empty(&mut self) {
        self.composite_items.retain(|ci| !ci.is_empty());
    }

    /// All POI ids across the package (with duplicates if a POI appears in
    /// several composite items, which fuzzy clustering explicitly allows).
    #[must_use]
    pub fn all_poi_ids(&self) -> Vec<PoiId> {
        self.composite_items
            .iter()
            .flat_map(|ci| ci.poi_ids().iter().copied())
            .collect()
    }

    /// Distinct POI ids across the package.
    #[must_use]
    pub fn distinct_poi_ids(&self) -> Vec<PoiId> {
        let mut ids = self.all_poi_ids();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Whether every composite item is valid for `query`.
    #[must_use]
    pub fn is_valid(&self, catalog: &PoiCatalog, query: &GroupQuery) -> bool {
        !self.is_empty()
            && self
                .composite_items
                .iter()
                .all(|ci| ci.is_valid(catalog, query))
    }

    /// Total cost of the package.
    #[must_use]
    pub fn total_cost(&self, catalog: &PoiCatalog) -> f64 {
        self.composite_items
            .iter()
            .map(|ci| ci.total_cost(catalog))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::sample::table1_pois;

    fn catalog() -> PoiCatalog {
        PoiCatalog::new("Paris", table1_pois())
    }

    fn full_ci() -> CompositeItem {
        CompositeItem::new(vec![PoiId(1), PoiId(2), PoiId(3), PoiId(4)])
    }

    #[test]
    fn push_get_remove() {
        let mut tp = TravelPackage::default();
        assert!(tp.is_empty());
        let idx = tp.push(full_ci());
        assert_eq!(idx, 0);
        assert_eq!(tp.len(), 1);
        assert!(tp.get(0).is_some());
        assert!(tp.get(1).is_none());
        assert!(tp.remove(5).is_none());
        assert!(tp.remove(0).is_some());
        assert!(tp.is_empty());
    }

    #[test]
    fn poi_id_listings() {
        let tp = TravelPackage::new(vec![
            CompositeItem::new(vec![PoiId(1), PoiId(2)]),
            CompositeItem::new(vec![PoiId(2), PoiId(3)]),
        ]);
        assert_eq!(tp.all_poi_ids().len(), 4);
        assert_eq!(tp.distinct_poi_ids(), vec![PoiId(1), PoiId(2), PoiId(3)]);
    }

    #[test]
    fn validity_requires_every_ci_valid_and_nonempty_package() {
        let c = catalog();
        let query = GroupQuery::new([1, 1, 1, 1], None);
        let valid = TravelPackage::new(vec![full_ci()]);
        assert!(valid.is_valid(&c, &query));
        let invalid = TravelPackage::new(vec![full_ci(), CompositeItem::new(vec![PoiId(1)])]);
        assert!(!invalid.is_valid(&c, &query));
        assert!(!TravelPackage::default().is_valid(&c, &query));
    }

    #[test]
    fn prune_empty_drops_emptied_cis() {
        let mut tp = TravelPackage::new(vec![CompositeItem::new(vec![]), full_ci()]);
        tp.prune_empty();
        assert_eq!(tp.len(), 1);
    }

    #[test]
    fn total_cost_sums_over_cis() {
        let c = catalog();
        let tp = TravelPackage::new(vec![
            CompositeItem::new(vec![PoiId(1)]),
            CompositeItem::new(vec![PoiId(2)]),
        ]);
        assert!((tp.total_cost(&c) - 5.71).abs() < 1e-9);
    }
}
