//! Group queries.
//!
//! §3.1: a query is a vector `⟨#c1, …, #cm, B⟩` specifying how many POIs of
//! each category a composite item must contain and a total budget `B`. The
//! example query of Figure 1 is ⟨1 acco, 1 trans, 1 rest, 3 attr, $100⟩ and
//! the default query of the experiments is ⟨1 acco, 1 trans, 1 rest, 3 attr⟩
//! with an infinite budget.

use grouptravel_dataset::Category;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A group query: per-category POI counts plus an optional budget
/// (`None` = unlimited, the "infinite budget" of the experiments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupQuery {
    counts: [usize; 4],
    budget: Option<f64>,
}

impl GroupQuery {
    /// Creates a query from per-category counts (in [`Category::ALL`] order)
    /// and an optional budget.
    #[must_use]
    pub fn new(counts: [usize; 4], budget: Option<f64>) -> Self {
        Self {
            counts,
            budget: budget.filter(|b| b.is_finite() && *b >= 0.0),
        }
    }

    /// The experiments' default query: ⟨1 acco, 1 trans, 1 rest, 3 attr⟩,
    /// infinite budget (§4.3.1, §4.4.3).
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new([1, 1, 1, 3], None)
    }

    /// The introduction's example query: ⟨1 acco, 1 trans, 1 rest, 3 attr,
    /// $100⟩ (Figure 1).
    #[must_use]
    pub fn figure1() -> Self {
        Self::new([1, 1, 1, 3], Some(100.0))
    }

    /// Builder-style setter for one category's count.
    #[must_use]
    pub fn with_count(mut self, category: Category, count: usize) -> Self {
        self.counts[category.index()] = count;
        self
    }

    /// Builder-style setter for the budget.
    #[must_use]
    pub fn with_budget(mut self, budget: Option<f64>) -> Self {
        self.budget = budget.filter(|b| b.is_finite() && *b >= 0.0);
        self
    }

    /// How many POIs of `category` each composite item must contain.
    #[must_use]
    pub fn count(&self, category: Category) -> usize {
        self.counts[category.index()]
    }

    /// All counts in [`Category::ALL`] order.
    #[must_use]
    pub fn counts(&self) -> [usize; 4] {
        self.counts
    }

    /// The budget, if bounded.
    #[must_use]
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }

    /// Total number of POIs per composite item.
    #[must_use]
    pub fn total_pois(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Whether the query requests at least one POI.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_pois() == 0
    }

    /// Whether a total cost respects the budget.
    #[must_use]
    pub fn within_budget(&self, total_cost: f64) -> bool {
        match self.budget {
            Some(budget) => total_cost <= budget + 1e-9,
            None => true,
        }
    }
}

impl Default for GroupQuery {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for GroupQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (idx, category) in Category::ALL.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", self.counts[idx], category)?;
        }
        match self.budget {
            Some(b) => write!(f, ", ${b:.0}⟩"),
            None => write!(f, ", unlimited⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_the_experiments() {
        let q = GroupQuery::paper_default();
        assert_eq!(q.count(Category::Accommodation), 1);
        assert_eq!(q.count(Category::Transportation), 1);
        assert_eq!(q.count(Category::Restaurant), 1);
        assert_eq!(q.count(Category::Attraction), 3);
        assert_eq!(q.budget(), None);
        assert_eq!(q.total_pois(), 6);
    }

    #[test]
    fn figure1_query_has_a_100_dollar_budget() {
        let q = GroupQuery::figure1();
        assert_eq!(q.budget(), Some(100.0));
    }

    #[test]
    fn builder_setters() {
        let q = GroupQuery::paper_default()
            .with_count(Category::Restaurant, 2)
            .with_budget(Some(120.0));
        assert_eq!(q.count(Category::Restaurant), 2);
        assert_eq!(q.budget(), Some(120.0));
    }

    #[test]
    fn invalid_budgets_are_treated_as_unlimited() {
        assert_eq!(GroupQuery::new([1, 1, 1, 1], Some(f64::NAN)).budget(), None);
        assert_eq!(GroupQuery::new([1, 1, 1, 1], Some(-5.0)).budget(), None);
        assert_eq!(
            GroupQuery::paper_default()
                .with_budget(Some(f64::INFINITY))
                .budget(),
            None
        );
    }

    #[test]
    fn within_budget_logic() {
        let bounded = GroupQuery::new([1, 0, 0, 0], Some(10.0));
        assert!(bounded.within_budget(9.0));
        assert!(bounded.within_budget(10.0));
        assert!(!bounded.within_budget(10.5));
        assert!(GroupQuery::paper_default().within_budget(1e12));
    }

    #[test]
    fn empty_query_detection() {
        assert!(GroupQuery::new([0, 0, 0, 0], None).is_empty());
        assert!(!GroupQuery::paper_default().is_empty());
    }

    #[test]
    fn display_mentions_every_category_and_the_budget() {
        let s = GroupQuery::figure1().to_string();
        assert!(s.contains("1 acco"));
        assert!(s.contains("3 attr"));
        assert!(s.contains("$100"));
        assert!(GroupQuery::paper_default()
            .to_string()
            .contains("unlimited"));
    }
}
