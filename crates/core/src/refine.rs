//! Group-profile refinement from interactions.
//!
//! §3.3, "Refining the group profile": the POIs a group adds (`I⁺`) and
//! removes (`I⁻`) are implicit feedback. For every category the group vector
//! is updated as
//!
//! ```text
//! g ← g + g⁺ − g⁻     with  g⁺ = (1/|I⁺|) Σ_{i∈I⁺} item_vector(i)
//! ```
//!
//! and components that fall below zero are clamped to zero. Two strategies
//! are compared in the user study (§4.4.4):
//!
//! * **Batch** — pool the interactions of all members and update the group
//!   profile directly.
//! * **Individual** — update each member's own profile from that member's
//!   interactions, then re-aggregate the group profile with the consensus
//!   function.

use crate::customize::{pool_interactions, InteractionLog, MemberInteractions};
use crate::items::ItemVectorizer;
use grouptravel_dataset::{Category, PoiCatalog, PoiId};
use grouptravel_profile::{ConsensusMethod, Group, GroupProfile, UserProfile};
use serde::{Deserialize, Serialize};

/// Which refinement strategy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RefinementStrategy {
    /// Refine each member's profile, then re-aggregate.
    Individual,
    /// Pool every member's interactions and refine the group profile
    /// directly.
    Batch,
}

impl RefinementStrategy {
    /// Display name as used in Tables 6 and 7.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RefinementStrategy::Individual => "individual",
            RefinementStrategy::Batch => "batch",
        }
    }
}

/// Mean item vector of the POIs (of one category) in `ids`, or `None` if no
/// POI of that category appears.
fn mean_item_vector(
    ids: &[PoiId],
    category: Category,
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
    dim: usize,
) -> Option<Vec<f64>> {
    let vectors: Vec<Vec<f64>> = ids
        .iter()
        .filter_map(|&id| catalog.get(id))
        .filter(|poi| poi.category == category)
        .map(|poi| vectorizer.item_vector(poi))
        .collect();
    if vectors.is_empty() {
        return None;
    }
    let mut mean = vec![0.0; dim];
    for v in &vectors {
        for (slot, &x) in mean.iter_mut().zip(v) {
            *slot += x;
        }
    }
    let n = vectors.len() as f64;
    mean.iter_mut().for_each(|x| *x /= n);
    Some(mean)
}

/// Applies `g ← g + g⁺ − g⁻` (clamped at zero) to one per-category vector.
fn refine_vector(
    current: &[f64],
    log: &InteractionLog,
    category: Category,
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
) -> Vec<f64> {
    let dim = current.len();
    let plus = mean_item_vector(&log.added, category, catalog, vectorizer, dim);
    let minus = mean_item_vector(&log.removed, category, catalog, vectorizer, dim);
    current
        .iter()
        .enumerate()
        .map(|(j, &g)| {
            let p = plus.as_ref().and_then(|v| v.get(j)).copied().unwrap_or(0.0);
            let m = minus
                .as_ref()
                .and_then(|v| v.get(j))
                .copied()
                .unwrap_or(0.0);
            (g + p - m).max(0.0)
        })
        .collect()
}

/// The **batch** strategy: pools all members' interactions and refines the
/// group profile directly.
#[must_use]
pub fn refine_batch(
    profile: &GroupProfile,
    interactions: &[MemberInteractions],
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
) -> GroupProfile {
    let pooled = pool_interactions(interactions);
    let mut refined = profile.clone();
    if pooled.is_empty() {
        return refined;
    }
    for category in Category::ALL {
        let updated = refine_vector(
            profile.vector(category),
            &pooled,
            category,
            catalog,
            vectorizer,
        );
        refined.set_vector(category, updated);
    }
    refined
}

/// The **individual** strategy: refines each interacting member's profile
/// from that member's own interactions, then re-aggregates the group profile
/// with `method`. Members who did not interact keep their original profile.
///
/// Returns the refined group (with updated member profiles) and the
/// re-aggregated group profile.
#[must_use]
pub fn refine_individual(
    group: &Group,
    method: ConsensusMethod,
    interactions: &[MemberInteractions],
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
) -> (Group, GroupProfile) {
    let mut refined_members: Vec<UserProfile> = group.members().to_vec();
    for member in &mut refined_members {
        let Some(record) = interactions
            .iter()
            .find(|i| i.user_id == member.user_id && !i.log.is_empty())
        else {
            continue;
        };
        for category in Category::ALL {
            let updated = refine_vector(
                member.vector(category),
                &record.log,
                category,
                catalog,
                vectorizer,
            );
            member.set_scores(category, updated);
        }
    }
    let refined_group = Group::new(group.group_id, refined_members);
    let profile = refined_group.profile(method);
    (refined_group, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_profile::{GroupSize, SyntheticGroupGenerator, Uniformity};
    use grouptravel_topics::LdaConfig;

    struct Fixture {
        catalog: PoiCatalog,
        vectorizer: ItemVectorizer,
        group: Group,
        profile: GroupProfile,
    }

    fn fixture() -> Fixture {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(61))
                .generate();
        let vectorizer = ItemVectorizer::fit(
            &catalog,
            LdaConfig {
                iterations: 40,
                ..LdaConfig::default()
            },
        )
        .unwrap();
        let mut gen = SyntheticGroupGenerator::new(vectorizer.schema(), 3);
        let group = gen.group(GroupSize::Small, Uniformity::Uniform);
        let profile = group.profile(ConsensusMethod::average_preference());
        Fixture {
            catalog,
            vectorizer,
            group,
            profile,
        }
    }

    fn first_attraction(f: &Fixture) -> PoiId {
        f.catalog.by_category(Category::Attraction)[0].id
    }

    #[test]
    fn no_interactions_leaves_the_profile_unchanged() {
        let f = fixture();
        let refined = refine_batch(&f.profile, &[], &f.catalog, &f.vectorizer);
        assert_eq!(refined, f.profile);
        let empty_member = MemberInteractions::new(f.group.members()[0].user_id);
        let refined = refine_batch(&f.profile, &[empty_member], &f.catalog, &f.vectorizer);
        assert_eq!(
            refined.vector(Category::Attraction),
            f.profile.vector(Category::Attraction)
        );
    }

    #[test]
    fn adding_a_poi_raises_the_matching_components() {
        let f = fixture();
        let poi_id = first_attraction(&f);
        let poi = f.catalog.get(poi_id).unwrap();
        let item_vec = f.vectorizer.item_vector(poi);
        let hottest = item_vec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;

        let mut member = MemberInteractions::new(f.group.members()[0].user_id);
        member.log.record_add(poi_id);
        let refined = refine_batch(&f.profile, &[member], &f.catalog, &f.vectorizer);
        assert!(
            refined.score(Category::Attraction, hottest)
                > f.profile.score(Category::Attraction, hottest)
        );
        // Other categories untouched.
        assert_eq!(
            refined.vector(Category::Restaurant),
            f.profile.vector(Category::Restaurant)
        );
    }

    #[test]
    fn removing_a_poi_lowers_but_never_below_zero() {
        let f = fixture();
        let poi_id = first_attraction(&f);
        let mut member = MemberInteractions::new(f.group.members()[0].user_id);
        member.log.record_remove(poi_id);
        let refined = refine_batch(&f.profile, &[member.clone()], &f.catalog, &f.vectorizer);
        for (new, old) in refined
            .vector(Category::Attraction)
            .iter()
            .zip(f.profile.vector(Category::Attraction))
        {
            assert!(*new <= *old + 1e-12);
            assert!(*new >= 0.0);
        }
        // Removing the same POI many times can push components to exactly 0
        // but never negative.
        let many = vec![member; 10];
        let refined = refine_batch(&f.profile, &many, &f.catalog, &f.vectorizer);
        assert!(refined
            .vector(Category::Attraction)
            .iter()
            .all(|&v| v >= 0.0));
    }

    #[test]
    fn unknown_poi_ids_are_ignored() {
        let f = fixture();
        let mut member = MemberInteractions::new(1);
        member.log.record_add(PoiId(9_999_999));
        let refined = refine_batch(&f.profile, &[member], &f.catalog, &f.vectorizer);
        assert_eq!(refined, f.profile);
    }

    #[test]
    fn individual_strategy_only_touches_interacting_members() {
        let f = fixture();
        let interacting = f.group.members()[0].user_id;
        let poi_id = first_attraction(&f);
        let mut member = MemberInteractions::new(interacting);
        member.log.record_add(poi_id);

        let (refined_group, refined_profile) = refine_individual(
            &f.group,
            ConsensusMethod::average_preference(),
            &[member],
            &f.catalog,
            &f.vectorizer,
        );
        assert_eq!(refined_group.size(), f.group.size());
        // Non-interacting members are unchanged.
        for (orig, refined) in f.group.members()[1..]
            .iter()
            .zip(&refined_group.members()[1..])
        {
            assert_eq!(orig, refined);
        }
        // The interacting member changed.
        assert_ne!(f.group.members()[0], refined_group.members()[0]);
        // And the aggregated profile moved as well.
        assert_ne!(
            refined_profile.vector(Category::Attraction),
            f.profile.vector(Category::Attraction)
        );
    }

    #[test]
    fn batch_and_individual_generally_differ() {
        let f = fixture();
        let poi_id = first_attraction(&f);
        let mut member = MemberInteractions::new(f.group.members()[0].user_id);
        member.log.record_add(poi_id);
        let batch = refine_batch(&f.profile, &[member.clone()], &f.catalog, &f.vectorizer);
        let (_, individual) = refine_individual(
            &f.group,
            ConsensusMethod::average_preference(),
            &[member],
            &f.catalog,
            &f.vectorizer,
        );
        // Batch applies the full item vector to the group profile; individual
        // dilutes it through one member out of five, so the two profiles
        // should not coincide on the attraction vector.
        assert_ne!(
            batch.vector(Category::Attraction),
            individual.vector(Category::Attraction)
        );
    }

    #[test]
    fn strategy_names_match_the_paper() {
        assert_eq!(RefinementStrategy::Batch.name(), "batch");
        assert_eq!(RefinementStrategy::Individual.name(), "individual");
    }
}
