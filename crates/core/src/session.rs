//! The high-level GroupTravel facade (Figure 2).
//!
//! A [`GroupTravelSession`] owns one city's catalog and the item vectorizer
//! trained on it, and exposes the complete flow of the framework: build a
//! personalized package for a group profile, display baselines, apply
//! customization operators, and refine group profiles from the recorded
//! interactions so the next package (possibly in another city) is better.

use crate::builder::{BruteForceCandidates, BuildConfig, CandidateProvider, PackageBuilder};
use crate::composite::CompositeItem;
use crate::customize::{CustomizationOp, InteractionLog};
use crate::error::GroupTravelError;
use crate::items::ItemVectorizer;
use crate::metrics::OptimizationDimensions;
use crate::objective::ObjectiveWeights;
use crate::package::TravelPackage;
use crate::query::GroupQuery;
use grouptravel_dataset::{Category, Poi, PoiCatalog, PoiId};
use grouptravel_geo::DistanceMetric;
use grouptravel_profile::{GroupProfile, ProfileSchema};
use grouptravel_topics::LdaConfig;
use serde::{Deserialize, Serialize};

/// Configuration of a session: how the item vectorizer is trained and which
/// distance metric the session uses throughout.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// LDA configuration for the restaurant/attraction topic models.
    pub lda: LdaConfig,
    /// Distance metric used by builds, metrics and recommendations.
    pub metric: DistanceMetric,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            lda: LdaConfig {
                iterations: 80,
                ..LdaConfig::default()
            },
            metric: DistanceMetric::Equirectangular,
        }
    }
}

/// The system's recommendation for `REPLACE(poi, CI)` against a bare
/// catalog: the geographically closest POI of the same category that is not
/// already in the composite item.
///
/// This is the replay entry point shared by
/// [`GroupTravelSession::suggest_replacement`] and the serving engine's
/// interactive path — both routes call this exact function, so a suggestion
/// computed through either is provably the same POI.
#[must_use]
pub fn suggest_replacement_in<'c>(
    catalog: &'c PoiCatalog,
    metric: DistanceMetric,
    package: &TravelPackage,
    ci_index: usize,
    poi: PoiId,
) -> Option<&'c Poi> {
    let ci = package.get(ci_index)?;
    let current = catalog.get(poi)?;
    let mut exclude: Vec<PoiId> = ci.poi_ids().to_vec();
    if !exclude.contains(&poi) {
        exclude.push(poi);
    }
    catalog.nearest_in_category(&current.location, current.category, metric, &exclude)
}

/// Applies one customization operation to `package` against a bare
/// `(catalog, vectorizer, metric)` triple, returning the log of POIs that
/// entered and left the package.
///
/// This is the replay entry point shared by [`GroupTravelSession::apply`]
/// and the serving engine's interactive sessions: both routes execute this
/// exact function, which is what makes the engine path provably
/// bit-identical to a one-shot replay of the same operations.
///
/// `provider` supplies the candidate pool `GENERATE` assembles its new
/// composite item from: [`BruteForceCandidates`] gives the paper's
/// exhaustive behavior (what [`GroupTravelSession::apply`] passes), the
/// serving engine plugs in its grid-backed provider so a `GENERATE` scores
/// POIs near the rectangle's centre instead of whole categories. `REPLACE`
/// always resolves through the catalog's exact nearest-neighbour index, so
/// it is identical under every provider.
///
/// # Errors
/// [`GroupTravelError::InvalidOperation`] when the operation does not apply
/// to the package (bad composite-item index, POI not present, no
/// replacement available, or an empty `GENERATE` rectangle). On error the
/// package is untouched.
#[allow(clippy::too_many_arguments)]
pub fn apply_op(
    catalog: &PoiCatalog,
    vectorizer: &ItemVectorizer,
    metric: DistanceMetric,
    provider: &dyn CandidateProvider,
    package: &mut TravelPackage,
    op: &CustomizationOp,
    profile: &GroupProfile,
    query: &GroupQuery,
    weights: &ObjectiveWeights,
) -> Result<InteractionLog, GroupTravelError> {
    let mut log = InteractionLog::new();
    match op {
        CustomizationOp::Remove { ci_index, poi } => {
            let ci = package.get_mut(*ci_index).ok_or_else(|| {
                GroupTravelError::InvalidOperation(format!(
                    "composite item {ci_index} does not exist"
                ))
            })?;
            if !ci.remove(*poi) {
                return Err(GroupTravelError::InvalidOperation(format!(
                    "{poi} is not part of composite item {ci_index}"
                )));
            }
            log.record_remove(*poi);
        }
        CustomizationOp::Add { ci_index, poi } => {
            if catalog.get(*poi).is_none() {
                return Err(GroupTravelError::InvalidOperation(format!(
                    "{poi} does not exist in the catalog"
                )));
            }
            let ci = package.get_mut(*ci_index).ok_or_else(|| {
                GroupTravelError::InvalidOperation(format!(
                    "composite item {ci_index} does not exist"
                ))
            })?;
            if ci.add(*poi) {
                log.record_add(*poi);
            }
        }
        CustomizationOp::Replace { ci_index, poi } => {
            let replacement = suggest_replacement_in(catalog, metric, package, *ci_index, *poi)
                .map(|p| p.id)
                .ok_or_else(|| {
                    GroupTravelError::InvalidOperation(format!(
                        "no replacement available for {poi} in composite item {ci_index}"
                    ))
                })?;
            let ci = package.get_mut(*ci_index).ok_or_else(|| {
                GroupTravelError::InvalidOperation(format!(
                    "composite item {ci_index} does not exist"
                ))
            })?;
            if !ci.replace(*poi, replacement) {
                return Err(GroupTravelError::InvalidOperation(format!(
                    "{poi} is not part of composite item {ci_index}"
                )));
            }
            log.record_remove(*poi);
            log.record_add(replacement);
        }
        CustomizationOp::Generate { rectangle } => {
            let normalizer = catalog.distance_normalizer(metric);
            let ci = PackageBuilder::new(catalog, vectorizer).assemble_ci_with(
                provider,
                rectangle.center(),
                profile,
                query,
                &weights.sanitized(),
                &normalizer,
            );
            if ci.is_empty() {
                return Err(GroupTravelError::InvalidOperation(
                    "the rectangle produced an empty composite item".to_string(),
                ));
            }
            for &id in ci.poi_ids() {
                log.record_add(id);
            }
            package.push(ci);
        }
        CustomizationOp::DeleteCi { ci_index } => {
            let removed: CompositeItem = package.remove(*ci_index).ok_or_else(|| {
                GroupTravelError::InvalidOperation(format!(
                    "composite item {ci_index} does not exist"
                ))
            })?;
            for &id in removed.poi_ids() {
                log.record_remove(id);
            }
        }
    }
    Ok(log)
}

/// A session over one city.
#[derive(Debug, Clone)]
pub struct GroupTravelSession {
    catalog: PoiCatalog,
    vectorizer: ItemVectorizer,
    metric: DistanceMetric,
}

impl GroupTravelSession {
    /// Creates a session: trains the topic models and wires the vectorizer.
    pub fn new(catalog: PoiCatalog, config: SessionConfig) -> Result<Self, GroupTravelError> {
        if catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        let vectorizer = ItemVectorizer::fit(&catalog, config.lda)?;
        Ok(Self {
            catalog,
            vectorizer,
            metric: config.metric,
        })
    }

    /// Creates a session over `catalog` that reuses an already-trained item
    /// vectorizer (typically trained on another city).
    ///
    /// This is how the customization experiment transfers a refined group
    /// profile from Paris to Barcelona (§4.4.4): both sessions must share the
    /// same profile schema — i.e. the same type vocabularies and topic
    /// models — for the profile to be meaningful in the second city. Item
    /// vectors for POIs the vectorizer has never seen are folded in from
    /// their tags.
    pub fn with_vectorizer(
        catalog: PoiCatalog,
        vectorizer: ItemVectorizer,
        metric: DistanceMetric,
    ) -> Result<Self, GroupTravelError> {
        if catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        Ok(Self {
            catalog,
            vectorizer,
            metric,
        })
    }

    /// The catalog this session serves.
    #[must_use]
    pub fn catalog(&self) -> &PoiCatalog {
        &self.catalog
    }

    /// The item vectorizer (exposes topic labels and type names for profile
    /// elicitation).
    #[must_use]
    pub fn vectorizer(&self) -> &ItemVectorizer {
        &self.vectorizer
    }

    /// The distance metric used by this session.
    #[must_use]
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The profile schema user/group profiles must use with this session.
    #[must_use]
    pub fn profile_schema(&self) -> ProfileSchema {
        self.vectorizer.schema()
    }

    fn builder(&self) -> PackageBuilder<'_> {
        PackageBuilder::new(&self.catalog, &self.vectorizer)
    }

    /// Builds a personalized travel package for `profile`.
    pub fn build_package(
        &self,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<TravelPackage, GroupTravelError> {
        let config = BuildConfig {
            metric: self.metric,
            ..*config
        };
        self.builder().build(profile, query, &config)
    }

    /// Builds the non-personalized baseline (γ = 0).
    pub fn build_non_personalized(
        &self,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> Result<TravelPackage, GroupTravelError> {
        let config = BuildConfig {
            metric: self.metric,
            ..*config
        };
        self.builder()
            .build_non_personalized(profile, query, &config)
    }

    /// Builds the random attention-check package of the user study.
    pub fn build_random(
        &self,
        query: &GroupQuery,
        k: usize,
        seed: u64,
    ) -> Result<TravelPackage, GroupTravelError> {
        self.builder().build_random(query, k, seed)
    }

    /// Measures the optimization dimensions of a package for a profile.
    #[must_use]
    pub fn measure(
        &self,
        package: &TravelPackage,
        profile: &GroupProfile,
    ) -> OptimizationDimensions {
        OptimizationDimensions::measure(
            package,
            &self.catalog,
            &self.vectorizer,
            profile,
            self.metric,
        )
    }

    /// The system's recommendation for `REPLACE(poi, CI)`: the geographically
    /// closest POI of the same category that is not already in the composite
    /// item.
    #[must_use]
    pub fn suggest_replacement(
        &self,
        package: &TravelPackage,
        ci_index: usize,
        poi: PoiId,
    ) -> Option<&Poi> {
        suggest_replacement_in(&self.catalog, self.metric, package, ci_index, poi)
    }

    /// Candidate POIs for `ADD`: the `k` closest POIs of `category` to the
    /// composite item's centroid, optionally filtered by type, excluding POIs
    /// already in the CI (§3.3's "closest items to CI satisfying the user
    /// filter").
    ///
    /// Served by the catalog's spatial grid with the type filter applied
    /// *inside* the ring-bounded search, so only `k` POIs are ever ranked —
    /// never the whole category.
    #[must_use]
    pub fn add_candidates(
        &self,
        package: &TravelPackage,
        ci_index: usize,
        category: Category,
        type_filter: Option<&str>,
        k: usize,
    ) -> Vec<&Poi> {
        let Some(ci) = package.get(ci_index) else {
            return Vec::new();
        };
        let Some(centroid) = ci.centroid(&self.catalog) else {
            return Vec::new();
        };
        let exclude: Vec<PoiId> = ci.poi_ids().to_vec();
        self.catalog.k_nearest_in_category_where(
            &centroid,
            category,
            k,
            self.metric,
            &exclude,
            |p| type_filter.is_none_or(|filter| p.poi_type == filter),
        )
    }

    /// Applies one customization operation to `package`, returning the log of
    /// POIs that entered and left the package (the implicit feedback used for
    /// refinement).
    ///
    /// `GENERATE` assembles a new valid, cohesive composite item centred in
    /// the rectangle, using the group profile for personalization. The
    /// candidate pool is exhaustive ([`BruteForceCandidates`]) — the paper's
    /// reference behavior the engine's grid-backed path is tested against.
    pub fn apply(
        &self,
        package: &mut TravelPackage,
        op: &CustomizationOp,
        profile: &GroupProfile,
        query: &GroupQuery,
        weights: &ObjectiveWeights,
    ) -> Result<InteractionLog, GroupTravelError> {
        apply_op(
            &self.catalog,
            &self.vectorizer,
            self.metric,
            &BruteForceCandidates,
            package,
            op,
            profile,
            query,
            weights,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_geo::Rectangle;
    use grouptravel_profile::{ConsensusMethod, GroupSize, SyntheticGroupGenerator, Uniformity};

    struct Fixture {
        session: GroupTravelSession,
        profile: GroupProfile,
        query: GroupQuery,
        package: TravelPackage,
    }

    fn fixture() -> Fixture {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(71))
                .generate();
        let session = GroupTravelSession::new(
            catalog,
            SessionConfig {
                lda: LdaConfig {
                    iterations: 40,
                    ..LdaConfig::default()
                },
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let mut gen = SyntheticGroupGenerator::new(session.profile_schema(), 5);
        let profile = gen
            .group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::pairwise_disagreement());
        let query = GroupQuery::paper_default();
        let package = session
            .build_package(&profile, &query, &BuildConfig::default())
            .unwrap();
        Fixture {
            session,
            profile,
            query,
            package,
        }
    }

    #[test]
    fn session_creation_fails_on_an_empty_catalog() {
        let err =
            GroupTravelSession::new(PoiCatalog::new("Empty", vec![]), SessionConfig::default())
                .unwrap_err();
        assert_eq!(err, GroupTravelError::EmptyCatalog);
    }

    #[test]
    fn end_to_end_build_and_measure() {
        let f = fixture();
        assert_eq!(f.package.len(), 5);
        assert!(f.package.is_valid(f.session.catalog(), &f.query));
        let dims = f.session.measure(&f.package, &f.profile);
        assert!(dims.representativity > 0.0);
        assert!(dims.personalization > 0.0);
    }

    #[test]
    fn remove_and_add_round_trip() {
        let mut f = fixture();
        let victim = f.package.get(0).unwrap().poi_ids()[0];
        let weights = ObjectiveWeights::default();
        let log = f
            .session
            .apply(
                &mut f.package,
                &CustomizationOp::Remove {
                    ci_index: 0,
                    poi: victim,
                },
                &f.profile,
                &f.query,
                &weights,
            )
            .unwrap();
        assert_eq!(log.removed, vec![victim]);
        assert!(!f.package.get(0).unwrap().contains(victim));

        let log = f
            .session
            .apply(
                &mut f.package,
                &CustomizationOp::Add {
                    ci_index: 0,
                    poi: victim,
                },
                &f.profile,
                &f.query,
                &weights,
            )
            .unwrap();
        assert_eq!(log.added, vec![victim]);
        assert!(f.package.get(0).unwrap().contains(victim));
    }

    #[test]
    fn replace_swaps_in_a_same_category_neighbour() {
        let mut f = fixture();
        let victim = f.package.get(0).unwrap().poi_ids()[0];
        let victim_category = f.session.catalog().get(victim).unwrap().category;
        let weights = ObjectiveWeights::default();
        let log = f
            .session
            .apply(
                &mut f.package,
                &CustomizationOp::Replace {
                    ci_index: 0,
                    poi: victim,
                },
                &f.profile,
                &f.query,
                &weights,
            )
            .unwrap();
        assert_eq!(log.removed, vec![victim]);
        assert_eq!(log.added.len(), 1);
        let replacement = log.added[0];
        assert_ne!(replacement, victim);
        assert_eq!(
            f.session.catalog().get(replacement).unwrap().category,
            victim_category
        );
        assert!(f.package.get(0).unwrap().contains(replacement));
    }

    #[test]
    fn generate_adds_a_valid_cohesive_ci_inside_the_rectangle_area() {
        let mut f = fixture();
        let bbox = f.session.catalog().bounding_box().unwrap();
        let rect = Rectangle::new(bbox.min_lon, bbox.max_lat, bbox.lon_span(), bbox.lat_span());
        let weights = ObjectiveWeights::default();
        let before = f.package.len();
        let log = f
            .session
            .apply(
                &mut f.package,
                &CustomizationOp::Generate { rectangle: rect },
                &f.profile,
                &f.query,
                &weights,
            )
            .unwrap();
        assert_eq!(f.package.len(), before + 1);
        let new_ci = f.package.get(before).unwrap();
        assert!(new_ci.is_valid(f.session.catalog(), &f.query));
        assert_eq!(log.added.len(), new_ci.len());
    }

    #[test]
    fn delete_ci_logs_every_removed_poi() {
        let mut f = fixture();
        let doomed: Vec<PoiId> = f.package.get(2).unwrap().poi_ids().to_vec();
        let weights = ObjectiveWeights::default();
        let log = f
            .session
            .apply(
                &mut f.package,
                &CustomizationOp::DeleteCi { ci_index: 2 },
                &f.profile,
                &f.query,
                &weights,
            )
            .unwrap();
        assert_eq!(log.removed, doomed);
        assert_eq!(f.package.len(), 4);
    }

    #[test]
    fn invalid_operations_are_rejected() {
        let mut f = fixture();
        let weights = ObjectiveWeights::default();
        let bad_ci = f.session.apply(
            &mut f.package,
            &CustomizationOp::Remove {
                ci_index: 99,
                poi: PoiId(1),
            },
            &f.profile,
            &f.query,
            &weights,
        );
        assert!(matches!(bad_ci, Err(GroupTravelError::InvalidOperation(_))));
        let bad_poi = f.session.apply(
            &mut f.package,
            &CustomizationOp::Add {
                ci_index: 0,
                poi: PoiId(123_456),
            },
            &f.profile,
            &f.query,
            &weights,
        );
        assert!(matches!(
            bad_poi,
            Err(GroupTravelError::InvalidOperation(_))
        ));
        let not_in_ci = f.session.apply(
            &mut f.package,
            &CustomizationOp::Remove {
                ci_index: 0,
                poi: PoiId(123_456),
            },
            &f.profile,
            &f.query,
            &weights,
        );
        assert!(matches!(
            not_in_ci,
            Err(GroupTravelError::InvalidOperation(_))
        ));
    }

    #[test]
    fn add_candidates_respect_category_filter_and_exclusion() {
        let f = fixture();
        let candidates = f
            .session
            .add_candidates(&f.package, 0, Category::Attraction, None, 5);
        assert!(!candidates.is_empty());
        assert!(candidates.len() <= 5);
        let ci = f.package.get(0).unwrap();
        for c in &candidates {
            assert_eq!(c.category, Category::Attraction);
            assert!(!ci.contains(c.id));
        }
        // Type filter keeps only matching types.
        let filter_type = candidates[0].poi_type.clone();
        let filtered =
            f.session
                .add_candidates(&f.package, 0, Category::Attraction, Some(&filter_type), 5);
        assert!(filtered.iter().all(|p| p.poi_type == filter_type));
        // Out-of-range CI index yields nothing.
        assert!(f
            .session
            .add_candidates(&f.package, 42, Category::Attraction, None, 5)
            .is_empty());
    }

    #[test]
    fn suggest_replacement_is_the_nearest_same_category_poi() {
        let f = fixture();
        let victim = f.package.get(0).unwrap().poi_ids()[0];
        let victim_poi = f.session.catalog().get(victim).unwrap();
        let suggestion = f
            .session
            .suggest_replacement(&f.package, 0, victim)
            .unwrap();
        assert_eq!(suggestion.category, victim_poi.category);
        assert_ne!(suggestion.id, victim);
        assert!(!f.package.get(0).unwrap().contains(suggestion.id));
    }
}
