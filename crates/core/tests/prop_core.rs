//! Property-based tests for the core data structures: queries, composite
//! items, packages and the interaction bookkeeping. These are pure
//! data-structure invariants, so they run without building catalogs or topic
//! models.

use grouptravel::{CompositeItem, GroupQuery, InteractionLog, ObjectiveWeights, TravelPackage};
use grouptravel_dataset::sample::table1_pois;
use grouptravel_dataset::{Category, PoiCatalog, PoiId};
use proptest::prelude::*;

fn small_ids() -> impl Strategy<Value = Vec<PoiId>> {
    prop::collection::vec((1u64..20).prop_map(PoiId), 0..15)
}

proptest! {
    #[test]
    fn composite_items_never_hold_duplicates(ids in small_ids(), extra in 1u64..20) {
        let mut ci = CompositeItem::new(ids.clone());
        let mut unique = ids.clone();
        unique.dedup_by(|a, b| a == b); // adjacent only; real check below
        // No duplicates regardless of the input order.
        let mut seen = std::collections::HashSet::new();
        for id in ci.poi_ids() {
            prop_assert!(seen.insert(*id), "duplicate {id} survived");
        }
        // add is idempotent.
        let extra = PoiId(extra);
        ci.add(extra);
        let len_after_first = ci.len();
        ci.add(extra);
        prop_assert_eq!(ci.len(), len_after_first);
        // remove really removes.
        ci.remove(extra);
        prop_assert!(!ci.contains(extra));
    }

    #[test]
    fn replace_preserves_the_item_count_or_shrinks_by_one(ids in small_ids(), new_id in 100u64..120) {
        prop_assume!(!ids.is_empty());
        let mut ci = CompositeItem::new(ids.clone());
        let before = ci.len();
        let old = ci.poi_ids()[0];
        let replaced = ci.replace(old, PoiId(new_id));
        prop_assert!(replaced);
        prop_assert!(ci.len() == before || ci.len() == before - 1);
        prop_assert!(!ci.contains(old) || old == PoiId(new_id));
        prop_assert!(ci.contains(PoiId(new_id)));
    }

    #[test]
    fn query_budget_acceptance_is_monotone(counts in prop::collection::vec(0usize..4, 4), budget in 0.0f64..100.0, cost in 0.0f64..200.0) {
        let query = GroupQuery::new([counts[0], counts[1], counts[2], counts[3]], Some(budget));
        if query.within_budget(cost) {
            // Any cheaper total is also within budget.
            prop_assert!(query.within_budget(cost * 0.5));
        }
        // The unlimited query accepts everything.
        let unlimited = GroupQuery::new([1, 1, 1, 1], None);
        prop_assert!(unlimited.within_budget(cost * 1e6));
        prop_assert_eq!(query.total_pois(), counts.iter().sum::<usize>());
    }

    #[test]
    fn package_distinct_ids_are_a_subset_of_all_ids(groups in prop::collection::vec(small_ids(), 0..6)) {
        let package = TravelPackage::new(groups.iter().cloned().map(CompositeItem::new).collect());
        let all = package.all_poi_ids();
        let distinct = package.distinct_poi_ids();
        prop_assert!(distinct.len() <= all.len());
        for id in &distinct {
            prop_assert!(all.contains(id));
        }
        // distinct ids are sorted and unique.
        let mut sorted = distinct.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted, distinct);
    }

    #[test]
    fn validity_against_table1_requires_exact_counts(take in prop::collection::vec(any::<bool>(), 4)) {
        let catalog = PoiCatalog::new("Paris", table1_pois());
        let ids: Vec<PoiId> = table1_pois()
            .iter()
            .zip(&take)
            .filter(|(_, &t)| t)
            .map(|(p, _)| p.id)
            .collect();
        let ci = CompositeItem::new(ids.clone());
        let query = GroupQuery::new([1, 1, 1, 1], None);
        let expected_valid = take.iter().all(|&t| t);
        prop_assert_eq!(ci.is_valid(&catalog, &query), expected_valid);
        // Category counts always sum to the number of resolved POIs.
        let counts = ci.category_counts(&catalog);
        prop_assert_eq!(counts.iter().sum::<usize>(), ids.len());
        for cat in Category::ALL {
            prop_assert!(counts[cat.index()] <= 1);
        }
    }

    #[test]
    fn interaction_log_merge_is_associative_in_size(
        a_adds in prop::collection::vec(1u64..50, 0..10),
        b_removes in prop::collection::vec(1u64..50, 0..10),
    ) {
        let mut a = InteractionLog::new();
        for id in &a_adds {
            a.record_add(PoiId(*id));
        }
        let mut b = InteractionLog::new();
        for id in &b_removes {
            b.record_remove(PoiId(*id));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        prop_assert_eq!(merged.added.len(), a_adds.len());
        prop_assert_eq!(merged.removed.len(), b_removes.len());
    }

    #[test]
    fn objective_weights_sanitize_into_valid_ranges(alpha in -2.0f64..3.0, beta in -2.0f64..3.0, gamma in -2.0f64..3.0, fuzz in -1.0f64..5.0) {
        let w = ObjectiveWeights { alpha, beta, gamma, fuzzifier: fuzz }.sanitized();
        prop_assert!((0.0..=1.0).contains(&w.alpha));
        prop_assert!((0.0..=1.0).contains(&w.beta));
        prop_assert!((0.0..=1.0).contains(&w.gamma));
        prop_assert!(w.fuzzifier > 1.0);
        // The item score is monotone in both inputs for sanitized weights.
        let low = w.item_score(0.2, 0.2);
        let high = w.item_score(0.8, 0.8);
        prop_assert!(high >= low - 1e-12);
    }
}
