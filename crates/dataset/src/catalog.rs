//! Indexed, queryable POI collections.
//!
//! The package builder and the customization operators repeatedly need to
//! answer questions such as "all restaurants", "the nearest attraction to
//! this point", "every POI inside this rectangle of the map", or "the maximum
//! pairwise distance in the city" (used to normalize distances in Eq. 1).
//! [`PoiCatalog`] pre-indexes POIs by category and id, and lazily attaches a
//! per-category spatial grid ([`crate::spatial::SpatialIndex`]) the first
//! time a nearest-neighbour question is asked. Grid answers are **exact** —
//! bit-identical to a linear scan, ties broken by catalog position — so
//! routing the hot paths through the grid never changes results, only their
//! cost: O(cells touched + k) instead of O(category) per query. Categories
//! small enough that a scan beats the grid's ring bookkeeping stay on a
//! select-k brute-force path with the same tie-breaking.

use crate::category::Category;
use crate::poi::{Poi, PoiId};
use crate::spatial::SpatialIndex;
use grouptravel_geo::{BoundingBox, DistanceMetric, DistanceNormalizer, GeoPoint};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Categories at or below this size answer nearest-neighbour queries with a
/// select-k scan instead of the grid: the ring machinery only pays for
/// itself once a scan has enough points to lose to.
const BRUTE_FORCE_CATEGORY_MAX: usize = 16;

/// An immutable collection of POIs for one city, indexed by category and id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoiCatalog {
    city: String,
    pois: Vec<Poi>,
    #[serde(skip)]
    by_category: HashMap<Category, Vec<usize>>,
    #[serde(skip)]
    by_id: HashMap<PoiId, usize>,
    /// Per-category spatial grids, built on first spatial query (or primed
    /// by the serving engine at registration) and shared by all clones made
    /// afterwards. Never serialized; deserialization starts cold.
    #[serde(skip)]
    spatial: OnceLock<Arc<SpatialIndex>>,
}

impl PartialEq for PoiCatalog {
    fn eq(&self, other: &Self) -> bool {
        self.city == other.city && self.pois == other.pois
    }
}

impl PoiCatalog {
    /// Builds a catalog from a list of POIs. Duplicate ids keep the first
    /// occurrence in the id index (later duplicates remain iterable).
    #[must_use]
    pub fn new(city: impl Into<String>, pois: Vec<Poi>) -> Self {
        let mut catalog = Self {
            city: city.into(),
            pois,
            by_category: HashMap::new(),
            by_id: HashMap::new(),
            spatial: OnceLock::new(),
        };
        catalog.rebuild_indexes();
        catalog
    }

    /// Rebuilds the internal indexes; called after deserialization. Any
    /// lazily-built spatial index is dropped (it would describe the old
    /// contents) and rebuilt on the next spatial query.
    pub fn rebuild_indexes(&mut self) {
        self.by_category.clear();
        self.by_id.clear();
        self.spatial = OnceLock::new();
        for (idx, poi) in self.pois.iter().enumerate() {
            self.by_category.entry(poi.category).or_default().push(idx);
            self.by_id.entry(poi.id).or_insert(idx);
        }
    }

    /// The per-category spatial index, built on first use and cached for
    /// the catalog's lifetime (clones taken afterwards share it). The
    /// serving engine calls this once at registration so no request ever
    /// pays the O(n) build.
    #[must_use]
    pub fn spatial(&self) -> &SpatialIndex {
        self.spatial
            .get_or_init(|| Arc::new(SpatialIndex::build(&self.pois)))
    }

    /// Whether the per-category spatial index has already been built (at
    /// registration or by an earlier spatial query). A freshly deserialized
    /// catalog starts unprimed; the serving engine asserts priming on the
    /// paths that must never pay the O(n) build inside a request.
    #[must_use]
    pub fn spatial_primed(&self) -> bool {
        self.spatial.get().is_some()
    }

    /// The city name.
    #[must_use]
    pub fn city(&self) -> &str {
        &self.city
    }

    /// Number of POIs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// Whether the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// All POIs in insertion order.
    #[must_use]
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// The POI with the given id, if any.
    #[must_use]
    pub fn get(&self, id: PoiId) -> Option<&Poi> {
        self.by_id.get(&id).map(|&idx| &self.pois[idx])
    }

    /// All POIs of a category.
    #[must_use]
    pub fn by_category(&self, category: Category) -> Vec<&Poi> {
        self.by_category
            .get(&category)
            .map(|idxs| idxs.iter().map(|&i| &self.pois[i]).collect())
            .unwrap_or_default()
    }

    /// Number of POIs of a category.
    #[must_use]
    pub fn count_category(&self, category: Category) -> usize {
        self.by_category.get(&category).map_or(0, Vec::len)
    }

    /// POIs of a category with a given type.
    #[must_use]
    pub fn by_category_and_type(&self, category: Category, poi_type: &str) -> Vec<&Poi> {
        self.by_category(category)
            .into_iter()
            .filter(|p| p.poi_type == poi_type)
            .collect()
    }

    /// All POIs inside a bounding box.
    #[must_use]
    pub fn within(&self, bbox: &BoundingBox) -> Vec<&Poi> {
        self.pois
            .iter()
            .filter(|p| bbox.contains(&p.location))
            .collect()
    }

    /// All POIs of a category inside a bounding box.
    #[must_use]
    pub fn within_category(&self, bbox: &BoundingBox, category: Category) -> Vec<&Poi> {
        self.by_category(category)
            .into_iter()
            .filter(|p| bbox.contains(&p.location))
            .collect()
    }

    /// The POI of `category` nearest to `point`, excluding ids in `exclude`.
    /// Distance ties resolve to the lower catalog position.
    #[must_use]
    pub fn nearest_in_category(
        &self,
        point: &GeoPoint,
        category: Category,
        metric: DistanceMetric,
        exclude: &[PoiId],
    ) -> Option<&Poi> {
        self.k_nearest_in_category(point, category, 1, metric, exclude)
            .into_iter()
            .next()
    }

    /// The `k` POIs of `category` nearest to `point`, sorted by
    /// `(distance, catalog position)` ascending, excluding ids in `exclude`.
    ///
    /// Served by the per-category spatial grid (ring-bounded exact k-NN);
    /// categories of at most [`BRUTE_FORCE_CATEGORY_MAX`] POIs — or requests
    /// for the whole category — use a select-k scan instead. Both paths
    /// return the identical ranking.
    #[must_use]
    pub fn k_nearest_in_category(
        &self,
        point: &GeoPoint,
        category: Category,
        k: usize,
        metric: DistanceMetric,
        exclude: &[PoiId],
    ) -> Vec<&Poi> {
        self.k_nearest_in_category_where(point, category, k, metric, exclude, |_| true)
    }

    /// [`PoiCatalog::k_nearest_in_category`] restricted to POIs accepted by
    /// `accept`: the exact `k` nearest of the category that pass the filter
    /// (e.g. a type filter for `ADD` candidates), in the same
    /// `(distance, catalog position)` order.
    ///
    /// Filtering happens *inside* the grid search, so a selective filter
    /// keeps the ring-bound termination tight instead of forcing a post-hoc
    /// truncation of an over-fetched pool.
    #[must_use]
    pub fn k_nearest_in_category_where(
        &self,
        point: &GeoPoint,
        category: Category,
        k: usize,
        metric: DistanceMetric,
        exclude: &[PoiId],
        mut accept: impl FnMut(&Poi) -> bool,
    ) -> Vec<&Poi> {
        if k == 0 {
            return Vec::new();
        }
        let Some(positions) = self.by_category.get(&category) else {
            return Vec::new();
        };
        // Exclusion lists are small (a composite item's worth of ids); a
        // sorted slice gives O(log m) membership without hashing overhead.
        let mut excluded: Vec<PoiId> = exclude.to_vec();
        excluded.sort_unstable();
        let eligible = |poi: &Poi| excluded.binary_search(&poi.id).is_err();

        if positions.len() <= BRUTE_FORCE_CATEGORY_MAX || k >= positions.len() {
            // Select-k scan: O(n) selection plus an O(k log k) sort of the
            // winners, never a full-category sort.
            let mut scored: Vec<(f64, usize)> = positions
                .iter()
                .filter(|&&pos| {
                    let poi = &self.pois[pos];
                    eligible(poi) && accept(poi)
                })
                .map(|&pos| (metric.distance_km(point, &self.pois[pos].location), pos))
                .collect();
            let cmp = |a: &(f64, usize), b: &(f64, usize)| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            };
            let k = k.min(scored.len());
            if k == 0 {
                return Vec::new();
            }
            if k < scored.len() {
                scored.select_nth_unstable_by(k - 1, cmp);
                scored.truncate(k);
            }
            scored.sort_unstable_by(cmp);
            scored.into_iter().map(|(_, pos)| &self.pois[pos]).collect()
        } else {
            let grid = self
                .spatial()
                .category(category)
                .expect("spatial index covers every category");
            grid.k_nearest(point, k, metric, |pos| {
                let poi = &self.pois[pos];
                eligible(poi) && accept(poi)
            })
            .into_iter()
            .map(|pos| &self.pois[pos])
            .collect()
        }
    }

    /// The bounding box of all POIs, if the catalog is non-empty (one
    /// streaming pass; nothing is collected).
    #[must_use]
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::from_points_iter(self.pois.iter().map(|p| p.location))
    }

    /// Builds the distance normalizer the objective function uses: distances
    /// are divided by the largest observed pairwise distance in the catalog.
    ///
    /// To keep this O(n) instead of O(n²) for large catalogs, the maximum is
    /// taken over the bounding-box diagonal, which by construction is an
    /// upper bound within a small constant of the true maximum pairwise
    /// distance and preserves the `[0, 1]` guarantee.
    #[must_use]
    pub fn distance_normalizer(&self, metric: DistanceMetric) -> DistanceNormalizer {
        match self.bounding_box() {
            Some(bbox) => {
                let corner_a = GeoPoint::new_unchecked(bbox.min_lat, bbox.min_lon);
                let corner_b = GeoPoint::new_unchecked(bbox.max_lat, bbox.max_lon);
                DistanceNormalizer::with_scale(metric.distance_km(&corner_a, &corner_b), metric)
            }
            None => DistanceNormalizer::with_scale(1.0, metric),
        }
    }

    /// All locations (used by clustering).
    #[must_use]
    pub fn locations(&self) -> Vec<GeoPoint> {
        self.pois.iter().map(|p| p.location).collect()
    }

    /// A 64-bit content fingerprint of the catalog (FNV-1a over the city
    /// name and every POI's identity-relevant fields).
    ///
    /// Two catalogs with the same city, POIs, coordinates, types, tags and
    /// costs fingerprint identically; any content change almost surely
    /// changes the value. The serving engine keys its model caches on this,
    /// so cached fuzzy-c-means results and topic models are never reused
    /// across different catalog contents.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash = grouptravel_geo::Fnv1a::new();
        hash.write_str(&self.city);
        hash.write_u64(self.pois.len() as u64);
        for poi in &self.pois {
            hash.write_u64(poi.id.0);
            hash.write_str(&poi.name);
            hash.write(&[poi.category as u8]);
            hash.write_f64(poi.location.lat);
            hash.write_f64(poi.location.lon);
            hash.write_str(&poi.poi_type);
            hash.write_u64(poi.tags.len() as u64);
            for tag in &poi.tags {
                hash.write_str(tag);
            }
            hash.write_u64(poi.checkins);
            hash.write_f64(poi.cost);
        }
        hash.finish()
    }

    /// All distinct types present for a category, sorted.
    #[must_use]
    pub fn types_in_category(&self, category: Category) -> Vec<String> {
        let mut types: Vec<String> = self
            .by_category(category)
            .into_iter()
            .map(|p| p.poi_type.clone())
            .collect();
        types.sort();
        types.dedup();
        types
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::table1_pois;

    fn catalog() -> PoiCatalog {
        PoiCatalog::new("Paris", table1_pois())
    }

    #[test]
    fn len_and_city() {
        let c = catalog();
        assert_eq!(c.len(), 4);
        assert_eq!(c.city(), "Paris");
        assert!(!c.is_empty());
    }

    #[test]
    fn get_by_id() {
        let c = catalog();
        assert_eq!(c.get(PoiId(1)).unwrap().name, "Le Burgundy");
        assert!(c.get(PoiId(99)).is_none());
    }

    #[test]
    fn by_category_partitions_the_catalog() {
        let c = catalog();
        let total: usize = Category::ALL
            .iter()
            .map(|cat| c.by_category(*cat).len())
            .sum();
        assert_eq!(total, c.len());
        assert_eq!(c.count_category(Category::Restaurant), 1);
    }

    #[test]
    fn by_category_and_type_filters() {
        let c = catalog();
        let hotels = c.by_category_and_type(Category::Accommodation, "hotel");
        assert_eq!(hotels.len(), 1);
        assert!(c
            .by_category_and_type(Category::Accommodation, "hostel")
            .is_empty());
    }

    #[test]
    fn within_bbox() {
        let c = catalog();
        let bbox = BoundingBox::new(48.86, 48.87, 2.32, 2.34);
        let inside = c.within(&bbox);
        assert!(inside.iter().any(|p| p.name == "Le Burgundy"));
        assert!(inside.iter().all(|p| bbox.contains(&p.location)));
    }

    #[test]
    fn nearest_in_category_respects_exclusions() {
        let c = catalog();
        let origin = GeoPoint::new_unchecked(48.8679, 2.3256);
        let nearest = c
            .nearest_in_category(
                &origin,
                Category::Accommodation,
                DistanceMetric::Haversine,
                &[],
            )
            .unwrap();
        assert_eq!(nearest.id, PoiId(1));
        let nearest_excluding = c.nearest_in_category(
            &origin,
            Category::Accommodation,
            DistanceMetric::Haversine,
            &[PoiId(1)],
        );
        assert!(nearest_excluding.is_none());
    }

    #[test]
    fn k_nearest_is_sorted_by_distance() {
        let c = catalog();
        let origin = GeoPoint::new_unchecked(48.8679, 2.3256);
        let all = c.k_nearest_in_category(
            &origin,
            Category::Attraction,
            10,
            DistanceMetric::Haversine,
            &[],
        );
        assert_eq!(all.len(), 1);
        let none = c.k_nearest_in_category(
            &origin,
            Category::Attraction,
            0,
            DistanceMetric::Haversine,
            &[],
        );
        assert!(none.is_empty());
    }

    #[test]
    fn bounding_box_covers_all_pois() {
        let c = catalog();
        let bbox = c.bounding_box().unwrap();
        for p in c.pois() {
            assert!(bbox.contains(&p.location));
        }
        let empty = PoiCatalog::new("Empty", vec![]);
        assert!(empty.bounding_box().is_none());
    }

    #[test]
    fn distance_normalizer_scale_bounds_all_pairs() {
        let c = catalog();
        let norm = c.distance_normalizer(DistanceMetric::Equirectangular);
        for a in c.pois() {
            for b in c.pois() {
                assert!(norm.normalized(&a.location, &b.location) <= 1.0);
            }
        }
        let empty = PoiCatalog::new("Empty", vec![]);
        assert_eq!(
            empty
                .distance_normalizer(DistanceMetric::Equirectangular)
                .scale_km(),
            1.0
        );
    }

    #[test]
    fn types_in_category_are_sorted_and_unique() {
        let c = catalog();
        let types = c.types_in_category(Category::Accommodation);
        assert_eq!(types, vec!["hotel".to_string()]);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = catalog();
        let b = catalog();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let renamed = PoiCatalog::new("Lyon", table1_pois());
        assert_ne!(a.fingerprint(), renamed.fingerprint());

        let mut fewer = table1_pois();
        fewer.pop();
        assert_ne!(
            a.fingerprint(),
            PoiCatalog::new("Paris", fewer).fingerprint()
        );

        let mut tweaked = table1_pois();
        tweaked[0].cost += 0.25;
        assert_ne!(
            a.fingerprint(),
            PoiCatalog::new("Paris", tweaked).fingerprint()
        );
    }

    #[test]
    fn fingerprint_survives_serde_round_trip() {
        let c = catalog();
        let json = serde_json::to_string(&c).unwrap();
        let back: PoiCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fingerprint(), c.fingerprint());
    }

    #[test]
    fn serde_round_trip_rebuilds_indexes() {
        let c = catalog();
        let json = serde_json::to_string(&c).unwrap();
        let mut back: PoiCatalog = serde_json::from_str(&json).unwrap();
        back.rebuild_indexes();
        assert_eq!(back, c);
        assert_eq!(
            back.get(PoiId(3)).unwrap().name,
            c.get(PoiId(3)).unwrap().name
        );
    }
}
