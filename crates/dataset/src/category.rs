//! POI categories and per-category type vocabularies.
//!
//! TourPedia divides POIs into four categories (§2.1): accommodation,
//! transportation, restaurant and attraction. For accommodation and
//! transportation the *types* are "well-defined" (hotel, hostel, …; tram
//! station, bike rental, …) and item vectors are one-hot over the type
//! vocabulary; for restaurants and attractions types come from LDA topics
//! over tags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four POI categories used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Accommodation (`acco`): hotels, hostels, …
    Accommodation,
    /// Transportation (`trans`): tram stations, bike rentals, …
    Transportation,
    /// Restaurant (`rest`).
    Restaurant,
    /// Attraction (`attr`): museums, parks, monuments, …
    Attraction,
}

impl Category {
    /// All categories in the paper's canonical order.
    pub const ALL: [Category; 4] = [
        Category::Accommodation,
        Category::Transportation,
        Category::Restaurant,
        Category::Attraction,
    ];

    /// The paper's short name for the category (`acco`, `trans`, `rest`, `attr`).
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            Category::Accommodation => "acco",
            Category::Transportation => "trans",
            Category::Restaurant => "rest",
            Category::Attraction => "attr",
        }
    }

    /// Parses the paper's short name.
    #[must_use]
    pub fn from_short_name(name: &str) -> Option<Self> {
        match name {
            "acco" => Some(Category::Accommodation),
            "trans" => Some(Category::Transportation),
            "rest" => Some(Category::Restaurant),
            "attr" => Some(Category::Attraction),
            _ => None,
        }
    }

    /// Index of the category in [`Category::ALL`].
    #[must_use]
    pub fn index(&self) -> usize {
        match self {
            Category::Accommodation => 0,
            Category::Transportation => 1,
            Category::Restaurant => 2,
            Category::Attraction => 3,
        }
    }

    /// Whether item vectors for this category are one-hot over explicit types
    /// (accommodation, transportation) rather than LDA topic distributions
    /// (restaurant, attraction).
    #[must_use]
    pub fn has_explicit_types(&self) -> bool {
        matches!(self, Category::Accommodation | Category::Transportation)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A per-category list of POI types, defining the dimensionality of item
/// vectors and user-profile vectors for that category.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TypeVocabulary {
    category: Category,
    types: Vec<String>,
}

impl TypeVocabulary {
    /// Builds a vocabulary from a list of type names. Duplicates are removed,
    /// preserving first occurrence order.
    #[must_use]
    pub fn new<I, S>(category: Category, types: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut seen = Vec::new();
        for t in types {
            let t = t.into();
            if !seen.contains(&t) {
                seen.push(t);
            }
        }
        Self {
            category,
            types: seen,
        }
    }

    /// The default accommodation types used by the synthetic generator,
    /// mirroring the examples in §2.1–2.2.
    #[must_use]
    pub fn default_accommodation() -> Self {
        Self::new(
            Category::Accommodation,
            [
                "hotel",
                "hostel",
                "motel",
                "resort",
                "college residence hall",
                "bed and breakfast",
            ],
        )
    }

    /// The default transportation types.
    #[must_use]
    pub fn default_transportation() -> Self {
        Self::new(
            Category::Transportation,
            [
                "tram station",
                "train station",
                "metro station",
                "bus stop",
                "car rental",
                "bike rental",
            ],
        )
    }

    /// The category this vocabulary belongs to.
    #[must_use]
    pub fn category(&self) -> Category {
        self.category
    }

    /// Number of types, i.e. the dimensionality `n` of vectors for this
    /// category.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// The type names in index order.
    #[must_use]
    pub fn types(&self) -> &[String] {
        &self.types
    }

    /// Index of a type name, if present.
    #[must_use]
    pub fn index_of(&self, type_name: &str) -> Option<usize> {
        self.types.iter().position(|t| t == type_name)
    }

    /// Type name at `index`.
    #[must_use]
    pub fn name_of(&self, index: usize) -> Option<&str> {
        self.types.get(index).map(String::as_str)
    }

    /// One-hot vector for `type_name` (all zeros if the type is unknown).
    #[must_use]
    pub fn one_hot(&self, type_name: &str) -> Vec<f64> {
        let mut v = vec![0.0; self.types.len()];
        if let Some(i) = self.index_of(type_name) {
            v[i] = 1.0;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_round_trip() {
        for cat in Category::ALL {
            assert_eq!(Category::from_short_name(cat.short_name()), Some(cat));
        }
        assert_eq!(Category::from_short_name("bogus"), None);
    }

    #[test]
    fn indices_match_all_order() {
        for (i, cat) in Category::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
    }

    #[test]
    fn explicit_types_flag() {
        assert!(Category::Accommodation.has_explicit_types());
        assert!(Category::Transportation.has_explicit_types());
        assert!(!Category::Restaurant.has_explicit_types());
        assert!(!Category::Attraction.has_explicit_types());
    }

    #[test]
    fn display_uses_short_name() {
        assert_eq!(Category::Attraction.to_string(), "attr");
    }

    #[test]
    fn vocabulary_deduplicates_preserving_order() {
        let v = TypeVocabulary::new(Category::Accommodation, ["hotel", "hostel", "hotel"]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.name_of(0), Some("hotel"));
        assert_eq!(v.name_of(1), Some("hostel"));
    }

    #[test]
    fn vocabulary_lookup_and_one_hot() {
        let v = TypeVocabulary::default_transportation();
        let idx = v.index_of("bike rental").unwrap();
        let oh = v.one_hot("bike rental");
        assert_eq!(oh.len(), v.len());
        assert_eq!(oh[idx], 1.0);
        assert_eq!(oh.iter().sum::<f64>(), 1.0);
        assert!(v.one_hot("spaceship").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn default_vocabularies_are_non_trivial() {
        assert!(TypeVocabulary::default_accommodation().len() >= 4);
        assert!(TypeVocabulary::default_transportation().len() >= 4);
        assert!(!TypeVocabulary::default_accommodation().is_empty());
    }
}
