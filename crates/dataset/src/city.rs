//! City specifications for the synthetic generator.
//!
//! TourPedia covers eight cities; the paper's experiments use Paris (build
//! and refine the travel package) and Barcelona (test the refined profile in
//! a comparable city). Each [`CitySpec`] carries a bounding box and a set of
//! [`Neighborhood`] clusters around which POIs are concentrated — tourists'
//! POIs are not spread uniformly over a city, and the clustering behaviour of
//! KFC only becomes interesting when the data has spatial structure.

use grouptravel_geo::{BoundingBox, GeoPoint};
use serde::{Deserialize, Serialize};

/// A named Gaussian cluster of POIs inside a city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Neighborhood {
    /// Name of the neighborhood (for display and debugging).
    pub name: String,
    /// Cluster centre.
    pub center: GeoPoint,
    /// Standard deviation of POI positions around the centre, in degrees.
    pub spread_deg: f64,
    /// Relative weight: how many POIs land in this neighborhood compared to
    /// the others.
    pub weight: f64,
}

impl Neighborhood {
    /// Creates a neighborhood.
    #[must_use]
    pub fn new(name: impl Into<String>, center: GeoPoint, spread_deg: f64, weight: f64) -> Self {
        Self {
            name: name.into(),
            center,
            spread_deg: spread_deg.max(0.0),
            weight: weight.max(0.0),
        }
    }
}

/// A city: its name, bounding box, and neighborhood structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CitySpec {
    /// City name, e.g. "Paris".
    pub name: String,
    /// Bounding box POIs must fall inside.
    pub bbox: BoundingBox,
    /// Gaussian neighborhood clusters.
    pub neighborhoods: Vec<Neighborhood>,
}

impl CitySpec {
    /// Creates a city spec.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        bbox: BoundingBox,
        neighborhoods: Vec<Neighborhood>,
    ) -> Self {
        Self {
            name: name.into(),
            bbox,
            neighborhoods,
        }
    }

    /// Paris: the city used for package construction and customization.
    #[must_use]
    pub fn paris() -> Self {
        let bbox = BoundingBox::new(48.815, 48.905, 2.25, 2.42);
        let n = |name: &str, lat: f64, lon: f64, spread: f64, weight: f64| {
            Neighborhood::new(name, GeoPoint::new_unchecked(lat, lon), spread, weight)
        };
        Self::new(
            "Paris",
            bbox,
            vec![
                n("Louvre / Palais Royal", 48.8625, 2.3340, 0.006, 1.5),
                n("Le Marais", 48.8570, 2.3620, 0.006, 1.2),
                n("Montmartre", 48.8860, 2.3400, 0.007, 1.0),
                n("Quartier Latin", 48.8480, 2.3450, 0.006, 1.1),
                n("Invalides / Tour Eiffel", 48.8570, 2.3000, 0.008, 1.3),
                n("Champs-Élysées", 48.8700, 2.3070, 0.007, 1.0),
                n("Bastille", 48.8530, 2.3700, 0.006, 0.8),
                n("Montparnasse", 48.8420, 2.3220, 0.006, 0.7),
            ],
        )
    }

    /// Barcelona: the "comparable city" used to test the robustness of the
    /// refined group profile (§4.4.4).
    #[must_use]
    pub fn barcelona() -> Self {
        let bbox = BoundingBox::new(41.35, 41.45, 2.10, 2.23);
        let n = |name: &str, lat: f64, lon: f64, spread: f64, weight: f64| {
            Neighborhood::new(name, GeoPoint::new_unchecked(lat, lon), spread, weight)
        };
        Self::new(
            "Barcelona",
            bbox,
            vec![
                n("Barri Gòtic", 41.3830, 2.1760, 0.005, 1.4),
                n("Eixample / Sagrada Família", 41.4036, 2.1744, 0.007, 1.3),
                n("Gràcia", 41.4030, 2.1560, 0.006, 0.9),
                n("Barceloneta", 41.3790, 2.1900, 0.005, 0.8),
                n("Montjuïc", 41.3640, 2.1580, 0.008, 0.7),
                n("El Born", 41.3850, 2.1830, 0.005, 1.0),
            ],
        )
    }

    /// The remaining six TourPedia cities, with coarser neighborhood
    /// structure. Together with Paris and Barcelona this covers the eight
    /// cities the dataset advertises.
    #[must_use]
    pub fn other_tourpedia_cities() -> Vec<Self> {
        let n = |name: &str, lat: f64, lon: f64, spread: f64, weight: f64| {
            Neighborhood::new(name, GeoPoint::new_unchecked(lat, lon), spread, weight)
        };
        vec![
            Self::new(
                "Amsterdam",
                BoundingBox::new(52.33, 52.40, 4.83, 4.95),
                vec![
                    n("Centrum", 52.3730, 4.8920, 0.006, 1.4),
                    n("Jordaan", 52.3740, 4.8800, 0.005, 1.0),
                    n("Museumkwartier", 52.3580, 4.8810, 0.005, 1.1),
                ],
            ),
            Self::new(
                "Berlin",
                BoundingBox::new(52.47, 52.56, 13.28, 13.48),
                vec![
                    n("Mitte", 52.5200, 13.4050, 0.008, 1.4),
                    n("Kreuzberg", 52.4990, 13.4030, 0.007, 1.0),
                    n("Charlottenburg", 52.5160, 13.3040, 0.007, 0.9),
                ],
            ),
            Self::new(
                "Dubai",
                BoundingBox::new(25.05, 25.28, 55.10, 55.40),
                vec![
                    n("Downtown", 25.1972, 55.2744, 0.010, 1.4),
                    n("Marina", 25.0800, 55.1400, 0.009, 1.1),
                    n("Deira", 25.2700, 55.3100, 0.010, 0.9),
                ],
            ),
            Self::new(
                "London",
                BoundingBox::new(51.46, 51.56, -0.22, 0.01),
                vec![
                    n("Westminster", 51.5000, -0.1300, 0.008, 1.4),
                    n("City of London", 51.5155, -0.0922, 0.007, 1.1),
                    n("South Bank", 51.5050, -0.1150, 0.006, 1.0),
                    n("Camden", 51.5390, -0.1420, 0.007, 0.8),
                ],
            ),
            Self::new(
                "Rome",
                BoundingBox::new(41.85, 41.93, 12.44, 12.55),
                vec![
                    n("Centro Storico", 41.8990, 12.4770, 0.006, 1.5),
                    n("Vaticano", 41.9022, 12.4539, 0.005, 1.1),
                    n("Trastevere", 41.8880, 12.4700, 0.005, 0.9),
                ],
            ),
            Self::new(
                "Tuscany",
                BoundingBox::new(43.70, 43.82, 11.18, 11.33),
                vec![
                    n("Firenze Duomo", 43.7731, 11.2560, 0.006, 1.4),
                    n("Oltrarno", 43.7650, 11.2480, 0.005, 1.0),
                    n("San Marco", 43.7790, 11.2590, 0.005, 0.9),
                ],
            ),
        ]
    }

    /// All eight TourPedia cities.
    #[must_use]
    pub fn all_tourpedia_cities() -> Vec<Self> {
        let mut cities = vec![Self::paris(), Self::barcelona()];
        cities.extend(Self::other_tourpedia_cities());
        cities
    }

    /// Looks a city up by case-insensitive name among the eight presets.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Self> {
        Self::all_tourpedia_cities()
            .into_iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Total neighborhood weight (used by the generator for sampling).
    #[must_use]
    pub fn total_weight(&self) -> f64 {
        self.neighborhoods.iter().map(|n| n.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_eight_cities() {
        assert_eq!(CitySpec::all_tourpedia_cities().len(), 8);
    }

    #[test]
    fn paris_neighborhoods_are_inside_its_bbox() {
        let paris = CitySpec::paris();
        for n in &paris.neighborhoods {
            assert!(
                paris.bbox.contains(&n.center),
                "{} is outside the Paris bbox",
                n.name
            );
        }
    }

    #[test]
    fn every_city_has_neighborhoods_inside_its_bbox() {
        for city in CitySpec::all_tourpedia_cities() {
            assert!(
                !city.neighborhoods.is_empty(),
                "{} has no neighborhoods",
                city.name
            );
            for n in &city.neighborhoods {
                assert!(
                    city.bbox.contains(&n.center),
                    "{} / {} outside bbox",
                    city.name,
                    n.name
                );
            }
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(CitySpec::by_name("paris").unwrap().name, "Paris");
        assert_eq!(CitySpec::by_name("BARCELONA").unwrap().name, "Barcelona");
        assert!(CitySpec::by_name("Atlantis").is_none());
    }

    #[test]
    fn total_weight_is_positive() {
        for city in CitySpec::all_tourpedia_cities() {
            assert!(city.total_weight() > 0.0);
        }
    }

    #[test]
    fn neighborhood_constructor_clamps_negative_values() {
        let n = Neighborhood::new("x", GeoPoint::new_unchecked(0.0, 0.0), -1.0, -2.0);
        assert_eq!(n.spread_deg, 0.0);
        assert_eq!(n.weight, 0.0);
    }
}
