//! JSON (de)serialization of catalogs.
//!
//! Catalogs are plain JSON documents so that generated cities can be cached
//! on disk, inspected by hand, or swapped for real TourPedia exports that
//! have been converted to the same schema.

use crate::catalog::PoiCatalog;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while loading or saving catalogs.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Json(e) => write!(f, "JSON error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Json(e) => Some(e),
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Serializes a catalog to a pretty-printed JSON string.
pub fn to_json(catalog: &PoiCatalog) -> Result<String, IoError> {
    Ok(serde_json::to_string_pretty(catalog)?)
}

/// Deserializes a catalog from a JSON string, rebuilding its indexes.
pub fn from_json(json: &str) -> Result<PoiCatalog, IoError> {
    let mut catalog: PoiCatalog = serde_json::from_str(json)?;
    catalog.rebuild_indexes();
    Ok(catalog)
}

/// Writes a catalog to `path` as JSON.
pub fn save(catalog: &PoiCatalog, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, to_json(catalog)?)?;
    Ok(())
}

/// Reads a catalog from a JSON file at `path`.
pub fn load(path: impl AsRef<Path>) -> Result<PoiCatalog, IoError> {
    let text = fs::read_to_string(path)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::PoiId;
    use crate::sample::table1_pois;

    #[test]
    fn json_round_trip_preserves_pois_and_indexes() {
        let catalog = PoiCatalog::new("Paris", table1_pois());
        let json = to_json(&catalog).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, catalog);
        assert!(back.get(PoiId(2)).is_some());
    }

    #[test]
    fn file_round_trip() {
        let catalog = PoiCatalog::new("Paris", table1_pois());
        let dir = std::env::temp_dir().join("grouptravel-io-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paris.json");
        save(&catalog, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back, catalog);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(from_json("not json at all").is_err());
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load("/nonexistent/grouptravel/missing.json").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("I/O error"));
    }
}
