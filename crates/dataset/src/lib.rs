//! POI data model and synthetic city generation for GroupTravel.
//!
//! The paper's evaluation runs on the TourPedia dataset (POIs of eight cities)
//! augmented with Foursquare metadata: per-POI type, user-supplied tags, and a
//! cost estimated as `log(#checkins)` (§2.1). Neither data source is
//! available offline, so this crate provides a faithful substitute:
//!
//! * [`poi`] — the POI record with exactly the schema of Table 1
//!   (id, name, category, coordinates, type, tags, cost) plus the raw
//!   check-in count the cost is derived from.
//! * [`category`] — the four POI categories and the per-category type
//!   vocabularies ("hotel", "hostel", …, "tram station", "bike rental", …).
//! * [`tags`] — tag vocabularies organised by latent theme, so that the LDA
//!   substrate has genuine structure to recover.
//! * [`city`] — city specifications (bounding box, neighborhood clusters) for
//!   the eight TourPedia cities.
//! * [`synth`] — the deterministic synthetic generator that draws POIs from
//!   neighborhood clusters and assigns types, tags, check-ins and costs.
//! * [`catalog`] — an indexed, queryable collection of POIs (by category,
//!   type, bounding box, nearest-neighbour) used by the package builder and
//!   the customization operators.
//! * [`spatial`] — per-category spatial grids with exact ring-bounded k-NN,
//!   lazily attached to a catalog; the one spatial hot path every
//!   nearest-neighbour query routes through.
//! * [`sample`] — the four hand-written Paris POIs of Table 1.
//! * [`io`] — JSON (de)serialization of catalogs.

pub mod catalog;
pub mod category;
pub mod city;
pub mod io;
pub mod poi;
pub mod sample;
pub mod spatial;
pub mod synth;
pub mod tags;

pub use catalog::PoiCatalog;
pub use category::{Category, TypeVocabulary};
pub use city::{CitySpec, Neighborhood};
pub use poi::{Poi, PoiId};
pub use spatial::{CategoryGrid, SpatialIndex};
pub use synth::{SyntheticCityConfig, SyntheticCityGenerator};
