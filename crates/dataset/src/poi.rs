//! The Point-Of-Interest record.
//!
//! Mirrors Table 1 of the paper: every POI has an id, a name, a category, a
//! latitude/longitude pair, a type, a list of tags and a cost. We also keep
//! the raw Foursquare-style check-in count because the cost is defined as
//! `log(#checkins)` — the more people check in, the more crowded and hence
//! the more expensive the POI is assumed to be (§2.1).

use crate::category::Category;
use grouptravel_geo::GeoPoint;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a POI within a catalog.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PoiId(pub u64);

impl fmt::Display for PoiId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "poi:{}", self.0)
    }
}

/// A Point Of Interest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Unique identifier.
    pub id: PoiId,
    /// Human-readable name.
    pub name: String,
    /// One of the four categories.
    pub category: Category,
    /// Geographic location.
    pub location: GeoPoint,
    /// Fine-grained type within the category ("hotel", "bike rental",
    /// "museum", "french", …).
    pub poi_type: String,
    /// Foursquare-style free-text tags.
    pub tags: Vec<String>,
    /// Number of check-ins; the cost is derived from this.
    pub checkins: u64,
    /// Visiting cost, `log(1 + #checkins)` by default.
    pub cost: f64,
}

impl Poi {
    /// Creates a POI, deriving its cost from the check-in count.
    #[must_use]
    pub fn new(
        id: PoiId,
        name: impl Into<String>,
        category: Category,
        location: GeoPoint,
        poi_type: impl Into<String>,
        tags: Vec<String>,
        checkins: u64,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            category,
            location,
            poi_type: poi_type.into(),
            tags,
            checkins,
            cost: cost_from_checkins(checkins),
        }
    }

    /// Creates a POI with an explicit cost (used for the hand-written sample
    /// POIs of Table 1 and for tests).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn with_cost(
        id: PoiId,
        name: impl Into<String>,
        category: Category,
        location: GeoPoint,
        poi_type: impl Into<String>,
        tags: Vec<String>,
        checkins: u64,
        cost: f64,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            category,
            location,
            poi_type: poi_type.into(),
            tags,
            checkins,
            cost,
        }
    }

    /// The tag list joined with spaces, i.e. the "document" handed to LDA.
    #[must_use]
    pub fn tag_document(&self) -> String {
        self.tags.join(" ")
    }

    /// Whether the POI carries a given tag.
    #[must_use]
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

impl fmt::Display for Poi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} @ {} (type: {}, cost: {:.2})",
            self.id, self.category, self.name, self.location, self.poi_type, self.cost
        )
    }
}

/// The paper's cost model: `log(#checkins)`, guarded with `+1` so that POIs
/// nobody has checked into yet get cost 0 instead of −∞.
#[must_use]
pub fn cost_from_checkins(checkins: u64) -> f64 {
    ((checkins + 1) as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Poi {
        Poi::new(
            PoiId(1),
            "Le Burgundy",
            Category::Accommodation,
            GeoPoint::new_unchecked(48.8679, 2.3256),
            "hotel",
            vec!["luxury".into(), "suites".into(), "spa".into()],
            19,
        )
    }

    #[test]
    fn cost_is_log_of_checkins() {
        let p = sample();
        assert!((p.cost - (20.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn zero_checkins_cost_is_zero() {
        assert_eq!(cost_from_checkins(0), 0.0);
    }

    #[test]
    fn cost_is_monotone_in_checkins() {
        let mut prev = f64::NEG_INFINITY;
        for c in [0u64, 1, 5, 50, 500, 5000] {
            let cost = cost_from_checkins(c);
            assert!(cost > prev);
            prev = cost;
        }
    }

    #[test]
    fn with_cost_overrides_the_derived_cost() {
        let p = Poi::with_cost(
            PoiId(2),
            "The Bicycle Store",
            Category::Transportation,
            GeoPoint::new_unchecked(48.8642, 2.3658),
            "bike rental",
            vec![],
            0,
            2.71,
        );
        assert_eq!(p.cost, 2.71);
    }

    #[test]
    fn tag_document_and_has_tag() {
        let p = sample();
        assert_eq!(p.tag_document(), "luxury suites spa");
        assert!(p.has_tag("spa"));
        assert!(!p.has_tag("museum"));
    }

    #[test]
    fn display_mentions_name_and_category() {
        let s = sample().to_string();
        assert!(s.contains("Le Burgundy"));
        assert!(s.contains("acco"));
    }

    #[test]
    fn serde_round_trip() {
        let p = sample();
        let json = serde_json::to_string(&p).unwrap();
        let back: Poi = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
