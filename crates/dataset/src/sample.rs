//! The four sample Paris POIs of Table 1.
//!
//! These are the literal rows of Table 1 in the paper (names, categories,
//! coordinates, types, tags, costs) and are used by the quickstart example,
//! the Table 1 reproduction binary, and many unit tests.

use crate::category::Category;
use crate::poi::{Poi, PoiId};
use grouptravel_geo::GeoPoint;

/// The POIs of Table 1, in row order.
#[must_use]
pub fn table1_pois() -> Vec<Poi> {
    vec![
        Poi::with_cost(
            PoiId(1),
            "Le Burgundy",
            Category::Accommodation,
            GeoPoint::new_unchecked(48.8679, 2.3256),
            "hotel",
            split_tags("luxury suites cognac champagne bar gastronomic restaurant spa"),
            19,
            3.00,
        ),
        Poi::with_cost(
            PoiId(2),
            "The Bicycle Store",
            Category::Transportation,
            GeoPoint::new_unchecked(48.8642, 2.3658),
            "bike shop",
            split_tags("accessoires velo beach cruiser bicycle paris fixed gear"),
            14,
            2.71,
        ),
        Poi::with_cost(
            PoiId(3),
            "Un Zebre a Montmartre",
            Category::Restaurant,
            GeoPoint::new_unchecked(48.886, 2.3348),
            "french",
            split_tags("bankers bar brunch cafe comedy fireplace frat hipsters liquor margaritas"),
            23,
            3.20,
        ),
        Poi::with_cost(
            PoiId(4),
            "Les Arts Decoratifs",
            Category::Attraction,
            GeoPoint::new_unchecked(48.8632, 2.3334),
            "museum",
            split_tags(
                "arts contemporary decorative exhibition fashion gallery mode modern museum",
            ),
            46,
            3.86,
        ),
    ]
}

fn split_tags(tags: &str) -> Vec<String> {
    tags.split_whitespace().map(str::to_string).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_four_rows() {
        assert_eq!(table1_pois().len(), 4);
    }

    #[test]
    fn one_poi_per_category() {
        let pois = table1_pois();
        for cat in Category::ALL {
            assert_eq!(pois.iter().filter(|p| p.category == cat).count(), 1);
        }
    }

    #[test]
    fn costs_match_the_table() {
        let pois = table1_pois();
        let costs: Vec<f64> = pois.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![3.00, 2.71, 3.20, 3.86]);
    }

    #[test]
    fn coordinates_match_the_table() {
        let pois = table1_pois();
        assert!((pois[0].location.lat - 48.8679).abs() < 1e-9);
        assert!((pois[0].location.lon - 2.3256).abs() < 1e-9);
        assert!((pois[3].location.lat - 48.8632).abs() < 1e-9);
    }

    #[test]
    fn museum_row_is_the_museum_from_the_worked_example() {
        let pois = table1_pois();
        let museum = &pois[3];
        assert_eq!(museum.poi_type, "museum");
        assert!(museum.has_tag("museum"));
        assert!(museum.has_tag("gallery"));
    }

    #[test]
    fn ids_are_one_through_four() {
        let ids: Vec<u64> = table1_pois().iter().map(|p| p.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
    }
}
