//! Per-category spatial indexes over a catalog's POIs.
//!
//! Every spatial question the system asks — "the nearest restaurant to this
//! point", "a candidate pool around this centroid", "the k closest
//! attractions not already in the composite item" — is scoped to one POI
//! category. [`SpatialIndex`] therefore keeps one [`grouptravel_geo::GridIndex`]
//! per category, together with the mapping from grid point index back to
//! catalog position, so grid answers resolve to `catalog.pois()` entries.
//!
//! The index is **exact**: grid k-NN returns precisely the brute-force
//! ranking (ties broken by catalog position — the grid stores each
//! category's POIs in ascending catalog order, so grid-index ties *are*
//! catalog-position ties). [`crate::PoiCatalog`] builds one lazily on first
//! use and the serving engine primes it at registration, so the O(n) build
//! is paid once per catalog, never per query.

use crate::category::Category;
use crate::poi::Poi;
use grouptravel_geo::{DistanceMetric, GeoPoint, GridIndex};
use std::collections::HashMap;

/// One POI category's spatial index: the grid over that category's
/// locations plus the mapping from grid point index back to catalog
/// position.
#[derive(Debug, Clone)]
pub struct CategoryGrid {
    grid: GridIndex,
    /// `catalog_positions[i]` is the index into `catalog.pois()` of the
    /// grid's `i`-th point. Ascending by construction (POIs are scanned in
    /// catalog order), which is what makes grid-index tie-breaking equal to
    /// catalog-position tie-breaking.
    catalog_positions: Vec<u32>,
}

impl CategoryGrid {
    fn build(pois: &[Poi], category: Category) -> Self {
        let mut catalog_positions = Vec::new();
        let mut locations: Vec<GeoPoint> = Vec::new();
        for (pos, poi) in pois.iter().enumerate() {
            if poi.category == category {
                catalog_positions.push(pos as u32);
                locations.push(poi.location);
            }
        }
        Self {
            grid: GridIndex::build(&locations),
            catalog_positions,
        }
    }

    /// The underlying grid over this category's locations.
    #[must_use]
    pub fn grid(&self) -> &GridIndex {
        &self.grid
    }

    /// Number of POIs of this category.
    #[must_use]
    pub fn len(&self) -> usize {
        self.catalog_positions.len()
    }

    /// Whether the category holds no POIs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.catalog_positions.is_empty()
    }

    /// Catalog positions (indices into `catalog.pois()`) of a grid query
    /// result.
    #[must_use]
    pub fn to_catalog_positions(&self, grid_indices: &[usize]) -> Vec<usize> {
        grid_indices
            .iter()
            .map(|&i| self.catalog_positions[i] as usize)
            .collect()
    }

    /// The catalog positions of the `k` POIs of this category nearest to
    /// `center` among those accepted by `accept` (which receives a catalog
    /// position), ordered by `(distance, catalog position)` ascending —
    /// exactly the brute-force ranking.
    #[must_use]
    pub fn k_nearest(
        &self,
        center: &GeoPoint,
        k: usize,
        metric: DistanceMetric,
        mut accept: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        let grid_indices = self.grid.k_nearest_filtered(center, k, metric, |i| {
            accept(self.catalog_positions[i] as usize)
        });
        self.to_catalog_positions(&grid_indices)
    }
}

/// Per-category spatial indexes over one catalog's POIs.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    grids: HashMap<Category, CategoryGrid>,
}

impl SpatialIndex {
    /// Builds one grid per category (empty categories get empty grids).
    #[must_use]
    pub fn build(pois: &[Poi]) -> Self {
        Self {
            grids: Category::ALL
                .iter()
                .map(|&category| (category, CategoryGrid::build(pois, category)))
                .collect(),
        }
    }

    /// The grid for one category. Always present for the four categories in
    /// [`Category::ALL`] (possibly empty).
    #[must_use]
    pub fn category(&self, category: Category) -> Option<&CategoryGrid> {
        self.grids.get(&category)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::table1_pois;

    #[test]
    fn grids_partition_the_catalog() {
        let pois = table1_pois();
        let index = SpatialIndex::build(&pois);
        let total: usize = Category::ALL
            .iter()
            .map(|&c| index.category(c).unwrap().len())
            .sum();
        assert_eq!(total, pois.len());
    }

    #[test]
    fn k_nearest_resolves_to_catalog_positions_of_the_category() {
        let pois = table1_pois();
        let index = SpatialIndex::build(&pois);
        let origin = pois[0].location;
        for &category in &Category::ALL {
            let grid = index.category(category).unwrap();
            let positions =
                grid.k_nearest(&origin, pois.len(), DistanceMetric::Haversine, |_| true);
            assert_eq!(positions.len(), grid.len());
            for pos in positions {
                assert_eq!(pois[pos].category, category);
            }
        }
    }

    #[test]
    fn accept_filter_receives_catalog_positions() {
        let pois = table1_pois();
        let index = SpatialIndex::build(&pois);
        let origin = pois[0].location;
        for &category in &Category::ALL {
            let grid = index.category(category).unwrap();
            let mut seen = Vec::new();
            let _ = grid.k_nearest(
                &origin,
                pois.len(),
                DistanceMetric::Equirectangular,
                |pos| {
                    seen.push(pos);
                    false
                },
            );
            for pos in seen {
                assert_eq!(pois[pos].category, category);
            }
        }
    }
}
