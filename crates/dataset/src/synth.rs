//! Deterministic synthetic POI generation.
//!
//! Substitutes for the TourPedia dump + Foursquare augmentation used in the
//! paper. POI positions are drawn from the city's weighted Gaussian
//! neighborhoods (clamped to the bounding box), types come from the explicit
//! vocabularies (accommodation/transportation) or from a latent theme
//! (restaurants/attractions), tags are sampled from the chosen theme's
//! vocabulary with a small amount of cross-theme noise, and check-ins follow
//! a heavy-tailed log-normal distribution so that `cost = log(1 + checkins)`
//! spans a realistic range.
//!
//! The generator is fully deterministic given its seed, so every experiment
//! and benchmark in the workspace can be reproduced bit-for-bit.

use crate::catalog::PoiCatalog;
use crate::category::{Category, TypeVocabulary};
use crate::city::CitySpec;
use crate::poi::{Poi, PoiId};
use crate::tags::{default_themes, TagTheme};
use grouptravel_geo::GeoPoint;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How many POIs of each category to generate and which randomness seed to
/// use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticCityConfig {
    /// POIs per category: accommodation, transportation, restaurant,
    /// attraction (in [`Category::ALL`] order).
    pub counts: [usize; 4],
    /// Randomness seed. The same seed and city always produce the same
    /// catalog.
    pub seed: u64,
    /// Mean of the log-normal check-in distribution (of `ln(checkins)`).
    pub checkin_log_mean: f64,
    /// Standard deviation of `ln(checkins)`.
    pub checkin_log_std: f64,
    /// How many tags each restaurant/attraction POI carries.
    pub tags_per_poi: usize,
    /// Probability that an individual tag is drawn from a *different* theme
    /// (noise that makes the LDA recovery non-trivial).
    pub tag_noise: f64,
}

impl Default for SyntheticCityConfig {
    fn default() -> Self {
        Self {
            counts: [120, 80, 200, 200],
            seed: 42,
            checkin_log_mean: 4.0,
            checkin_log_std: 1.5,
            tags_per_poi: 6,
            tag_noise: 0.1,
        }
    }
}

impl SyntheticCityConfig {
    /// A small configuration for fast unit/integration tests.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            counts: [20, 15, 40, 40],
            seed,
            ..Self::default()
        }
    }

    /// Total number of POIs that will be generated.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

/// Synthetic city generator.
#[derive(Debug, Clone)]
pub struct SyntheticCityGenerator {
    city: CitySpec,
    config: SyntheticCityConfig,
    acco_types: TypeVocabulary,
    trans_types: TypeVocabulary,
}

impl SyntheticCityGenerator {
    /// Creates a generator for `city` with the given configuration and the
    /// default type vocabularies.
    #[must_use]
    pub fn new(city: CitySpec, config: SyntheticCityConfig) -> Self {
        Self {
            city,
            config,
            acco_types: TypeVocabulary::default_accommodation(),
            trans_types: TypeVocabulary::default_transportation(),
        }
    }

    /// The city being generated.
    #[must_use]
    pub fn city(&self) -> &CitySpec {
        &self.city
    }

    /// Generates the full catalog.
    #[must_use]
    pub fn generate(&self) -> PoiCatalog {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ hash_name(&self.city.name));
        let mut pois = Vec::with_capacity(self.config.total());
        let mut next_id = 1u64;

        for (cat_idx, &count) in self.config.counts.iter().enumerate() {
            let category = Category::ALL[cat_idx];
            let themes = default_themes(category);
            for _ in 0..count {
                let poi = self.generate_poi(PoiId(next_id), category, &themes, &mut rng);
                pois.push(poi);
                next_id += 1;
            }
        }

        PoiCatalog::new(self.city.name.clone(), pois)
    }

    fn generate_poi(
        &self,
        id: PoiId,
        category: Category,
        themes: &[TagTheme],
        rng: &mut SmallRng,
    ) -> Poi {
        let location = self.sample_location(rng);
        let checkins = self.sample_checkins(rng);
        let (poi_type, tags) = match category {
            Category::Accommodation => self.sample_typed(&self.acco_types, rng),
            Category::Transportation => self.sample_typed(&self.trans_types, rng),
            Category::Restaurant | Category::Attraction => self.sample_themed(themes, rng),
        };
        let name = format!("{} {} #{}", self.city.name, poi_type, id.0);
        Poi::new(id, name, category, location, poi_type, tags, checkins)
    }

    /// Picks a neighborhood (weighted) and samples a Gaussian position around
    /// its centre, clamped to the city's bounding box.
    fn sample_location(&self, rng: &mut SmallRng) -> GeoPoint {
        let total = self.city.total_weight();
        let neighborhood = if total <= f64::EPSILON || self.city.neighborhoods.is_empty() {
            None
        } else {
            let mut pick = rng.gen_range(0.0..total);
            let mut chosen = None;
            for n in &self.city.neighborhoods {
                if pick < n.weight {
                    chosen = Some(n);
                    break;
                }
                pick -= n.weight;
            }
            chosen.or(self.city.neighborhoods.last())
        };

        let point = match neighborhood {
            Some(n) => GeoPoint::new_unchecked(
                n.center.lat + gaussian(rng) * n.spread_deg,
                n.center.lon + gaussian(rng) * n.spread_deg,
            ),
            None => self.city.bbox.center(),
        };
        self.city.bbox.clamp(&point)
    }

    fn sample_checkins(&self, rng: &mut SmallRng) -> u64 {
        let log_value = self.config.checkin_log_mean + gaussian(rng) * self.config.checkin_log_std;
        log_value.exp().round().max(0.0) as u64
    }

    /// Accommodation / transportation: a uniformly chosen explicit type, plus
    /// a couple of tags derived from the type name.
    fn sample_typed(&self, vocab: &TypeVocabulary, rng: &mut SmallRng) -> (String, Vec<String>) {
        let idx = rng.gen_range(0..vocab.len());
        let poi_type = vocab.name_of(idx).unwrap_or("unknown").to_string();
        let mut tags: Vec<String> = poi_type.split_whitespace().map(str::to_string).collect();
        tags.push(vocab.category().short_name().to_string());
        (poi_type, tags)
    }

    /// Restaurants / attractions: a latent theme, whose name becomes the
    /// type, and tags drawn mostly from that theme's vocabulary.
    fn sample_themed(&self, themes: &[TagTheme], rng: &mut SmallRng) -> (String, Vec<String>) {
        if themes.is_empty() {
            return ("generic".to_string(), Vec::new());
        }
        let theme_idx = rng.gen_range(0..themes.len());
        let theme = &themes[theme_idx];
        let mut tags = Vec::with_capacity(self.config.tags_per_poi);
        for _ in 0..self.config.tags_per_poi {
            let source = if rng.gen_bool(self.config.tag_noise.clamp(0.0, 1.0)) {
                &themes[rng.gen_range(0..themes.len())]
            } else {
                theme
            };
            if source.tags.is_empty() {
                continue;
            }
            let tag = source.tags[rng.gen_range(0..source.tags.len())].clone();
            tags.push(tag);
        }
        (theme.name.clone(), tags)
    }
}

/// Standard normal sample via the Box–Muller transform (avoids pulling in a
/// distributions crate for a single use).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Cheap FNV-1a hash of the city name so different cities with the same seed
/// produce different catalogs.
fn hash_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris_catalog(seed: u64) -> PoiCatalog {
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let a = paris_catalog(7);
        let b = paris_catalog(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.pois().iter().zip(b.pois()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn different_seeds_give_different_catalogs() {
        let a = paris_catalog(1);
        let b = paris_catalog(2);
        let identical = a
            .pois()
            .iter()
            .zip(b.pois())
            .all(|(x, y)| x.location == y.location);
        assert!(!identical);
    }

    #[test]
    fn different_cities_differ_even_with_same_seed() {
        let cfg = SyntheticCityConfig::small(3);
        let paris = SyntheticCityGenerator::new(CitySpec::paris(), cfg.clone()).generate();
        let barcelona = SyntheticCityGenerator::new(CitySpec::barcelona(), cfg).generate();
        assert_ne!(paris.pois()[0].location, barcelona.pois()[0].location);
    }

    #[test]
    fn category_counts_match_config() {
        let catalog = paris_catalog(5);
        let cfg = SyntheticCityConfig::small(5);
        for (idx, cat) in Category::ALL.iter().enumerate() {
            assert_eq!(catalog.by_category(*cat).len(), cfg.counts[idx]);
        }
    }

    #[test]
    fn all_pois_are_inside_the_city_bbox() {
        let catalog = paris_catalog(11);
        let bbox = CitySpec::paris().bbox;
        for poi in catalog.pois() {
            assert!(bbox.contains(&poi.location), "{} outside bbox", poi.name);
        }
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let catalog = paris_catalog(13);
        let mut ids: Vec<u64> = catalog.pois().iter().map(|p| p.id.0).collect();
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len);
        assert_eq!(ids[0], 1);
        assert_eq!(*ids.last().unwrap(), len as u64);
    }

    #[test]
    fn costs_are_nonnegative_and_mostly_positive() {
        let catalog = paris_catalog(17);
        assert!(catalog.pois().iter().all(|p| p.cost >= 0.0));
        let positive = catalog.pois().iter().filter(|p| p.cost > 0.0).count();
        assert!(
            positive * 10 >= catalog.len() * 9,
            "too many zero-cost POIs"
        );
    }

    #[test]
    fn restaurants_and_attractions_have_theme_tags() {
        let catalog = paris_catalog(19);
        for poi in catalog.by_category(Category::Restaurant) {
            assert!(!poi.tags.is_empty(), "{} has no tags", poi.name);
        }
        for poi in catalog.by_category(Category::Attraction) {
            assert!(!poi.tags.is_empty(), "{} has no tags", poi.name);
        }
    }

    #[test]
    fn accommodation_types_come_from_the_vocabulary() {
        let catalog = paris_catalog(23);
        let vocab = TypeVocabulary::default_accommodation();
        for poi in catalog.by_category(Category::Accommodation) {
            assert!(
                vocab.index_of(&poi.poi_type).is_some(),
                "unexpected type {}",
                poi.poi_type
            );
        }
    }

    #[test]
    fn gaussian_is_roughly_standard_normal() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
