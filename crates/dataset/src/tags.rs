//! Tag vocabularies organised by latent theme.
//!
//! The paper derives restaurant and attraction types by running LDA over
//! Foursquare tags, obtaining topics such as "art gallery, museum, library"
//! and "garden, park, event hall" for attractions, and "Japanese, sushi" and
//! "beer, wine, bistro" for restaurants (§2.2). The synthetic generator uses
//! the theme vocabularies below to draw tags for each POI, so the LDA
//! substrate has the same kind of latent structure to recover.

use crate::category::Category;
use serde::{Deserialize, Serialize};

/// A latent theme: a name, the category it applies to, and the tag vocabulary
/// it tends to emit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagTheme {
    /// Human-readable name of the theme, e.g. "museums & galleries".
    pub name: String,
    /// Which category's POIs this theme describes.
    pub category: Category,
    /// Tags characteristic of this theme.
    pub tags: Vec<String>,
}

impl TagTheme {
    /// Creates a theme from string-like parts.
    #[must_use]
    pub fn new<S, I, T>(name: S, category: Category, tags: I) -> Self
    where
        S: Into<String>,
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        Self {
            name: name.into(),
            category,
            tags: tags.into_iter().map(Into::into).collect(),
        }
    }
}

/// The default attraction themes, mirroring the topics named in the paper.
#[must_use]
pub fn default_attraction_themes() -> Vec<TagTheme> {
    vec![
        TagTheme::new(
            "museums & galleries",
            Category::Attraction,
            [
                "museum",
                "art",
                "gallery",
                "library",
                "exhibition",
                "contemporary",
                "sculpture",
                "painting",
            ],
        ),
        TagTheme::new(
            "parks & gardens",
            Category::Attraction,
            [
                "garden",
                "park",
                "event hall",
                "picnic",
                "lake",
                "playground",
                "botanical",
                "green",
            ],
        ),
        TagTheme::new(
            "monuments & history",
            Category::Attraction,
            [
                "monument",
                "cathedral",
                "castle",
                "historic",
                "architecture",
                "tower",
                "plaza",
                "heritage",
            ],
        ),
        TagTheme::new(
            "nightlife & shows",
            Category::Attraction,
            [
                "theater", "cabaret", "concert", "live", "music", "show", "comedy", "club",
            ],
        ),
    ]
}

/// The default restaurant themes, mirroring the topics named in the paper.
#[must_use]
pub fn default_restaurant_themes() -> Vec<TagTheme> {
    vec![
        TagTheme::new(
            "japanese & sushi",
            Category::Restaurant,
            [
                "japanese", "sushi", "ramen", "sake", "tempura", "izakaya", "bento", "wasabi",
            ],
        ),
        TagTheme::new(
            "bistro & wine",
            Category::Restaurant,
            [
                "beer",
                "wine",
                "bistro",
                "brasserie",
                "terrace",
                "cheese",
                "charcuterie",
                "bar",
            ],
        ),
        TagTheme::new(
            "french gastronomy",
            Category::Restaurant,
            [
                "french",
                "gastronomic",
                "michelin",
                "tasting",
                "chef",
                "foie gras",
                "pastry",
                "brunch",
            ],
        ),
        TagTheme::new(
            "street food & cafés",
            Category::Restaurant,
            [
                "cafe", "coffee", "sandwich", "falafel", "crepe", "bakery", "takeaway", "cheap",
            ],
        ),
    ]
}

/// All default themes for a category (empty for accommodation and
/// transportation, whose item vectors are one-hot over explicit types).
#[must_use]
pub fn default_themes(category: Category) -> Vec<TagTheme> {
    match category {
        Category::Restaurant => default_restaurant_themes(),
        Category::Attraction => default_attraction_themes(),
        Category::Accommodation | Category::Transportation => Vec::new(),
    }
}

/// The union of every theme's tags for a category, deduplicated, preserving
/// first-occurrence order. This is the tag vocabulary LDA runs over.
#[must_use]
pub fn tag_vocabulary(category: Category) -> Vec<String> {
    let mut vocab: Vec<String> = Vec::new();
    for theme in default_themes(category) {
        for tag in theme.tags {
            if !vocab.contains(&tag) {
                vocab.push(tag);
            }
        }
    }
    vocab
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attraction_themes_include_paper_examples() {
        let themes = default_attraction_themes();
        let museums = themes.iter().find(|t| t.name.contains("museums")).unwrap();
        assert!(museums.tags.contains(&"museum".to_string()));
        assert!(museums.tags.contains(&"gallery".to_string()));
        let parks = themes.iter().find(|t| t.name.contains("parks")).unwrap();
        assert!(parks.tags.contains(&"garden".to_string()));
        assert!(parks.tags.contains(&"park".to_string()));
    }

    #[test]
    fn restaurant_themes_include_paper_examples() {
        let themes = default_restaurant_themes();
        let jap = themes.iter().find(|t| t.name.contains("japanese")).unwrap();
        assert!(jap.tags.contains(&"sushi".to_string()));
        let bistro = themes.iter().find(|t| t.name.contains("bistro")).unwrap();
        assert!(bistro.tags.contains(&"wine".to_string()));
        assert!(bistro.tags.contains(&"beer".to_string()));
    }

    #[test]
    fn themes_carry_their_category() {
        for t in default_attraction_themes() {
            assert_eq!(t.category, Category::Attraction);
        }
        for t in default_restaurant_themes() {
            assert_eq!(t.category, Category::Restaurant);
        }
    }

    #[test]
    fn explicit_type_categories_have_no_themes() {
        assert!(default_themes(Category::Accommodation).is_empty());
        assert!(default_themes(Category::Transportation).is_empty());
    }

    #[test]
    fn vocabulary_is_deduplicated_union() {
        let vocab = tag_vocabulary(Category::Restaurant);
        let total: usize = default_restaurant_themes()
            .iter()
            .map(|t| t.tags.len())
            .sum();
        assert!(vocab.len() <= total);
        assert!(vocab.contains(&"sushi".to_string()));
        // No duplicates.
        let mut sorted = vocab.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), vocab.len());
    }

    #[test]
    fn themes_are_disjoint_enough_for_lda() {
        // Every pair of attraction themes shares at most one tag; otherwise
        // the latent structure would be too weak for LDA to recover.
        let themes = default_attraction_themes();
        for (i, a) in themes.iter().enumerate() {
            for b in &themes[i + 1..] {
                let overlap = a.tags.iter().filter(|t| b.tags.contains(t)).count();
                assert!(overlap <= 1, "{} and {} overlap too much", a.name, b.name);
            }
        }
    }
}
