//! Property-based tests for the synthetic dataset generator and the catalog.

use grouptravel_dataset::poi::cost_from_checkins;
use grouptravel_dataset::{Category, CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
use grouptravel_geo::DistanceMetric;
use proptest::prelude::*;

fn tiny_config(seed: u64, counts: [usize; 4]) -> SyntheticCityConfig {
    SyntheticCityConfig {
        counts,
        seed,
        ..SyntheticCityConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_pois_respect_the_city_and_config(
        seed in 0u64..5000,
        acco in 1usize..15,
        trans in 1usize..15,
        rest in 1usize..20,
        attr in 1usize..20,
    ) {
        let city = CitySpec::paris();
        let bbox = city.bbox;
        let catalog =
            SyntheticCityGenerator::new(city, tiny_config(seed, [acco, trans, rest, attr]))
                .generate();
        prop_assert_eq!(catalog.len(), acco + trans + rest + attr);
        prop_assert_eq!(catalog.count_category(Category::Accommodation), acco);
        prop_assert_eq!(catalog.count_category(Category::Attraction), attr);
        for poi in catalog.pois() {
            prop_assert!(bbox.contains(&poi.location));
            prop_assert!(poi.cost >= 0.0);
            prop_assert!((poi.cost - cost_from_checkins(poi.checkins)).abs() < 1e-9);
        }
        // Ids are unique.
        let mut ids: Vec<u64> = catalog.pois().iter().map(|p| p.id.0).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    #[test]
    fn cost_is_monotone_in_checkins(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cost_from_checkins(lo) <= cost_from_checkins(hi) + 1e-12);
    }

    #[test]
    fn nearest_neighbour_queries_agree_with_a_linear_scan(seed in 0u64..1000) {
        let catalog = SyntheticCityGenerator::new(
            CitySpec::barcelona(),
            tiny_config(seed, [5, 5, 10, 10]),
        )
        .generate();
        let origin = catalog.pois()[0].location;
        for category in Category::ALL {
            let nearest = catalog
                .nearest_in_category(&origin, category, DistanceMetric::Equirectangular, &[])
                .expect("category is populated");
            // Brute-force check.
            let best = catalog
                .by_category(category)
                .into_iter()
                .min_by(|a, b| {
                    let da = DistanceMetric::Equirectangular.distance_km(&origin, &a.location);
                    let db = DistanceMetric::Equirectangular.distance_km(&origin, &b.location);
                    da.partial_cmp(&db).unwrap()
                })
                .unwrap();
            let d_nearest = DistanceMetric::Equirectangular.distance_km(&origin, &nearest.location);
            let d_best = DistanceMetric::Equirectangular.distance_km(&origin, &best.location);
            prop_assert!((d_nearest - d_best).abs() < 1e-9);
        }
    }

    #[test]
    fn k_nearest_is_sorted_and_excludes_requested_ids(seed in 0u64..1000, k in 1usize..8) {
        let catalog = SyntheticCityGenerator::new(
            CitySpec::paris(),
            tiny_config(seed, [6, 6, 12, 12]),
        )
        .generate();
        let origin = catalog.pois()[seed as usize % catalog.len()].location;
        let exclude = vec![catalog.pois()[0].id];
        let result = catalog.k_nearest_in_category(
            &origin,
            Category::Restaurant,
            k,
            DistanceMetric::Equirectangular,
            &exclude,
        );
        prop_assert!(result.len() <= k);
        for poi in &result {
            prop_assert!(!exclude.contains(&poi.id));
            prop_assert_eq!(poi.category, Category::Restaurant);
        }
        for pair in result.windows(2) {
            let d0 = DistanceMetric::Equirectangular.distance_km(&origin, &pair[0].location);
            let d1 = DistanceMetric::Equirectangular.distance_km(&origin, &pair[1].location);
            prop_assert!(d0 <= d1 + 1e-12);
        }
    }

    #[test]
    fn catalog_k_nearest_equals_a_full_sort_reference(
        seed in 0u64..1000,
        k in 1usize..40,
        exclude_count in 0usize..6,
    ) {
        // Categories big enough (> 16) to take the grid path and small
        // enough to double-check: the grid-backed answer must equal the
        // seed implementation (full stable sort by distance, ties by
        // catalog position) element for element.
        let catalog = SyntheticCityGenerator::new(
            CitySpec::paris(),
            tiny_config(seed, [18, 18, 19, 19]),
        )
        .generate();
        let origin = catalog.pois()[seed as usize % catalog.len()].location;
        let exclude: Vec<_> = catalog.pois().iter().take(exclude_count).map(|p| p.id).collect();
        for category in Category::ALL {
            for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
                let mut reference: Vec<(f64, u64)> = catalog
                    .by_category(category)
                    .into_iter()
                    .filter(|p| !exclude.contains(&p.id))
                    .map(|p| (metric.distance_km(&origin, &p.location), p.id.0))
                    .collect();
                reference.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                reference.truncate(k);
                let got: Vec<(f64, u64)> = catalog
                    .k_nearest_in_category(&origin, category, k, metric, &exclude)
                    .into_iter()
                    .map(|p| (metric.distance_km(&origin, &p.location), p.id.0))
                    .collect();
                prop_assert_eq!(got, reference, "category {:?} metric {:?}", category, metric);
            }
        }
    }

    #[test]
    fn catalog_k_nearest_where_equals_filtered_reference(
        seed in 0u64..1000,
        k in 1usize..20,
    ) {
        let catalog = SyntheticCityGenerator::new(
            CitySpec::barcelona(),
            tiny_config(seed, [20, 20, 30, 30]),
        )
        .generate();
        let origin = catalog.pois()[0].location;
        let metric = DistanceMetric::Equirectangular;
        for category in Category::ALL {
            let types = catalog.types_in_category(category);
            let Some(wanted) = types.first() else { continue };
            let mut scored: Vec<(f64, u64)> = catalog
                .by_category(category)
                .into_iter()
                .filter(|p| &p.poi_type == wanted)
                .map(|p| (metric.distance_km(&origin, &p.location), p.id.0))
                .collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let reference: Vec<u64> = scored.into_iter().take(k).map(|(_, id)| id).collect();
            let got: Vec<u64> = catalog
                .k_nearest_in_category_where(&origin, category, k, metric, &[], |p| {
                    &p.poi_type == wanted
                })
                .into_iter()
                .map(|p| p.id.0)
                .collect();
            prop_assert_eq!(got, reference, "category {:?} type {}", category, wanted);
        }
    }

    #[test]
    fn distance_normalizer_bounds_every_pair(seed in 0u64..1000) {
        let catalog = SyntheticCityGenerator::new(
            CitySpec::paris(),
            tiny_config(seed, [4, 4, 8, 8]),
        )
        .generate();
        let norm = catalog.distance_normalizer(DistanceMetric::Equirectangular);
        for a in catalog.pois() {
            for b in catalog.pois() {
                let d = norm.normalized(&a.location, &b.location);
                prop_assert!((0.0..=1.0).contains(&d));
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_catalogs(seed in 0u64..500) {
        let catalog = SyntheticCityGenerator::new(
            CitySpec::paris(),
            tiny_config(seed, [3, 3, 6, 6]),
        )
        .generate();
        let json = grouptravel_dataset::io::to_json(&catalog).unwrap();
        let back = grouptravel_dataset::io::from_json(&json).unwrap();
        prop_assert_eq!(&back, &catalog);
        prop_assert_eq!(back.len(), catalog.len());
    }
}
