//! `GTBF1` — the GroupTravel binary frame format, a compact sibling
//! content-type to JSON for the engine wire protocol.
//!
//! A frame is:
//!
//! ```text
//! "GTBF"  version:u8  payload_len:varint  payload
//! ```
//!
//! and the payload is one encoded value tree (the same tree the vendored
//! [`serde::Value`] model describes), so every type that derives the
//! workspace `Serialize`/`Deserialize` speaks `GTBF1` for free:
//!
//! | tag  | value                                                    |
//! |------|----------------------------------------------------------|
//! | 0x00 | null                                                     |
//! | 0x01 | false                                                    |
//! | 0x02 | true                                                     |
//! | 0x03 | signed int — zigzag LEB128 varint                        |
//! | 0x04 | unsigned int — LEB128 varint                             |
//! | 0x05 | f64 — 8 raw little-endian IEEE-754 bits (bit-exact)      |
//! | 0x06 | string — varint byte length + UTF-8 bytes                |
//! | 0x07 | array — varint count + encoded elements                  |
//! | 0x08 | object — varint count + (name, value) pairs              |
//!
//! Object member names are interned against [`NAMES_V1`], a table frozen
//! with version 1: a name is a varint `N`, where `N == 0` means "inline"
//! (varint byte length + UTF-8 bytes follow) and `N >= 1` means
//! `NAMES_V1[N - 1]`. The versioning rule: the table is append-only and the
//! meaning of every tag and every assigned index is frozen for version 1;
//! any change to either bumps the frame version byte. New field or variant
//! names that miss the table fall back to inline encoding, which keeps old
//! decoders working without a version bump.
//!
//! The decoder is hostile-input safe: depth is capped, every declared
//! length is checked against the bytes actually remaining before any
//! allocation, and every failure is a typed [`BinError`] — never a panic.
//!
//! Encoding and decoding run on the streaming [`serde::Sink`] /
//! [`serde::Source`] fast path: derived types write tags and varints
//! straight into the output buffer and read fields straight off the wire,
//! with no intermediate [`Value`] tree on either side. The tree-based
//! entry points ([`encode_value_into`], [`decode_value`], [`value_len`])
//! remain as the differential reference — the streaming path is pinned
//! byte-identical to them by the round-trip suite.

use serde::{DeError, Deserialize, Kind, Serialize, Value};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The HTTP content type that selects `GTBF1` on the wire.
pub const BINARY_CONTENT_TYPE: &str = "application/x-gtbf";

/// Frame magic: the first four bytes of every `GTBF` frame.
pub const MAGIC: &[u8; 4] = b"GTBF";

/// The frame format version this module encodes.
pub const VERSION: u8 = 1;

/// Maximum value-tree depth the decoder will follow.
pub const MAX_DEPTH: usize = 128;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_UINT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Object member names frozen with format version 1, in index order
/// (wire index = position + 1; 0 is reserved for inline names). Covers
/// every field and variant name the protocol types used when the format
/// shipped. Append-only: never reorder or remove an entry.
pub const NAMES_V1: &[&str] = &[
    // Field names.
    "added",
    "alpha",
    "anchor",
    "at_ns",
    "available",
    "bbox",
    "beta",
    "budget",
    "build_latency",
    "builds",
    "by_category",
    "by_id",
    "catalog",
    "category",
    "center",
    "centroids",
    "checkin_log_mean",
    "checkin_log_std",
    "checkins",
    "ci_index",
    "city",
    "clustering_cache_hit",
    "clustering_cache_hits",
    "code",
    "cohesiveness",
    "cols",
    "command",
    "command_latency",
    "commands",
    "composite_items",
    "config",
    "consensus",
    "converged",
    "cost",
    "counts",
    "customizations",
    "data",
    "dims",
    "disagreement",
    "dispatch_latency",
    "doc_topic",
    "dropped",
    "duration_ns",
    "ended",
    "error",
    "failures",
    "fcm_trainings",
    "fingerprint",
    "fuzzifier",
    "gamma",
    "group",
    "group_id",
    "h",
    "id",
    "index",
    "interactions",
    "iterations",
    "k",
    "kind",
    "labels",
    "last_package",
    "lat",
    "latency",
    "latency_ns",
    "lda",
    "lda_trained",
    "lda_trainings",
    "location",
    "log",
    "lon",
    "max_fcm_iterations",
    "max_iterations",
    "max_km",
    "max_lat",
    "max_lon",
    "member",
    "members",
    "memberships",
    "message",
    "method",
    "metric",
    "min_lat",
    "min_lon",
    "model",
    "name",
    "neighborhoods",
    "num_topics",
    "objective",
    "ok",
    "outcome",
    "packages_served",
    "personalization",
    "poi",
    "poi_ids",
    "poi_topics",
    "poi_type",
    "pois",
    "pool_steals",
    "pool_tasks",
    "position",
    "preference",
    "preference_weight",
    "profile",
    "query",
    "rectangle",
    "refinements",
    "removed",
    "replaced",
    "representativity",
    "request",
    "requests",
    "required",
    "response",
    "responses",
    "rows",
    "sampler",
    "schema",
    "seed",
    "session_id",
    "snapshot",
    "spatial",
    "spread_deg",
    "stage",
    "stages",
    "start_ns",
    "state",
    "stats",
    "step",
    "step_latencies",
    "steps",
    "suggestions",
    "tag_noise",
    "tags",
    "tags_per_poi",
    "tolerance_km",
    "top_tags",
    "topic",
    "topic_word",
    "total_latency",
    "trace",
    "train_threads",
    "types",
    "user_id",
    "v",
    "vectors",
    "vocab_size",
    "vocabulary",
    "w",
    "weight",
    "weights",
    "words",
    "worker_threads",
    "x",
    "y",
    // Enum variant names (externally-tagged objects).
    "Accommodation",
    "Add",
    "Attraction",
    "Average",
    "AveragePairwise",
    "Batch",
    "BlockGibbsV1",
    "Build",
    "Clustering",
    "Collapsed",
    "Command",
    "CommandBatch",
    "Customize",
    "DeleteCi",
    "EmptyCatalog",
    "EmptyQuery",
    "End",
    "Ended",
    "Equirectangular",
    "Error",
    "ExportSession",
    "Generate",
    "Haversine",
    "ImportSession",
    "Imported",
    "Individual",
    "InsufficientCategory",
    "InvalidCommand",
    "InvalidOperation",
    "Large",
    "LeastMisery",
    "Medium",
    "NonUniform",
    "Package",
    "Refine",
    "Refined",
    "RegisterCatalog",
    "Registered",
    "Remove",
    "Replace",
    "Restaurant",
    "Session",
    "Small",
    "Stats",
    "SuggestReplacement",
    "Suggestion",
    "TopicModel",
    "Trace",
    "Traced",
    "Transportation",
    "Uniform",
    "UnknownCity",
    "UnknownSession",
    "Variance",
    "ZeroCompositeItems",
    // Result and Duration member names.
    "Ok",
    "Err",
    "secs",
    "nanos",
];

fn name_index(name: &str) -> Option<u32> {
    static INDEX: OnceLock<HashMap<&'static str, u32>> = OnceLock::new();
    INDEX
        .get_or_init(|| {
            NAMES_V1
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, i as u32 + 1))
                .collect()
        })
        .get(name)
        .copied()
}

/// A typed `GTBF` decode (or shape) failure. Every hostile input lands on
/// one of these; the decoder never panics and never reads past the buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The input ended before the structure it declared.
    UnexpectedEof,
    /// The frame does not start with `GTBF`.
    BadMagic,
    /// The frame carries a version this decoder does not speak.
    UnsupportedVersion(u8),
    /// An unknown value tag byte.
    BadTag(u8),
    /// An interned name index outside [`NAMES_V1`].
    BadName(u64),
    /// A string whose bytes are not UTF-8.
    BadUtf8,
    /// A varint longer than 10 bytes.
    BadVarint,
    /// The payload length declared in the frame header disagrees with the
    /// bytes the value actually consumed.
    LengthMismatch { declared: u64, actual: u64 },
    /// Bytes remain after the declared payload.
    TrailingBytes,
    /// The value tree nests deeper than [`MAX_DEPTH`].
    TooDeep,
    /// The decoded value tree does not match the requested type.
    Shape(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::UnexpectedEof => write!(f, "unexpected end of frame"),
            BinError::BadMagic => write!(f, "bad frame magic (want GTBF)"),
            BinError::UnsupportedVersion(v) => write!(f, "unsupported frame version {v}"),
            BinError::BadTag(t) => write!(f, "unknown value tag 0x{t:02x}"),
            BinError::BadName(n) => write!(f, "name index {n} outside the version-1 table"),
            BinError::BadUtf8 => write!(f, "string bytes are not UTF-8"),
            BinError::BadVarint => write!(f, "varint longer than 10 bytes"),
            BinError::LengthMismatch { declared, actual } => {
                write!(
                    f,
                    "declared payload length {declared} but value used {actual}"
                )
            }
            BinError::TrailingBytes => write!(f, "trailing bytes after payload"),
            BinError::TooDeep => write!(f, "value nests deeper than {MAX_DEPTH}"),
            BinError::Shape(msg) => write!(f, "value does not match type: {msg}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<DeError> for BinError {
    fn from(e: DeError) -> Self {
        BinError::Shape(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Appends an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn varint_len(mut v: u64) -> u64 {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// Appends an object header: the `0x08` tag plus the member count.
pub fn write_object_header(out: &mut Vec<u8>, members: usize) {
    out.push(TAG_OBJECT);
    write_varint(out, members as u64);
}

/// Appends an array header: the `0x07` tag plus the element count.
pub fn write_array_header(out: &mut Vec<u8>, elements: usize) {
    out.push(TAG_ARRAY);
    write_varint(out, elements as u64);
}

/// Appends an object member name — interned if it is in [`NAMES_V1`],
/// inline otherwise.
pub fn write_name(out: &mut Vec<u8>, name: &str) {
    match name_index(name) {
        Some(idx) => write_varint(out, u64::from(idx)),
        None => {
            out.push(0);
            write_varint(out, name.len() as u64);
            out.extend_from_slice(name.as_bytes());
        }
    }
}

/// Appends an unsigned-integer value (tag + varint).
pub fn write_uint(out: &mut Vec<u8>, v: u64) {
    out.push(TAG_UINT);
    write_varint(out, v);
}

/// Appends a string value (tag + varint length + bytes).
pub fn write_str(out: &mut Vec<u8>, s: &str) {
    out.push(TAG_STR);
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn name_len(name: &str) -> u64 {
    match name_index(name) {
        Some(idx) => varint_len(u64::from(idx)),
        None => 1 + varint_len(name.len() as u64) + name.len() as u64,
    }
}

/// Exact encoded byte length of a value — lets the frame header go first
/// without a second buffer or a splice.
pub fn value_len(value: &Value) -> u64 {
    match value {
        Value::Null | Value::Bool(_) => 1,
        Value::Int(i) => 1 + varint_len(zigzag(*i)),
        Value::UInt(u) => 1 + varint_len(*u),
        Value::Float(_) => 9,
        Value::Str(s) => 1 + varint_len(s.len() as u64) + s.len() as u64,
        Value::Array(items) => {
            1 + varint_len(items.len() as u64) + items.iter().map(value_len).sum::<u64>()
        }
        Value::Object(entries) => {
            1 + varint_len(entries.len() as u64)
                + entries
                    .iter()
                    .map(|(name, v)| name_len(name) + value_len(v))
                    .sum::<u64>()
        }
    }
}

/// Appends the encoding of one value tree (no frame header).
pub fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            write_varint(out, zigzag(*i));
        }
        Value::UInt(u) => write_uint(out, *u),
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => write_str(out, s),
        Value::Array(items) => {
            write_array_header(out, items.len());
            for item in items {
                encode_value_into(item, out);
            }
        }
        Value::Object(entries) => {
            write_object_header(out, entries.len());
            for (name, v) in entries {
                write_name(out, name);
                encode_value_into(v, out);
            }
        }
    }
}

/// Appends a frame header (`GTBF`, version, payload length) for a payload
/// of `payload_len` bytes. The caller appends exactly that many payload
/// bytes after it.
pub fn write_frame_header(out: &mut Vec<u8>, payload_len: u64) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_varint(out, payload_len);
}

/// Wraps an already-encoded payload in a `GTBF1` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 16);
    write_frame_header(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

/// A [`serde::Sink`] that appends `GTBF1` payload bytes. Every method maps
/// 1:1 onto the low-level writers [`encode_value_into`] uses, so streaming
/// a value through this sink produces exactly the bytes the tree encoder
/// would.
struct BinSink<'a> {
    out: &'a mut Vec<u8>,
}

impl serde::Sink for BinSink<'_> {
    fn null(&mut self) {
        self.out.push(TAG_NULL);
    }
    fn boolean(&mut self, v: bool) {
        self.out.push(if v { TAG_TRUE } else { TAG_FALSE });
    }
    fn int(&mut self, v: i64) {
        self.out.push(TAG_INT);
        write_varint(self.out, zigzag(v));
    }
    fn uint(&mut self, v: u64) {
        write_uint(self.out, v);
    }
    fn float(&mut self, v: f64) {
        self.out.push(TAG_FLOAT);
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn string(&mut self, v: &str) {
        write_str(self.out, v);
    }
    fn array(&mut self, len: usize) {
        write_array_header(self.out, len);
    }
    fn object(&mut self, len: usize) {
        write_object_header(self.out, len);
    }
    fn name(&mut self, name: &str) {
        write_name(self.out, name);
    }
}

/// Appends the `GTBF1` payload encoding of a value (no frame header),
/// streaming it without building a [`Value`] tree. Byte-identical to
/// `encode_value_into(&value.to_value(), out)`.
pub fn encode_payload_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) {
    value.stream(&mut BinSink { out });
}

/// Encodes a value as a complete `GTBF1` frame appended to `out`.
pub fn encode_into<T: Serialize + ?Sized>(value: &T, out: &mut Vec<u8>) {
    // The header carries the payload length, so the payload streams into a
    // scratch buffer first; this still skips the `Value` tree entirely.
    let mut payload = Vec::with_capacity(256);
    encode_payload_into(value, &mut payload);
    write_frame_header(out, payload.len() as u64);
    out.extend_from_slice(&payload);
}

/// Encodes a value as a complete `GTBF1` frame.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// First structural (byte-level) failure hit on the streaming path.
    /// [`serde::Source`] methods surface errors as [`DeError`], which
    /// erases the variant; recording it here lets [`decode`] return the
    /// typed [`BinError`] instead of a stringified copy.
    err: Option<BinError>,
}

impl<'a> Decoder<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.remaining() < n {
            return Err(BinError::UnexpectedEof);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, BinError> {
        let b = *self.bytes.get(self.pos).ok_or(BinError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, BinError> {
        let mut value = 0u64;
        for shift in 0..10 {
            let b = self.byte()?;
            // The 10th byte may only carry the top bit of a u64.
            if shift == 9 && b > 0x01 {
                return Err(BinError::BadVarint);
            }
            value |= u64::from(b & 0x7f) << (shift * 7);
            if b & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(BinError::BadVarint)
    }

    /// Reads a declared count/length and rejects it up front when the
    /// remaining input could not possibly satisfy it (each item needs at
    /// least `min_item_bytes`), so hostile lengths never drive allocation.
    fn checked_len(&mut self, min_item_bytes: usize) -> Result<usize, BinError> {
        let declared = self.varint()?;
        let max = (self.remaining() / min_item_bytes.max(1)) as u64;
        if declared > max {
            return Err(BinError::UnexpectedEof);
        }
        Ok(declared as usize)
    }

    fn raw_string(&mut self) -> Result<String, BinError> {
        let len = self.checked_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinError::BadUtf8)
    }

    fn raw_name(&mut self) -> Result<String, BinError> {
        let idx = self.varint()?;
        if idx == 0 {
            return self.raw_string();
        }
        let table_pos = (idx - 1) as usize;
        NAMES_V1
            .get(table_pos)
            .map(|&n| n.to_string())
            .ok_or(BinError::BadName(idx))
    }

    /// Records the first structural failure and hands back its [`DeError`]
    /// rendering for the [`serde::Source`] caller.
    fn structural(&mut self, e: BinError) -> DeError {
        let rendered = DeError::custom(e.to_string());
        self.err.get_or_insert(e);
        rendered
    }

    /// Skips one complete encoded value, validating it exactly as the tree
    /// decoder would (tags, lengths, UTF-8, name indices) without
    /// allocating. `depth` counts from the skip's own root: the streaming
    /// path cannot see how deep its caller already is, but typed decode
    /// nesting is shallow, so the budget still bounds the total stack.
    fn skip(&mut self, depth: usize) -> Result<(), BinError> {
        if depth > MAX_DEPTH {
            return Err(BinError::TooDeep);
        }
        match self.byte()? {
            TAG_NULL | TAG_FALSE | TAG_TRUE => Ok(()),
            TAG_INT | TAG_UINT => self.varint().map(|_| ()),
            TAG_FLOAT => self.take(8).map(|_| ()),
            TAG_STR => {
                let len = self.checked_len(1)?;
                let bytes = self.take(len)?;
                std::str::from_utf8(bytes).map_err(|_| BinError::BadUtf8)?;
                Ok(())
            }
            TAG_ARRAY => {
                let count = self.checked_len(1)?;
                for _ in 0..count {
                    self.skip(depth + 1)?;
                }
                Ok(())
            }
            TAG_OBJECT => {
                let count = self.checked_len(2)?;
                for _ in 0..count {
                    self.skip_name()?;
                    self.skip(depth + 1)?;
                }
                Ok(())
            }
            other => Err(BinError::BadTag(other)),
        }
    }

    /// Skips one member name, validating it like [`Decoder::raw_name`]
    /// without allocating.
    fn skip_name(&mut self) -> Result<(), BinError> {
        let idx = self.varint()?;
        if idx == 0 {
            let len = self.checked_len(1)?;
            let bytes = self.take(len)?;
            std::str::from_utf8(bytes).map_err(|_| BinError::BadUtf8)?;
            return Ok(());
        }
        if (idx - 1) as usize >= NAMES_V1.len() {
            return Err(BinError::BadName(idx));
        }
        Ok(())
    }

    /// Consumes the expected value tag, or fails: structurally on EOF,
    /// with a plain shape error on a tag mismatch (a mismatch means the
    /// frame is well-formed but does not fit the requested type).
    fn expect_tag(&mut self, want: u8, what: &str) -> Result<(), DeError> {
        match self.bytes.get(self.pos) {
            None => Err(self.structural(BinError::UnexpectedEof)),
            Some(&t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(&t) => Err(DeError::custom(format!(
                "expected {what}, got tag 0x{t:02x}"
            ))),
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, BinError> {
        if depth > MAX_DEPTH {
            return Err(BinError::TooDeep);
        }
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(unzigzag(self.varint()?))),
            TAG_UINT => Ok(Value::UInt(self.varint()?)),
            TAG_FLOAT => {
                let raw = self.take(8)?;
                let mut bits = [0u8; 8];
                bits.copy_from_slice(raw);
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bits))))
            }
            TAG_STR => Ok(Value::Str(self.raw_string()?)),
            TAG_ARRAY => {
                let count = self.checked_len(1)?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let count = self.checked_len(2)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = self.raw_name()?;
                    let v = self.value(depth + 1)?;
                    entries.push((name, v));
                }
                Ok(Value::Object(entries))
            }
            other => Err(BinError::BadTag(other)),
        }
    }
}

impl serde::Source for Decoder<'_> {
    fn peek(&mut self) -> Result<Kind, DeError> {
        match self.bytes.get(self.pos) {
            None => Err(self.structural(BinError::UnexpectedEof)),
            Some(&TAG_NULL) => Ok(Kind::Null),
            Some(&(TAG_FALSE | TAG_TRUE)) => Ok(Kind::Bool),
            Some(&TAG_INT) => Ok(Kind::Int),
            Some(&TAG_UINT) => Ok(Kind::UInt),
            Some(&TAG_FLOAT) => Ok(Kind::Float),
            Some(&TAG_STR) => Ok(Kind::Str),
            Some(&TAG_ARRAY) => Ok(Kind::Array),
            Some(&TAG_OBJECT) => Ok(Kind::Object),
            Some(&other) => Err(self.structural(BinError::BadTag(other))),
        }
    }

    fn null(&mut self) -> Result<(), DeError> {
        self.expect_tag(TAG_NULL, "null")
    }

    fn boolean(&mut self) -> Result<bool, DeError> {
        match self.bytes.get(self.pos) {
            None => Err(self.structural(BinError::UnexpectedEof)),
            Some(&t @ (TAG_FALSE | TAG_TRUE)) => {
                self.pos += 1;
                Ok(t == TAG_TRUE)
            }
            Some(&t) => Err(DeError::custom(format!("expected bool, got tag 0x{t:02x}"))),
        }
    }

    fn int(&mut self) -> Result<i64, DeError> {
        self.expect_tag(TAG_INT, "integer")?;
        match self.varint() {
            Ok(u) => Ok(unzigzag(u)),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn uint(&mut self) -> Result<u64, DeError> {
        self.expect_tag(TAG_UINT, "unsigned integer")?;
        match self.varint() {
            Ok(u) => Ok(u),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn float(&mut self) -> Result<f64, DeError> {
        self.expect_tag(TAG_FLOAT, "float")?;
        match self.take(8) {
            Ok(raw) => {
                let mut bits = [0u8; 8];
                bits.copy_from_slice(raw);
                Ok(f64::from_bits(u64::from_le_bytes(bits)))
            }
            Err(e) => Err(self.structural(e)),
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.expect_tag(TAG_STR, "string")?;
        match self.raw_string() {
            Ok(s) => Ok(s),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn array(&mut self) -> Result<usize, DeError> {
        self.expect_tag(TAG_ARRAY, "array")?;
        match self.checked_len(1) {
            Ok(n) => Ok(n),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn object(&mut self) -> Result<usize, DeError> {
        self.expect_tag(TAG_OBJECT, "object")?;
        match self.checked_len(2) {
            Ok(n) => Ok(n),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn name(&mut self) -> Result<Cow<'static, str>, DeError> {
        let idx = match self.varint() {
            Ok(idx) => idx,
            Err(e) => return Err(self.structural(e)),
        };
        if idx == 0 {
            return match self.raw_string() {
                Ok(s) => Ok(Cow::Owned(s)),
                Err(e) => Err(self.structural(e)),
            };
        }
        match NAMES_V1.get((idx - 1) as usize) {
            Some(&n) => Ok(Cow::Borrowed(n)),
            None => Err(self.structural(BinError::BadName(idx))),
        }
    }

    fn skip_value(&mut self) -> Result<(), DeError> {
        match self.skip(0) {
            Ok(()) => Ok(()),
            Err(e) => Err(self.structural(e)),
        }
    }

    fn read_value(&mut self) -> Result<Value, DeError> {
        match self.value(0) {
            Ok(v) => Ok(v),
            Err(e) => Err(self.structural(e)),
        }
    }
}

/// Decodes one complete `GTBF1` frame into a value tree. The whole input
/// must be exactly one frame: magic and version are checked, the declared
/// payload length must match the bytes the value consumed, and trailing
/// bytes are an error (so a desynced stream cannot silently resync).
pub fn decode_value(input: &[u8]) -> Result<Value, BinError> {
    let mut dec = frame_payload(input)?;
    let payload_start = dec.pos;
    let value = dec.value(0)?;
    finish_frame(&dec, payload_start)?;
    Ok(value)
}

/// Checks the frame header (magic, version, declared payload length) and
/// returns a decoder positioned at the payload.
fn frame_payload(input: &[u8]) -> Result<Decoder<'_>, BinError> {
    let mut dec = Decoder {
        bytes: input,
        pos: 0,
        err: None,
    };
    if dec.take(4).map_err(|_| BinError::BadMagic)? != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = dec.byte()?;
    if version != VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let declared = dec.varint()?;
    if declared > dec.remaining() as u64 {
        return Err(BinError::UnexpectedEof);
    }
    Ok(dec)
}

/// Re-checks the declared payload length against actual consumption and
/// rejects trailing bytes, after the payload has been decoded.
fn finish_frame(dec: &Decoder<'_>, payload_start: usize) -> Result<(), BinError> {
    // Reparse the declared length from the already-validated header.
    let mut header = Decoder {
        bytes: dec.bytes,
        pos: 5,
        err: None,
    };
    let declared = header.varint().expect("header was validated");
    let actual = (dec.pos - payload_start) as u64;
    if actual != declared {
        return Err(BinError::LengthMismatch { declared, actual });
    }
    if dec.pos != dec.bytes.len() {
        return Err(BinError::TrailingBytes);
    }
    Ok(())
}

/// Decodes one complete `GTBF1` frame into `T`, streaming fields straight
/// off the wire with no intermediate [`Value`] tree. Accepts exactly the
/// frames `T::from_value(&decode_value(input)?)` accepts.
pub fn decode<T: Deserialize>(input: &[u8]) -> Result<T, BinError> {
    let mut dec = frame_payload(input)?;
    let payload_start = dec.pos;
    let value = match T::decode(&mut dec) {
        Ok(v) => v,
        // A structural failure recorded by the Source keeps its typed
        // variant; anything else is a shape mismatch.
        Err(e) => {
            return Err(dec
                .err
                .take()
                .unwrap_or_else(|| BinError::Shape(e.to_string())))
        }
    };
    finish_frame(&dec, payload_start)?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) -> Value {
        let mut payload = Vec::new();
        encode_value_into(v, &mut payload);
        assert_eq!(
            payload.len() as u64,
            value_len(v),
            "value_len must be exact"
        );
        decode_value(&frame(&payload)).expect("round trip")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::UInt(0),
            Value::UInt(127),
            Value::UInt(128),
            Value::UInt(u64::MAX),
            Value::Float(0.1),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("é λ 中 😀".to_string()),
        ] {
            let back = roundtrip_value(&v);
            match (&v, &back) {
                // NaN != NaN under PartialEq; compare bits instead.
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(format!("{v:?}"), format!("{back:?}")),
            }
        }
    }

    #[test]
    fn containers_round_trip_with_interned_and_inline_names() {
        let v = Value::Object(vec![
            // "city" is in NAMES_V1; "not_a_known_name" is not.
            ("city".to_string(), Value::Str("paris".to_string())),
            (
                "not_a_known_name".to_string(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Null]),
            ),
        ]);
        assert_eq!(format!("{:?}", roundtrip_value(&v)), format!("{v:?}"));
        // The interned member must actually be smaller than the inline one.
        let mut interned = Vec::new();
        write_name(&mut interned, "city");
        let mut inline = Vec::new();
        write_name(&mut inline, "not_a_known_name");
        assert!(interned.len() < inline.len());
        assert_eq!(inline[0], 0, "unknown names take the inline escape");
    }

    #[test]
    fn name_table_is_its_own_inverse_and_duplicate_free() {
        let mut seen = std::collections::HashSet::new();
        for (i, &name) in NAMES_V1.iter().enumerate() {
            assert!(seen.insert(name), "duplicate table entry {name}");
            assert_eq!(name_index(name), Some(i as u32 + 1));
        }
    }

    #[test]
    fn typed_encode_decode_round_trips() {
        let v: Vec<(u64, f64, String)> = vec![(1, 0.5, "a".into()), (2, -3.25, "é".into())];
        let frame = encode(&v);
        let back: Vec<(u64, f64, String)> = decode(&frame).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn zigzag_is_its_own_inverse() {
        for i in [0i64, 1, -1, 63, -64, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(i)), i);
        }
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let v = Value::Object(vec![
            ("city".to_string(), Value::Str("paris".to_string())),
            (
                "weights".to_string(),
                Value::Array(vec![Value::Float(0.25); 4]),
            ),
            ("budget".to_string(), Value::Int(-12)),
        ]);
        let frame = encode_value_frame(&v);
        for cut in 0..frame.len() {
            let err = decode_value(&frame[..cut]).expect_err("truncated frame must fail");
            // Any typed error is fine; a panic or an Ok would be the bug.
            let _ = err.to_string();
        }
        assert!(decode_value(&frame).is_ok());
    }

    #[test]
    fn bad_magic_and_versions_are_rejected() {
        let mut frame = encode(&7u64);
        assert!(decode_value(&frame).is_ok());
        frame[0] = b'X';
        assert_eq!(decode_value(&frame), Err(BinError::BadMagic));
        frame[0] = b'G';
        frame[4] = 2;
        assert_eq!(decode_value(&frame), Err(BinError::UnsupportedVersion(2)));
        frame[4] = 0;
        assert_eq!(decode_value(&frame), Err(BinError::UnsupportedVersion(0)));
    }

    #[test]
    fn declared_length_must_match_consumption() {
        let mut payload = Vec::new();
        encode_value_into(&Value::UInt(7), &mut payload);
        // Lie: declare one byte more than the value uses, then pad.
        let mut out = Vec::new();
        write_frame_header(&mut out, payload.len() as u64 + 1);
        out.extend_from_slice(&payload);
        out.push(0x00);
        assert_eq!(
            decode_value(&out),
            Err(BinError::LengthMismatch {
                declared: payload.len() as u64 + 1,
                actual: payload.len() as u64,
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&7u64);
        frame.push(0x00);
        assert_eq!(decode_value(&frame), Err(BinError::TrailingBytes));
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A string claiming u64::MAX bytes in a 32-byte frame.
        let mut payload = vec![TAG_STR];
        write_varint(&mut payload, u64::MAX);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::UnexpectedEof));
        // An array claiming 2^40 elements.
        let mut payload = vec![TAG_ARRAY];
        write_varint(&mut payload, 1 << 40);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::UnexpectedEof));
        // An object claiming 2^40 members.
        let mut payload = vec![TAG_OBJECT];
        write_varint(&mut payload, 1 << 40);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::UnexpectedEof));
    }

    #[test]
    fn depth_bombs_are_rejected() {
        // MAX_DEPTH+2 nested single-element arrays around a null.
        let mut payload = Vec::new();
        for _ in 0..(MAX_DEPTH + 2) {
            payload.push(TAG_ARRAY);
            payload.push(1);
        }
        payload.push(TAG_NULL);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::TooDeep));
    }

    #[test]
    fn unknown_tags_and_name_indices_are_rejected() {
        assert_eq!(decode_value(&frame(&[0x3f])), Err(BinError::BadTag(0x3f)));
        let mut payload = Vec::new();
        write_object_header(&mut payload, 1);
        write_varint(&mut payload, NAMES_V1.len() as u64 + 1);
        payload.push(TAG_NULL);
        assert_eq!(
            decode_value(&frame(&payload)),
            Err(BinError::BadName(NAMES_V1.len() as u64 + 1))
        );
    }

    #[test]
    fn overlong_varints_are_rejected() {
        let mut payload = vec![TAG_UINT];
        payload.extend_from_slice(&[0x80; 10]);
        payload.push(0x00);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::BadVarint));
        // A 10th byte carrying more than the top u64 bit.
        let mut payload = vec![TAG_UINT];
        payload.extend_from_slice(&[0x80; 9]);
        payload.push(0x02);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::BadVarint));
    }

    #[test]
    fn invalid_utf8_in_strings_is_rejected() {
        let mut payload = vec![TAG_STR];
        write_varint(&mut payload, 2);
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(decode_value(&frame(&payload)), Err(BinError::BadUtf8));
    }

    #[test]
    fn spliced_low_level_encoding_matches_derive() {
        // Hand-assemble {"v":1,"city":"paris"} with the low-level writers
        // and check it matches the tree encoder byte for byte.
        let tree = Value::Object(vec![
            ("v".to_string(), Value::UInt(1)),
            ("city".to_string(), Value::Str("paris".to_string())),
        ]);
        let mut derive = Vec::new();
        encode_value_into(&tree, &mut derive);
        let mut hand = Vec::new();
        write_object_header(&mut hand, 2);
        write_name(&mut hand, "v");
        write_uint(&mut hand, 1);
        write_name(&mut hand, "city");
        write_str(&mut hand, "paris");
        assert_eq!(hand, derive);
        assert_eq!(frame(&hand), encode_value_frame(&tree));
    }

    fn encode_value_frame(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame_header(&mut out, value_len(v));
        encode_value_into(v, &mut out);
        out
    }
}
