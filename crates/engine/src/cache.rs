//! A small thread-safe LRU for expensive model artifacts.
//!
//! Two instantiations serve the engine: [`ClusteringCache`] holds
//! fuzzy-c-means **centroids** keyed by `(catalog fingerprint, FcmConfig
//! cache key)` — centroids are all a build consumes, and dropping the
//! flat `n × k` `DenseMatrix` of memberships keeps each entry a few
//! hundred bytes instead of megabytes at large catalog scale — and the
//! registry holds trained item vectorizers keyed by `(catalog fingerprint,
//! LdaConfig cache key)`; since PR 4 the vectorizer's LDA θ/φ payloads are
//! flat matrices too, so a cached entry is two contiguous buffers rather
//! than a forest of per-row allocations.
//! Both key components cover every input that influences the artifact, so
//! equal keys guarantee an identical result and a cached value can be
//! substituted for a fresh computation.
//!
//! Values are `Arc`-shared — a hit never copies the artifact, and evicted
//! entries stay alive for requests already holding them. The cache is a
//! plain `Mutex` around a `HashMap` with logical-clock LRU stamps: lookups
//! and insertions are O(1); eviction scans for the oldest stamp, which is
//! O(capacity) but only runs on insertion past capacity over a deliberately
//! small map (tens of entries — one per city × configuration in use).

use grouptravel_geo::GeoPoint;
use grouptravel_obs::Counter;
use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Cache key of model artifacts: `(catalog fingerprint, config cache key)`.
pub type ModelKey = (u64, u64);

/// The engine's clustering cache: fuzzy-c-means centroids by [`ModelKey`].
pub type ClusteringCache = LruCache<ModelKey, Vec<GeoPoint>>;

struct Slot<V> {
    value: Arc<V>,
    last_used: u64,
}

/// How [`LruCache::get_or_train`] satisfied a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached; nothing ran.
    Hit,
    /// This call ran the training closure and cached the result.
    Trained,
    /// Another thread was already training the same key; this call waited
    /// for its result instead of training a duplicate.
    Coalesced,
}

/// A thread-safe LRU cache of `Arc`-shared values.
pub struct LruCache<K, V> {
    slots: Mutex<HashMap<K, Slot<V>>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Keys whose value is being computed right now, for request
    /// coalescing: concurrent cold misses on one key run the expensive
    /// training once ([`LruCache::get_or_train`]).
    inflight: Mutex<HashSet<K>>,
    inflight_done: Condvar,
    /// Optional eviction counter, attached once by the owner
    /// ([`LruCache::on_evict`]); bumped every time a full cache drops its
    /// least-recently-used entry.
    evictions: OnceLock<Arc<Counter>>,
}

impl<K: Eq + Hash + Copy, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` values (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight: Mutex::new(HashSet::new()),
            inflight_done: Condvar::new(),
            evictions: OnceLock::new(),
        }
    }

    /// Attaches a counter that tracks evictions. Only the first attachment
    /// takes effect (the cache outlives any one metrics registry handle).
    pub fn on_evict(&self, counter: Arc<Counter>) {
        let _ = self.evictions.set(counter);
    }

    /// The cached value for `key`, or the result of running `train` —
    /// **coalesced**: when several threads miss the same key concurrently,
    /// exactly one runs `train` and the others block until its result lands
    /// in the cache, instead of burning cores on identical trainings. This
    /// is the single-flight discipline the HTTP front-end relies on for a
    /// stampede of identical cold build requests.
    ///
    /// Distinct keys never wait on each other's trainings (waiters
    /// re-check their own key whenever any training finishes). A failed
    /// training is not cached: its waiters retry, one of them becoming the
    /// next trainer.
    ///
    /// # Errors
    /// Propagates `train`'s error to the caller that ran it.
    pub fn get_or_train<E>(
        &self,
        key: K,
        train: impl FnOnce() -> Result<V, E>,
    ) -> Result<(Arc<V>, CacheOutcome), E> {
        if let Some(value) = self.get(key) {
            return Ok((value, CacheOutcome::Hit));
        }
        {
            let mut inflight = self.inflight.lock().expect("in-flight set poisoned");
            loop {
                // Re-check the cache under the in-flight lock: a training
                // for this key may have completed (inserted + left the
                // in-flight set) between our miss above — or our last
                // wake-up — and acquiring the lock. Claiming leadership on
                // that stale miss would re-run work that is already cached.
                if let Some(value) = self.get(key) {
                    return Ok((value, CacheOutcome::Coalesced));
                }
                if !inflight.contains(&key) {
                    inflight.insert(key);
                    break;
                }
                // A trainer is in flight for our key: wait for *some*
                // training to finish, then loop. If ours succeeded the
                // re-check returns its value; if it failed (nothing
                // cached, key gone) we become the new trainer.
                inflight = self
                    .inflight_done
                    .wait(inflight)
                    .expect("in-flight set poisoned");
            }
        }
        // Always leave the in-flight set consistent — even when `train`
        // panics — or every later request for this key would block forever.
        struct Unflight<'c, K: Eq + Hash + Copy, V> {
            cache: &'c LruCache<K, V>,
            key: K,
        }
        impl<K: Eq + Hash + Copy, V> Drop for Unflight<'_, K, V> {
            fn drop(&mut self) {
                self.cache
                    .inflight
                    .lock()
                    .expect("in-flight set poisoned")
                    .remove(&self.key);
                self.cache.inflight_done.notify_all();
            }
        }
        let _cleanup = Unflight { cache: self, key };
        let value = train()?;
        Ok((self.insert(key, value), CacheOutcome::Trained))
    }

    /// Looks up a value, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: K) -> Option<Arc<V>> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().expect("model cache poisoned");
        match slots.get_mut(&key) {
            Some(slot) => {
                slot.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a value, evicting the least-recently-used entry when the
    /// cache is full. Returns the value as stored (if another thread raced
    /// the same key in first, the incumbent wins, so concurrent requests
    /// converge on one shared result).
    pub fn insert(&self, key: K, value: V) -> Arc<V> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().expect("model cache poisoned");
        if let Some(existing) = slots.get_mut(&key) {
            existing.last_used = stamp;
            return Arc::clone(&existing.value);
        }
        if slots.len() >= self.capacity {
            if let Some(oldest) = slots
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| *k)
            {
                slots.remove(&oldest);
                if let Some(counter) = self.evictions.get() {
                    counter.inc();
                }
            }
        }
        let value = Arc::new(value);
        slots.insert(
            key,
            Slot {
                value: Arc::clone(&value),
                last_used: stamp,
            },
        );
        value
    }

    /// Number of cached values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().expect("model cache poisoned").len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(tag: f64) -> Vec<GeoPoint> {
        vec![GeoPoint::new_unchecked(tag, tag)]
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = ClusteringCache::new(4);
        assert!(cache.get((1, 1)).is_none());
        cache.insert((1, 1), dummy(1.0));
        let hit = cache.get((1, 1)).unwrap();
        assert_eq!(hit[0].lat, 1.0);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let cache = ClusteringCache::new(2);
        cache.insert((1, 0), dummy(1.0));
        cache.insert((2, 0), dummy(2.0));
        // Touch (1, 0) so (2, 0) is the LRU.
        assert!(cache.get((1, 0)).is_some());
        cache.insert((3, 0), dummy(3.0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get((2, 0)).is_none(), "LRU entry should be evicted");
        assert!(cache.get((1, 0)).is_some());
        assert!(cache.get((3, 0)).is_some());
    }

    #[test]
    fn racing_insert_keeps_the_incumbent() {
        let cache = ClusteringCache::new(2);
        cache.insert((1, 0), dummy(1.0));
        let stored = cache.insert((1, 0), dummy(9.0));
        assert_eq!(stored[0].lat, 1.0);
    }

    #[test]
    fn evicted_entries_stay_alive_for_holders() {
        let cache = ClusteringCache::new(1);
        let held = cache.insert((1, 0), dummy(1.0));
        cache.insert((2, 0), dummy(2.0));
        assert!(cache.get((1, 0)).is_none());
        assert_eq!(held[0].lat, 1.0);
    }

    #[test]
    fn concurrent_cold_misses_train_exactly_once() {
        let cache = ClusteringCache::new(4);
        let trainings = AtomicU64::new(0);
        let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let (value, outcome) = cache
                            .get_or_train((1, 1), || {
                                trainings.fetch_add(1, Ordering::Relaxed);
                                // Hold the flight long enough that the other
                                // threads really do arrive mid-training.
                                std::thread::sleep(std::time::Duration::from_millis(30));
                                Ok::<_, ()>(dummy(1.0))
                            })
                            .unwrap();
                        assert_eq!(value[0].lat, 1.0);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            trainings.load(Ordering::Relaxed),
            1,
            "identical cold misses must coalesce onto one training"
        );
        assert_eq!(
            outcomes
                .iter()
                .filter(|o| **o == CacheOutcome::Trained)
                .count(),
            1
        );
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, CacheOutcome::Trained | CacheOutcome::Coalesced)));
        // A later lookup is a plain hit.
        let (_, outcome) = cache
            .get_or_train((1, 1), || Ok::<_, ()>(dummy(9.0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let cache = ClusteringCache::new(4);
        let trainings = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for key in 0..4u64 {
                let cache = &cache;
                let trainings = &trainings;
                scope.spawn(move || {
                    cache
                        .get_or_train((key, 0), || {
                            trainings.fetch_add(1, Ordering::Relaxed);
                            Ok::<_, ()>(dummy(key as f64))
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(trainings.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn failed_trainings_are_not_cached_and_waiters_retry() {
        let cache = ClusteringCache::new(4);
        let err = cache.get_or_train((1, 1), || Err::<Vec<GeoPoint>, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        // The key is not stuck in-flight: the next call trains again.
        let (value, outcome) = cache
            .get_or_train((1, 1), || Ok::<_, &str>(dummy(2.0)))
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Trained);
        assert_eq!(value[0].lat, 2.0);
    }

    #[test]
    fn works_for_non_clustering_values_too() {
        let cache: LruCache<u32, String> = LruCache::new(2);
        cache.insert(1, "one".to_string());
        assert_eq!(cache.get(1).unwrap().as_str(), "one");
        assert!(cache.get(2).is_none());
    }
}
