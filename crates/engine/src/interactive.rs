//! Interactive sessions through the engine (§3.3 served concurrently).
//!
//! The paper's central claim is *interactive* generation and customization:
//! a group builds a package, members add/remove/replace POIs, the system
//! suggests replacements, and the accumulated feedback refines the group
//! profile for the next build. PR 1 served only the first step (one-shot
//! builds) through the concurrent engine; this module routes the whole
//! multi-step interaction through it.
//!
//! A [`SessionCommand`] is one step of a group's interaction. Commands are
//! served by [`crate::Engine::serve_command`] (single step) and
//! [`crate::Engine::serve_commands_batch`] (many groups at once — commands
//! of one session run in submission order, distinct sessions fan out over
//! worker threads). The session's authoritative state — current package,
//! refined profile, pooled interactions, step counter — lives in the
//! engine's [`crate::SessionStore`]; the client only ships deltas.
//!
//! Every mutation goes through the same `grouptravel` core entry points the
//! one-shot [`grouptravel::GroupTravelSession`] uses ([`grouptravel::apply_op`],
//! [`grouptravel::refine_batch`], [`grouptravel::refine_individual`]), which
//! is what makes the engine path provably bit-identical to a one-shot
//! replay (property-tested in `tests/interactive_differential.rs`).

use crate::store::{SessionId, SessionState};
use crate::EngineError;
use grouptravel::{BuildConfig, CustomizationOp, GroupQuery, RefinementStrategy, TravelPackage};
use grouptravel_dataset::{Poi, PoiId};
use grouptravel_profile::{ConsensusMethod, Group, GroupProfile};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Everything a `Build` step ships: where to build and for whom.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildSpec {
    /// City to build in (must be registered with the engine). Later builds
    /// may name a different city: the session moves, keeping its profile —
    /// the cross-city transfer scenario of §4.4.4.
    pub city: String,
    /// The group's consensus profile; `None` reuses the session's.
    pub profile: Option<GroupProfile>,
    /// Member profiles, enabling [`RefinementStrategy::Individual`].
    pub group: Option<Group>,
    /// Consensus method used to re-aggregate after individual refinement
    /// (and to derive `profile` when it is `None`).
    pub consensus: Option<ConsensusMethod>,
    /// The group query ⟨#acco, #trans, #rest, #attr, budget⟩.
    pub query: GroupQuery,
    /// Build configuration (`metric` is overridden by the engine's).
    pub config: BuildConfig,
}

/// One step of a group's interactive session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionCommand {
    /// Build (or rebuild) the session's package. The first build must carry
    /// a profile — either explicitly or derivable from `group` +
    /// `consensus`; later builds may pass `profile: None` to reuse the
    /// session's current (possibly refined) profile, which is how a
    /// refinement becomes visible in the next package. (Boxed: the spec
    /// dwarfs every other command.)
    Build(Box<BuildSpec>),
    /// Apply one customization operator to the session's current package.
    Customize(CustomizationOp),
    /// Refine the session's profile from the interactions accumulated since
    /// the last refinement (which are consumed).
    Refine(RefinementStrategy),
    /// Ask the system for the `REPLACE` recommendation without applying it.
    SuggestReplacement {
        /// Index of the composite item in the package.
        ci_index: usize,
        /// The POI a replacement is wanted for.
        poi: PoiId,
    },
    /// End the session, returning its final state and freeing its slot.
    End,
}

impl SessionCommand {
    /// A minimal `Build` carrying an explicit profile.
    #[must_use]
    pub fn build(
        city: impl Into<String>,
        profile: GroupProfile,
        query: GroupQuery,
        config: BuildConfig,
    ) -> Self {
        SessionCommand::Build(Box::new(BuildSpec {
            city: city.into(),
            profile: Some(profile),
            group: None,
            consensus: None,
            query,
            config,
        }))
    }

    /// A `Build` carrying the member profiles and consensus method, so the
    /// session supports [`RefinementStrategy::Individual`]. The consensus
    /// profile is derived from the group.
    #[must_use]
    pub fn build_for_group(
        city: impl Into<String>,
        group: Group,
        consensus: ConsensusMethod,
        query: GroupQuery,
        config: BuildConfig,
    ) -> Self {
        SessionCommand::Build(Box::new(BuildSpec {
            city: city.into(),
            profile: None,
            group: Some(group),
            consensus: Some(consensus),
            query,
            config,
        }))
    }

    /// A `Build` reusing the session's current (possibly refined) profile.
    #[must_use]
    pub fn rebuild(city: impl Into<String>, query: GroupQuery, config: BuildConfig) -> Self {
        SessionCommand::Build(Box::new(BuildSpec {
            city: city.into(),
            profile: None,
            group: None,
            consensus: None,
            query,
            config,
        }))
    }

    /// Display name of the command kind (used in stats and errors).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SessionCommand::Build(_) => "build",
            SessionCommand::Customize(_) => "customize",
            SessionCommand::Refine(_) => "refine",
            SessionCommand::SuggestReplacement { .. } => "suggest-replacement",
            SessionCommand::End => "end",
        }
    }
}

/// One addressed command: which session it belongs to, which member issued
/// it, and the step itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandRequest {
    /// The group session the command belongs to.
    pub session_id: SessionId,
    /// The group member who issued the command (attributes `Customize`
    /// interaction logs for the *individual* refinement strategy). `None`
    /// attributes to the anonymous member id 0.
    pub member: Option<u64>,
    /// The step to execute.
    pub command: SessionCommand,
}

impl CommandRequest {
    /// A command issued by the group as a whole (no member attribution).
    #[must_use]
    pub fn new(session_id: SessionId, command: SessionCommand) -> Self {
        Self {
            session_id,
            member: None,
            command,
        }
    }

    /// A command issued by one member.
    #[must_use]
    pub fn from_member(session_id: SessionId, member: u64, command: SessionCommand) -> Self {
        Self {
            session_id,
            member: Some(member),
            command,
        }
    }
}

/// What a successfully executed command produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CommandOutcome {
    /// `Build`/`Customize`: the session's current package after the step.
    Package(TravelPackage),
    /// `Refine`: the profile the session will build with from now on.
    Refined(GroupProfile),
    /// `SuggestReplacement`: the system's recommendation, if any exists.
    Suggestion(Option<Poi>),
    /// `End`: the session's final state.
    Ended(Box<SessionState>),
}

impl CommandOutcome {
    /// The package, when the outcome carries one.
    #[must_use]
    pub fn package(&self) -> Option<&TravelPackage> {
        match self {
            CommandOutcome::Package(p) => Some(p),
            _ => None,
        }
    }

    /// The refined profile, when the outcome carries one.
    #[must_use]
    pub fn refined_profile(&self) -> Option<&GroupProfile> {
        match self {
            CommandOutcome::Refined(p) => Some(p),
            _ => None,
        }
    }
}

/// The engine's answer to one [`CommandRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandResponse {
    /// The session the response belongs to.
    pub session_id: SessionId,
    /// The city the session was served in (empty when the session — and
    /// hence its city — is unknown).
    pub city: String,
    /// The session's step counter after this command (0 when the command
    /// never reached a session).
    pub step: u64,
    /// What the command produced, or why it failed.
    pub outcome: Result<CommandOutcome, EngineError>,
    /// Wall-clock time spent serving this command (including any wait for
    /// the session's turn).
    pub latency: Duration,
    /// Whether a build served by this command hit the clustering cache
    /// (always `false` for non-build commands).
    pub clustering_cache_hit: bool,
}

impl CommandResponse {
    /// The current package, when this command produced one.
    #[must_use]
    pub fn package(&self) -> Option<&TravelPackage> {
        self.outcome.as_ref().ok().and_then(CommandOutcome::package)
    }

    /// The refined profile, when this command produced one.
    #[must_use]
    pub fn refined_profile(&self) -> Option<&GroupProfile> {
        self.outcome
            .as_ref()
            .ok()
            .and_then(CommandOutcome::refined_profile)
    }
}
