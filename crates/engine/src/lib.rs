//! # grouptravel-engine — the concurrent package-serving layer
//!
//! The core library answers one group's query at a time and re-derives its
//! expensive substrate — LDA topic models, fuzzy-c-means clusterings, full
//! catalog scans — on every call. This crate turns that one-shot pipeline
//! into a multi-tenant engine that amortizes the substrate across requests:
//!
//! * [`EngineCatalogRegistry`] loads and fingerprints city catalogs, trains
//!   their [`grouptravel::ItemVectorizer`]s once and keeps them warm, and
//!   builds one spatial [`grouptravel_geo::GridIndex`] per POI category.
//! * [`ClusteringCache`] is an LRU of fuzzy-c-means centroids keyed by
//!   `(catalog fingerprint, FcmConfig cache key)` — repeated builds against
//!   the same catalog and configuration reuse centroids instead of
//!   re-clustering.
//! * [`GridCandidates`] plugs the grids into the core builder's
//!   `CandidateProvider` seam so composite items only score POIs near their
//!   centroid.
//! * [`SessionStore`] tracks per-group serving state behind
//!   `Arc<RwLock<…>>`, and [`Engine::serve_batch`] fans a batch of requests
//!   out over OS threads with per-request latency accounting.
//!
//! ```
//! use grouptravel::prelude::*;
//! use grouptravel_engine::{Engine, EngineConfig, PackageRequest};
//!
//! let engine = Engine::new(EngineConfig::fast());
//! let catalog = SyntheticCityGenerator::new(
//!     CitySpec::paris(),
//!     SyntheticCityConfig::small(7),
//! )
//! .generate();
//! engine.register_catalog(catalog).unwrap();
//!
//! let schema = engine.profile_schema("Paris").unwrap();
//! let mut groups = SyntheticGroupGenerator::new(schema, 1);
//! let profile = groups
//!     .group(GroupSize::Small, Uniformity::Uniform)
//!     .profile(ConsensusMethod::pairwise_disagreement());
//!
//! let responses = engine.serve_batch(vec![PackageRequest {
//!     session_id: 1,
//!     city: "Paris".to_string(),
//!     profile,
//!     query: GroupQuery::paper_default(),
//!     config: BuildConfig::default(),
//! }]);
//! assert_eq!(responses[0].package().unwrap().len(), 5);
//! ```

pub mod cache;
pub mod provider;
pub mod registry;
pub mod store;

pub use cache::{ClusteringCache, LruCache, ModelKey};
pub use provider::GridCandidates;
pub use registry::{CategoryGrid, CityEntry, EngineCatalogRegistry};
pub use store::{SessionId, SessionState, SessionStore};

use grouptravel::{BuildConfig, GroupQuery, GroupTravelError, PackageBuilder, TravelPackage};
use grouptravel_dataset::PoiCatalog;
use grouptravel_geo::DistanceMetric;
use grouptravel_profile::{GroupProfile, ProfileSchema};
use grouptravel_topics::LdaConfig;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Errors surfaced per request by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request named a city no catalog is registered for.
    UnknownCity(String),
    /// The underlying package build failed.
    Build(GroupTravelError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownCity(city) => {
                write!(f, "no catalog registered for city `{city}`")
            }
            EngineError::Build(e) => write!(f, "package build failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GroupTravelError> for EngineError {
    fn from(e: GroupTravelError) -> Self {
        EngineError::Build(e)
    }
}

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// LDA configuration used when training vectorizers at registration.
    pub lda: LdaConfig,
    /// Distance metric applied to every build (overrides the per-request
    /// `BuildConfig::metric`, mirroring `GroupTravelSession`).
    pub metric: DistanceMetric,
    /// Capacity of the clustering LRU cache.
    pub model_cache_capacity: usize,
    /// Minimum per-category candidate pool surfaced by the grid provider.
    /// `usize::MAX` makes candidate generation exhaustive (bit-identical to
    /// brute force).
    pub min_candidate_pool: usize,
    /// Pool size multiplier over the query's per-category count.
    pub candidate_oversample: usize,
    /// Worker threads for [`Engine::serve_batch`] (clamped to at least 1).
    pub worker_threads: usize,
    /// Maximum tracked sessions; past it the stalest sessions are evicted.
    pub max_sessions: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            lda: LdaConfig {
                iterations: 80,
                ..LdaConfig::default()
            },
            metric: DistanceMetric::Equirectangular,
            model_cache_capacity: 64,
            min_candidate_pool: 64,
            candidate_oversample: 8,
            worker_threads: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(8),
            max_sessions: SessionStore::DEFAULT_CAPACITY,
        }
    }
}

impl EngineConfig {
    /// A configuration with cheap LDA training, for tests and examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            lda: LdaConfig {
                iterations: 30,
                ..LdaConfig::default()
            },
            ..Self::default()
        }
    }

    /// A configuration whose candidate generation is exhaustive: grid pools
    /// always cover whole categories, making every build bit-identical to
    /// the brute-force path (used by the equivalence tests).
    #[must_use]
    pub fn exhaustive() -> Self {
        Self {
            min_candidate_pool: usize::MAX,
            ..Self::fast()
        }
    }
}

/// One group's package request.
#[derive(Debug, Clone)]
pub struct PackageRequest {
    /// The group session this request belongs to.
    pub session_id: SessionId,
    /// City to serve from (must be registered).
    pub city: String,
    /// The group's consensus profile.
    pub profile: GroupProfile,
    /// The group query ⟨#acco, #trans, #rest, #attr, budget⟩.
    pub query: GroupQuery,
    /// Build configuration (`metric` is overridden by the engine's).
    pub config: BuildConfig,
}

/// The engine's answer to one [`PackageRequest`].
#[derive(Debug, Clone)]
pub struct PackageResponse {
    /// The session the response belongs to.
    pub session_id: SessionId,
    /// The city it was served from.
    pub city: String,
    /// The built package, or why the build failed.
    pub outcome: Result<TravelPackage, EngineError>,
    /// Wall-clock time spent serving this request.
    pub latency: Duration,
    /// Whether the clustering came out of the model cache.
    pub clustering_cache_hit: bool,
}

impl PackageResponse {
    /// The package, if the build succeeded.
    #[must_use]
    pub fn package(&self) -> Option<&TravelPackage> {
        self.outcome.as_ref().ok()
    }
}

/// Aggregate serving counters (monotonic since engine construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests served (successes and failures).
    pub requests: u64,
    /// Requests whose clustering came from the cache.
    pub clustering_cache_hits: u64,
    /// Fuzzy-c-means trainings actually run.
    pub fcm_trainings: u64,
    /// LDA vectorizer trainings actually run.
    pub lda_trainings: u64,
}

#[derive(Default)]
struct StatCounters {
    requests: AtomicU64,
    clustering_cache_hits: AtomicU64,
    fcm_trainings: AtomicU64,
    lda_trainings: AtomicU64,
}

/// The multi-city, multi-session package-serving engine.
pub struct Engine {
    config: EngineConfig,
    registry: EngineCatalogRegistry,
    clusterings: ClusteringCache,
    sessions: SessionStore,
    stats: StatCounters,
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Self {
            registry: EngineCatalogRegistry::new(),
            clusterings: ClusteringCache::new(config.model_cache_capacity),
            sessions: SessionStore::with_capacity(config.max_sessions),
            stats: StatCounters::default(),
            config,
        }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a city catalog: fingerprints it, trains (or re-uses) its
    /// vectorizer with the engine's LDA configuration, and builds its
    /// spatial grids. The catalog is addressable by its city name.
    ///
    /// # Errors
    /// Fails when the catalog is empty or topic-model training fails.
    pub fn register_catalog(&self, catalog: PoiCatalog) -> Result<u64, EngineError> {
        let (entry, trained) = self.registry.register(catalog, self.config.lda)?;
        if trained {
            self.stats.lda_trainings.fetch_add(1, Ordering::Relaxed);
        }
        Ok(entry.fingerprint())
    }

    /// The catalog registry.
    #[must_use]
    pub fn registry(&self) -> &EngineCatalogRegistry {
        &self.registry
    }

    /// The session store (clonable handle; shares state with the engine).
    #[must_use]
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// The clustering model cache.
    #[must_use]
    pub fn clustering_cache(&self) -> &ClusteringCache {
        &self.clusterings
    }

    /// The profile schema group profiles must use with a city.
    #[must_use]
    pub fn profile_schema(&self, city: &str) -> Option<ProfileSchema> {
        self.registry.get(city).map(|e| e.vectorizer().schema())
    }

    /// Aggregate serving counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            clustering_cache_hits: self.stats.clustering_cache_hits.load(Ordering::Relaxed),
            fcm_trainings: self.stats.fcm_trainings.load(Ordering::Relaxed),
            lda_trainings: self.stats.lda_trainings.load(Ordering::Relaxed),
        }
    }

    /// Serves one request synchronously on the calling thread.
    pub fn serve(&self, request: &PackageRequest) -> PackageResponse {
        let start = Instant::now();
        let (outcome, cache_hit) = self.build(request);
        let latency = start.elapsed();

        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.stats
                .clustering_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        self.sessions.record(
            request.session_id,
            &request.city,
            outcome.as_ref().ok(),
            latency,
        );
        PackageResponse {
            session_id: request.session_id,
            city: request.city.clone(),
            outcome,
            latency,
            clustering_cache_hit: cache_hit,
        }
    }

    /// Serves a batch of requests, fanning out over
    /// `EngineConfig::worker_threads` OS threads. Responses come back in
    /// request order; every request gets a response (failures are carried in
    /// `PackageResponse::outcome`, they never abort the batch).
    #[must_use]
    pub fn serve_batch(&self, requests: Vec<PackageRequest>) -> Vec<PackageResponse> {
        let threads = self.config.worker_threads.max(1);
        if threads == 1 || requests.len() <= 1 {
            return requests.iter().map(|r| self.serve(r)).collect();
        }

        let chunk_size = requests.len().div_ceil(threads);
        let mut responses: Vec<Option<PackageResponse>> = Vec::new();
        responses.resize_with(requests.len(), || None);

        std::thread::scope(|scope| {
            for (request_chunk, response_chunk) in requests
                .chunks(chunk_size)
                .zip(responses.chunks_mut(chunk_size))
            {
                scope.spawn(move || {
                    for (request, slot) in request_chunk.iter().zip(response_chunk.iter_mut()) {
                        *slot = Some(self.serve(request));
                    }
                });
            }
        });

        responses
            .into_iter()
            .map(|r| r.expect("every batch slot is filled by its worker"))
            .collect()
    }

    /// The build path shared by [`Engine::serve`] and the batch fan-out:
    /// resolve the city, fetch or fit the clustering, assemble through the
    /// grid provider.
    fn build(&self, request: &PackageRequest) -> (Result<TravelPackage, EngineError>, bool) {
        let Some(entry) = self.registry.get(&request.city) else {
            return (Err(EngineError::UnknownCity(request.city.clone())), false);
        };
        let config = BuildConfig {
            metric: self.config.metric,
            ..request.config
        };
        let builder = PackageBuilder::new(entry.catalog(), entry.vectorizer());

        // Reject invalid requests before any clustering work: otherwise a
        // stream of unsatisfiable requests with varying seeds would force
        // one full FCM training each and churn warm entries out of the LRU.
        // This also keeps error variants identical to the core path (e.g.
        // ZeroCompositeItems for k = 0, not a clustering error).
        if let Err(e) = builder.validate(&request.query, &config) {
            return (Err(e.into()), false);
        }

        let fcm_config = builder.fcm_config(&config);
        let key: ModelKey = (entry.fingerprint(), fcm_config.cache_key());
        let (clustering, cache_hit) = match self.clusterings.get(key) {
            Some(cached) => (cached, true),
            None => match builder.cluster(&config) {
                Ok(fresh) => {
                    self.stats.fcm_trainings.fetch_add(1, Ordering::Relaxed);
                    // Only the centroids are cached: they are all a build
                    // consumes, and the n × k membership matrix would
                    // dominate cache memory at large catalog scale.
                    (self.clusterings.insert(key, fresh.centroids), false)
                }
                Err(e) => return (Err(e.into()), false),
            },
        };

        let provider = GridCandidates::new(
            &entry,
            self.config.min_candidate_pool,
            self.config.candidate_oversample,
        );
        let outcome = builder
            .build_with(
                &provider,
                Some(clustering.as_slice()),
                &request.profile,
                &request.query,
                &config,
            )
            .map_err(EngineError::from);
        (outcome, cache_hit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_profile::{ConsensusMethod, GroupSize, SyntheticGroupGenerator, Uniformity};

    fn catalog(city: CitySpec, seed: u64) -> PoiCatalog {
        SyntheticCityGenerator::new(city, SyntheticCityConfig::small(seed)).generate()
    }

    fn profile_for(engine: &Engine, city: &str, seed: u64) -> GroupProfile {
        let schema = engine.profile_schema(city).unwrap();
        let mut groups = SyntheticGroupGenerator::new(schema, seed);
        groups
            .group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::pairwise_disagreement())
    }

    fn request(engine: &Engine, session_id: u64, city: &str, seed: u64) -> PackageRequest {
        PackageRequest {
            session_id,
            city: city.to_string(),
            profile: profile_for(engine, city, seed),
            query: GroupQuery::paper_default(),
            config: BuildConfig::default(),
        }
    }

    #[test]
    fn serve_builds_a_valid_package() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let req = request(&engine, 1, "Paris", 1);
        let response = engine.serve(&req);
        let package = response.package().expect("build should succeed");
        assert_eq!(package.len(), 5);
        assert!(package.is_valid(
            engine.registry().get("Paris").unwrap().catalog(),
            &req.query
        ));
        assert!(!response.clustering_cache_hit, "first build is cold");
    }

    #[test]
    fn unknown_city_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig::fast());
        let mut req = request_for_unregistered();
        req.city = "Atlantis".to_string();
        let response = engine.serve(&req);
        assert_eq!(
            response.outcome.unwrap_err(),
            EngineError::UnknownCity("Atlantis".to_string())
        );
    }

    fn request_for_unregistered() -> PackageRequest {
        // A profile built against a throwaway engine, since the target
        // engine has no schema to offer.
        let scratch = Engine::new(EngineConfig::fast());
        scratch
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        request(&scratch, 9, "Paris", 9)
    }

    #[test]
    fn warm_requests_reuse_the_clustering() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let cold = engine.serve(&request(&engine, 1, "Paris", 1));
        let warm = engine.serve(&request(&engine, 2, "Paris", 2));
        assert!(!cold.clustering_cache_hit);
        assert!(warm.clustering_cache_hit);
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.fcm_trainings, 1, "no retraining on the warm path");
        assert_eq!(stats.clustering_cache_hits, 1);
    }

    #[test]
    fn exhaustive_engine_matches_the_session_exactly() {
        use grouptravel::{GroupTravelSession, SessionConfig};

        let engine = Engine::new(EngineConfig::exhaustive());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let req = request(&engine, 1, "Paris", 3);
        let engine_package = engine.serve(&req).outcome.unwrap();

        let session = GroupTravelSession::new(
            catalog(CitySpec::paris(), 11),
            SessionConfig {
                lda: engine.config().lda,
                metric: engine.config().metric,
            },
        )
        .unwrap();
        let session_package = session
            .build_package(&req.profile, &req.query, &req.config)
            .unwrap();
        assert_eq!(
            engine_package, session_package,
            "exhaustive engine must be bit-identical to the one-shot session"
        );
    }

    #[test]
    fn serve_batch_preserves_order_and_session_state() {
        // Force the scoped-thread fan-out path even on single-core CI.
        let engine = Engine::new(EngineConfig {
            worker_threads: 4,
            ..EngineConfig::fast()
        });
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        engine
            .register_catalog(catalog(CitySpec::barcelona(), 13))
            .unwrap();

        let mut requests = Vec::new();
        for i in 0..12u64 {
            let city = if i % 2 == 0 { "Paris" } else { "Barcelona" };
            requests.push(request(&engine, i, city, 100 + i));
        }
        let responses = engine.serve_batch(requests);
        assert_eq!(responses.len(), 12);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.session_id, i as u64);
            let expected = if i % 2 == 0 { "Paris" } else { "Barcelona" };
            assert_eq!(response.city, expected);
            assert!(response.outcome.is_ok(), "request {i} failed");
            assert!(response.latency > Duration::ZERO);
        }
        assert_eq!(engine.sessions().len(), 12);
        let state = engine.sessions().snapshot(3).unwrap();
        assert_eq!(state.city, "Barcelona");
        assert_eq!(state.packages_served, 1);
        // Two cities, one build configuration: exactly two FCM trainings no
        // matter how the batch was scheduled (modulo benign races computing
        // the same key twice, which insert() collapses — so at most one per
        // (city, config) pair plus duplicates; requests must still total 12).
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert!(stats.fcm_trainings >= 2);
        assert!(
            stats.clustering_cache_hits + stats.fcm_trainings >= 12,
            "every request either hit the cache or trained"
        );
    }

    #[test]
    fn invalid_requests_do_no_clustering_work() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        // Unsatisfiable category counts, each with a distinct seed: without
        // up-front validation every one would force a fresh FCM training.
        for seed in 0..5u64 {
            let mut bad = request(&engine, seed, "Paris", seed);
            bad.query = GroupQuery::new([1000, 1, 1, 1], None);
            bad.config.seed = 7000 + seed;
            let response = engine.serve(&bad);
            assert!(matches!(
                response.outcome,
                Err(EngineError::Build(
                    GroupTravelError::InsufficientCategory { .. }
                ))
            ));
        }
        assert_eq!(
            engine.stats().fcm_trainings,
            0,
            "no clustering for invalid requests"
        );
        assert!(engine.clustering_cache().is_empty());

        // Error parity with the core path for k = 0.
        let mut zero_k = request(&engine, 9, "Paris", 9);
        zero_k.config = BuildConfig::with_k(0);
        assert_eq!(
            engine.serve(&zero_k).outcome.unwrap_err(),
            EngineError::Build(GroupTravelError::ZeroCompositeItems)
        );
    }

    #[test]
    fn batch_with_failures_still_answers_everything() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let good = request(&engine, 1, "Paris", 1);
        let mut missing = request(&engine, 2, "Paris", 2);
        missing.city = "Nowhere".to_string();
        let mut impossible = request(&engine, 3, "Paris", 3);
        impossible.query = GroupQuery::new([1000, 1, 1, 1], None);

        let responses = engine.serve_batch(vec![good, missing, impossible]);
        assert!(responses[0].outcome.is_ok());
        assert!(matches!(
            responses[1].outcome,
            Err(EngineError::UnknownCity(_))
        ));
        assert!(matches!(
            responses[2].outcome,
            Err(EngineError::Build(
                GroupTravelError::InsufficientCategory { .. }
            ))
        ));
        let state = engine.sessions().snapshot(3).unwrap();
        assert_eq!(state.failures, 1);
    }
}
