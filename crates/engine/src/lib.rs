//! # grouptravel-engine — the concurrent package-serving layer
//!
//! The core library answers one group's query at a time and re-derives its
//! expensive substrate — LDA topic models, fuzzy-c-means clusterings, full
//! catalog scans — on every call. This crate turns that one-shot pipeline
//! into a multi-tenant engine that amortizes the substrate across requests:
//!
//! * [`EngineCatalogRegistry`] loads and fingerprints city catalogs, trains
//!   their [`grouptravel::ItemVectorizer`]s once and keeps them warm, and
//!   builds one spatial [`grouptravel_geo::GridIndex`] per POI category.
//! * [`ClusteringCache`] is an LRU of fuzzy-c-means centroids keyed by
//!   `(catalog fingerprint, FcmConfig cache key)` — repeated builds against
//!   the same catalog and configuration reuse centroids instead of
//!   re-clustering.
//! * [`GridCandidates`] plugs the grids into the core builder's
//!   `CandidateProvider` seam so composite items only score POIs near their
//!   centroid.
//! * [`SessionStore`] tracks per-group serving state behind
//!   `Arc<RwLock<…>>`, and [`Engine::serve_batch`] fans a batch of requests
//!   out over OS threads with per-request latency accounting.
//!
//! ```
//! use grouptravel::prelude::*;
//! use grouptravel_engine::{Engine, EngineConfig, PackageRequest};
//!
//! let engine = Engine::new(EngineConfig::fast());
//! let catalog = SyntheticCityGenerator::new(
//!     CitySpec::paris(),
//!     SyntheticCityConfig::small(7),
//! )
//! .generate();
//! engine.register_catalog(catalog).unwrap();
//!
//! let schema = engine.profile_schema("Paris").unwrap();
//! let mut groups = SyntheticGroupGenerator::new(schema, 1);
//! let profile = groups
//!     .group(GroupSize::Small, Uniformity::Uniform)
//!     .profile(ConsensusMethod::pairwise_disagreement());
//!
//! let responses = engine.serve_batch(vec![PackageRequest {
//!     session_id: 1,
//!     city: "Paris".to_string(),
//!     profile,
//!     query: GroupQuery::paper_default(),
//!     config: BuildConfig::default(),
//! }]);
//! assert_eq!(responses[0].package().unwrap().len(), 5);
//! ```

pub mod binary;
pub mod cache;
pub mod interactive;
pub mod observe;
pub mod protocol;
pub mod provider;
pub mod registry;
pub mod store;

pub use cache::{CacheOutcome, ClusteringCache, LruCache, ModelKey};
pub use grouptravel_dataset::CategoryGrid;
pub use grouptravel_obs::{
    LatencySummary, MetricsRegistry, SlowEntry, SlowLog, TraceReport, TraceStage,
};
pub use grouptravel_profile::GroupProfile;
pub use interactive::{BuildSpec, CommandOutcome, CommandRequest, CommandResponse, SessionCommand};
pub use observe::EngineMetrics;
pub use protocol::{
    CatalogInfo, EngineRequest, EngineResponse, ImportInfo, ProtocolError, RequestEnvelope,
    ResponseEnvelope, SessionSnapshot, PROTOCOL_VERSION, SNAPSHOT_VERSION,
};
pub use provider::GridCandidates;
pub use registry::{CityEntry, EngineCatalogRegistry};
pub use store::{SessionId, SessionState, SessionStore};

use grouptravel::{
    apply_op, refine_batch, refine_individual, suggest_replacement_in, BuildConfig, GroupQuery,
    GroupTravelError, PackageBuilder, RefinementStrategy, TravelPackage,
};
use grouptravel_dataset::PoiCatalog;
use grouptravel_geo::DistanceMetric;
use grouptravel_obs::span;
use grouptravel_pool::{TaskKind, WorkerPool};
use grouptravel_profile::ProfileSchema;
use grouptravel_topics::LdaConfig;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced per request by the engine.
///
/// Every variant has a **stable numeric code** ([`EngineError::code`]) the
/// wire protocol exposes verbatim (see [`protocol`]): `1`–`3` for the
/// engine's own variants, `10`+ delegating to
/// [`GroupTravelError::code`] for build failures. Codes are append-only
/// and never reused, so a client matching on a code keeps working across
/// engine versions.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request named a city no catalog is registered for.
    UnknownCity(String),
    /// The command addressed a session the store does not know — never
    /// built, already ended, or evicted for staleness. The client must
    /// start over with a `Build` carrying a profile; the engine never
    /// silently rebuilds lost state.
    UnknownSession(SessionId),
    /// The command cannot be executed in the session's current state (e.g.
    /// `Customize` before any successful build, or
    /// `Refine(Individual)` without member profiles).
    InvalidCommand(String),
    /// The underlying package build failed.
    Build(GroupTravelError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownCity(city) => {
                write!(f, "no catalog registered for city `{city}`")
            }
            EngineError::UnknownSession(id) => {
                write!(
                    f,
                    "session {id} is unknown (never built, ended, or evicted)"
                )
            }
            EngineError::InvalidCommand(why) => write!(f, "invalid command: {why}"),
            EngineError::Build(e) => write!(f, "package build failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GroupTravelError> for EngineError {
    fn from(e: GroupTravelError) -> Self {
        EngineError::Build(e)
    }
}

impl EngineError {
    /// The stable numeric code of this error on the wire protocol. Build
    /// failures expose the underlying [`GroupTravelError::code`] directly,
    /// so in-process and over-HTTP callers see the same code for the same
    /// failure.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            EngineError::UnknownCity(_) => 1,
            EngineError::UnknownSession(_) => 2,
            EngineError::InvalidCommand(_) => 3,
            EngineError::Build(inner) => inner.code(),
        }
    }
}

/// Tuning knobs of the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// LDA configuration used when training vectorizers at registration.
    pub lda: LdaConfig,
    /// Distance metric applied to every build (overrides the per-request
    /// `BuildConfig::metric`, mirroring `GroupTravelSession`).
    pub metric: DistanceMetric,
    /// Capacity of the clustering LRU cache.
    pub model_cache_capacity: usize,
    /// Minimum per-category candidate pool surfaced by the grid provider.
    /// `usize::MAX` makes candidate generation exhaustive (bit-identical to
    /// brute force).
    pub min_candidate_pool: usize,
    /// Pool size multiplier over the query's per-category count.
    pub candidate_oversample: usize,
    /// Worker threads of the engine's shared [`WorkerPool`] — the fan-out
    /// width of [`Engine::serve_batch`] / [`Engine::serve_commands_batch`].
    /// `0` means "auto": `available_parallelism` capped at 8. The value a
    /// running engine resolved to is reported by [`EngineStats`] and
    /// `GET /healthz`.
    pub worker_threads: usize,
    /// Threads model training fans out over (FCM sweeps, block-Gibbs LDA).
    /// `0` inherits the resolved `worker_threads`; `1` forces the
    /// sequential training paths (bit-identical to the pre-pool solvers).
    /// Training shares the serve pool — no extra OS threads are created,
    /// so serving and training never oversubscribe the host. Overridable
    /// with the `GT_TRAIN_THREADS` environment variable (CI's 1-thread
    /// bit-identity smoke). Parallel training is deterministic: any value
    /// ≥ 2 produces bit-identical models.
    pub train_threads: usize,
    /// Maximum tracked sessions; past it the stalest sessions are evicted.
    pub max_sessions: usize,
    /// Whether the engine records metrics, traces, and the slow log.
    /// `false` swaps in no-op handles — the overhead-benchmark baseline.
    pub metrics_enabled: bool,
    /// Requests at least this slow land in the structured slow-request
    /// log (`Duration::ZERO` logs everything; see [`Engine::slow_log`]).
    pub slow_log_threshold: Duration,
    /// How many slow requests the log's ring retains.
    pub slow_log_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            lda: LdaConfig {
                iterations: 80,
                ..LdaConfig::default()
            },
            metric: DistanceMetric::Equirectangular,
            model_cache_capacity: 64,
            min_candidate_pool: 64,
            candidate_oversample: 8,
            worker_threads: 0,
            train_threads: 0,
            max_sessions: SessionStore::DEFAULT_CAPACITY,
            metrics_enabled: true,
            slow_log_threshold: Duration::from_millis(250),
            slow_log_capacity: 128,
        }
    }
}

impl EngineConfig {
    /// The serve fan-out width this configuration resolves to — **the**
    /// one place the `available_parallelism` fallback lives. An explicit
    /// `worker_threads` is used as-is (clamped to ≥ 1); `0` resolves to
    /// the host's available parallelism capped at 8.
    #[must_use]
    pub fn resolved_worker_threads(&self) -> usize {
        if self.worker_threads == 0 {
            std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(8)
        } else {
            self.worker_threads
        }
    }

    /// The training fan-out width this configuration resolves to. The
    /// `GT_TRAIN_THREADS` environment variable (when set to a positive
    /// integer) wins over the config field; `0` inherits
    /// [`EngineConfig::resolved_worker_threads`].
    #[must_use]
    pub fn resolved_train_threads(&self) -> usize {
        let explicit = std::env::var("GT_TRAIN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or(self.train_threads);
        if explicit == 0 {
            self.resolved_worker_threads()
        } else {
            explicit
        }
    }

    /// A configuration with cheap LDA training, for tests and examples.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            lda: LdaConfig {
                iterations: 30,
                ..LdaConfig::default()
            },
            ..Self::default()
        }
    }

    /// A configuration whose candidate generation is exhaustive: grid pools
    /// always cover whole categories, making every build bit-identical to
    /// the brute-force path (used by the equivalence tests).
    #[must_use]
    pub fn exhaustive() -> Self {
        Self {
            min_candidate_pool: usize::MAX,
            ..Self::fast()
        }
    }
}

/// One group's package request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageRequest {
    /// The group session this request belongs to.
    pub session_id: SessionId,
    /// City to serve from (must be registered).
    pub city: String,
    /// The group's consensus profile.
    pub profile: GroupProfile,
    /// The group query ⟨#acco, #trans, #rest, #attr, budget⟩.
    pub query: GroupQuery,
    /// Build configuration (`metric` is overridden by the engine's).
    pub config: BuildConfig,
}

/// The engine's answer to one [`PackageRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackageResponse {
    /// The session the response belongs to.
    pub session_id: SessionId,
    /// The city it was served from.
    pub city: String,
    /// The built package, or why the build failed.
    pub outcome: Result<TravelPackage, EngineError>,
    /// Wall-clock time spent serving this request.
    pub latency: Duration,
    /// Whether the clustering came out of the model cache.
    pub clustering_cache_hit: bool,
}

impl PackageResponse {
    /// The package, if the build succeeded.
    #[must_use]
    pub fn package(&self) -> Option<&TravelPackage> {
        self.outcome.as_ref().ok()
    }
}

/// Interactive-command counters, one per [`SessionCommand`] kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandStats {
    /// `Build` commands served through interactive sessions.
    pub builds: u64,
    /// `Customize` commands served.
    pub customizations: u64,
    /// `Refine` commands served.
    pub refinements: u64,
    /// `SuggestReplacement` commands served.
    pub suggestions: u64,
    /// `End` commands served.
    pub ended: u64,
    /// Commands (of any kind) that returned an error.
    pub failures: u64,
}

impl CommandStats {
    /// Total interactive commands served (successes and failures).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.builds + self.customizations + self.refinements + self.suggestions + self.ended
    }
}

/// Aggregate serving counters (monotonic since engine construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// One-shot requests served (successes and failures).
    pub requests: u64,
    /// Builds (one-shot or interactive) whose clustering came from the
    /// cache.
    pub clustering_cache_hits: u64,
    /// Fuzzy-c-means trainings actually run.
    pub fcm_trainings: u64,
    /// LDA vectorizer trainings actually run.
    pub lda_trainings: u64,
    /// Per-kind interactive-command counters.
    pub commands: CommandStats,
    /// Serve fan-out width the engine resolved at construction
    /// (`EngineConfig::worker_threads` after the auto fallback).
    pub worker_threads: usize,
    /// Model-training fan-out width the engine resolved at construction
    /// (`EngineConfig::train_threads` after inheritance and the
    /// `GT_TRAIN_THREADS` override).
    pub train_threads: usize,
    /// Tasks spawned on the shared worker pool since construction.
    pub pool_tasks: u64,
    /// Pool tasks executed by a scope owner helping out instead of by a
    /// pool worker.
    pub pool_steals: u64,
    /// Quantile summary of dispatch latency across every request variant
    /// (merged from the per-variant histograms; zeroed when metrics are
    /// disabled).
    pub dispatch_latency: LatencySummary,
    /// Quantile summary of one-shot build latency.
    pub build_latency: LatencySummary,
    /// Quantile summary of interactive-command latency across every
    /// command kind.
    pub command_latency: LatencySummary,
}

#[derive(Default)]
struct StatCounters {
    requests: AtomicU64,
    clustering_cache_hits: AtomicU64,
    fcm_trainings: AtomicU64,
    lda_trainings: AtomicU64,
    cmd_builds: AtomicU64,
    cmd_customizations: AtomicU64,
    cmd_refinements: AtomicU64,
    cmd_suggestions: AtomicU64,
    cmd_ended: AtomicU64,
    cmd_failures: AtomicU64,
}

/// The multi-city, multi-session package-serving engine.
pub struct Engine {
    config: EngineConfig,
    registry: EngineCatalogRegistry,
    clusterings: ClusteringCache,
    sessions: SessionStore,
    stats: StatCounters,
    metrics: EngineMetrics,
    slow_log: SlowLog,
    /// The shared worker pool: batch fan-out *and* model training run on
    /// these threads (nested scopes interleave via caller-helps
    /// scheduling), so the engine never oversubscribes the host.
    pool: WorkerPool,
    /// `config.worker_threads` resolved at construction.
    worker_threads: usize,
    /// `config.train_threads` resolved at construction (env override
    /// included) — frozen so a mid-flight env change can't split the
    /// engine across thread budgets.
    train_threads: usize,
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        let metrics_registry = Arc::new(if config.metrics_enabled {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        });
        let metrics = EngineMetrics::new(metrics_registry);
        let registry = EngineCatalogRegistry::new();
        registry.attach_metrics(metrics.registry_metrics());
        let clusterings = ClusteringCache::new(config.model_cache_capacity);
        clusterings.on_evict(Arc::clone(&metrics.clustering.eviction));
        let sessions = SessionStore::with_capacity(config.max_sessions);
        sessions.attach_metrics(metrics.store_metrics());
        let worker_threads = config.resolved_worker_threads();
        let train_threads = config.resolved_train_threads();
        // One pool serves both budgets: wide enough for either, shared so
        // their sum never runs as OS threads.
        let pool = WorkerPool::new(worker_threads.max(train_threads));
        pool.attach_metrics(metrics.pool_metrics());
        metrics.set_thread_gauges(worker_threads, train_threads);
        Self {
            registry,
            clusterings,
            sessions,
            stats: StatCounters::default(),
            metrics,
            slow_log: SlowLog::new(config.slow_log_threshold, config.slow_log_capacity),
            pool,
            worker_threads,
            train_threads,
            config,
        }
    }

    /// The worker pool's training handle: `Some` when the resolved
    /// `train_threads` budget allows fan-out, `None` to force the
    /// sequential (bit-identical reference) training paths.
    fn train_pool(&self) -> Option<&WorkerPool> {
        (self.train_threads > 1).then_some(&self.pool)
    }

    /// The serve fan-out width the engine resolved at construction.
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// The training fan-out width the engine resolved at construction
    /// (`GT_TRAIN_THREADS` override included).
    #[must_use]
    pub fn train_threads(&self) -> usize {
        self.train_threads
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Registers a city catalog: fingerprints it, trains (or re-uses) its
    /// vectorizer with the engine's LDA configuration, and builds its
    /// spatial grids. The catalog is addressable by its city name.
    ///
    /// # Errors
    /// Fails when the catalog is empty or topic-model training fails.
    pub fn register_catalog(&self, catalog: PoiCatalog) -> Result<u64, EngineError> {
        self.register_catalog_info(catalog)
            .map(|info| info.fingerprint)
    }

    /// [`Engine::register_catalog`] with the full wire-protocol answer
    /// (city, fingerprint, whether LDA training ran).
    fn register_catalog_info(&self, catalog: PoiCatalog) -> Result<CatalogInfo, EngineError> {
        let (entry, trained) =
            self.registry
                .register_on(catalog, self.config.lda, self.train_pool())?;
        if trained {
            self.stats.lda_trainings.fetch_add(1, Ordering::Relaxed);
        }
        Ok(CatalogInfo {
            city: entry.catalog().city().to_string(),
            fingerprint: entry.fingerprint(),
            lda_trained: trained,
        })
    }

    /// Snapshots one session's complete state for persistence or migration
    /// (the wire protocol's `ExportSession`). The session keeps serving —
    /// exporting is a read.
    ///
    /// # Errors
    /// [`EngineError::UnknownSession`] when the session does not exist.
    pub fn export_session(&self, id: SessionId) -> Result<SessionSnapshot, EngineError> {
        let state = self
            .sessions
            .snapshot(id)
            .ok_or(EngineError::UnknownSession(id))?;
        Ok(SessionSnapshot {
            v: SNAPSHOT_VERSION,
            session_id: id,
            state,
        })
    }

    /// Reinstates a previously exported session (the wire protocol's
    /// `ImportSession`): an evicted or migrated session resumes exactly
    /// where it left off instead of failing with `UnknownSession`.
    ///
    /// The snapshot's city must already be registered with this engine —
    /// a session is only meaningful against its catalog. Importing
    /// **re-primes the catalog's lazy spatial index** before the session
    /// becomes reachable, so the resumed session's first `Customize` runs
    /// on the grid path with no silent cold rebuild inside a request.
    ///
    /// # Errors
    /// [`EngineError::InvalidCommand`] for an unsupported snapshot
    /// version, [`EngineError::UnknownCity`] when the session's city is
    /// not registered.
    pub fn import_session(&self, snapshot: SessionSnapshot) -> Result<ImportInfo, EngineError> {
        if snapshot.v != SNAPSHOT_VERSION {
            return Err(EngineError::InvalidCommand(format!(
                "snapshot version {} is not supported; this engine speaks {SNAPSHOT_VERSION}",
                snapshot.v
            )));
        }
        let SessionSnapshot {
            session_id, state, ..
        } = snapshot;
        let Some(entry) = self.registry.get(&state.city) else {
            return Err(EngineError::UnknownCity(state.city));
        };
        // Registration primes the grids, but catalogs can also arrive
        // through paths that leave the `OnceLock` cold (a deserialized
        // catalog starts unprimed by design). Priming here makes resume
        // self-sufficient: the invariant is re-established at import time,
        // off the request path, whatever route the catalog took in.
        let _ = entry.catalog().spatial();
        debug_assert!(entry.catalog().spatial_primed());
        let city = state.city.clone();
        let replaced = self.sessions.restore(session_id, state);
        Ok(ImportInfo {
            session_id,
            city,
            replaced,
        })
    }

    /// The catalog registry.
    #[must_use]
    pub fn registry(&self) -> &EngineCatalogRegistry {
        &self.registry
    }

    /// The session store (clonable handle; shares state with the engine).
    #[must_use]
    pub fn sessions(&self) -> &SessionStore {
        &self.sessions
    }

    /// The clustering model cache.
    #[must_use]
    pub fn clustering_cache(&self) -> &ClusteringCache {
        &self.clusterings
    }

    /// The engine's metric handles (the registry behind them is what
    /// `GET /metrics` renders).
    #[must_use]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// The metric registry every engine series is registered in. The HTTP
    /// layer renders this for `GET /metrics` and registers its own series
    /// here so one scrape covers the whole process.
    #[must_use]
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// The structured slow-request log (`GET /slowlog` renders it as JSON
    /// lines).
    #[must_use]
    pub fn slow_log(&self) -> &SlowLog {
        &self.slow_log
    }

    /// The profile schema group profiles must use with a city.
    #[must_use]
    pub fn profile_schema(&self, city: &str) -> Option<ProfileSchema> {
        self.registry.get(city).map(|e| e.vectorizer().schema())
    }

    /// Aggregate serving counters, including quantile summaries of the
    /// dispatch, build, and command latency histograms (the same data
    /// `GET /metrics` exposes, in wire-friendly form).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut dispatch = grouptravel_obs::HistogramSnapshot::empty();
        for histogram in &self.metrics.dispatch {
            dispatch.merge(&histogram.snapshot());
        }
        let mut command = grouptravel_obs::HistogramSnapshot::empty();
        for histogram in &self.metrics.command_latency {
            command.merge(&histogram.snapshot());
        }
        let pool = self.pool.stats();
        EngineStats {
            dispatch_latency: dispatch.summary(),
            build_latency: self.metrics.build_latency.snapshot().summary(),
            command_latency: command.summary(),
            worker_threads: self.worker_threads,
            train_threads: self.train_threads,
            pool_tasks: pool.tasks,
            pool_steals: pool.steals,
            requests: self.stats.requests.load(Ordering::Relaxed),
            clustering_cache_hits: self.stats.clustering_cache_hits.load(Ordering::Relaxed),
            fcm_trainings: self.stats.fcm_trainings.load(Ordering::Relaxed),
            lda_trainings: self.stats.lda_trainings.load(Ordering::Relaxed),
            commands: CommandStats {
                builds: self.stats.cmd_builds.load(Ordering::Relaxed),
                customizations: self.stats.cmd_customizations.load(Ordering::Relaxed),
                refinements: self.stats.cmd_refinements.load(Ordering::Relaxed),
                suggestions: self.stats.cmd_suggestions.load(Ordering::Relaxed),
                ended: self.stats.cmd_ended.load(Ordering::Relaxed),
                failures: self.stats.cmd_failures.load(Ordering::Relaxed),
            },
        }
    }

    /// Serves one wire-protocol request — **the** public entry point of the
    /// engine. Every other serving method ([`Engine::serve`],
    /// [`Engine::serve_batch`], [`Engine::serve_command`],
    /// [`Engine::serve_commands_batch`]) is a thin compatibility wrapper
    /// that wraps its argument in the matching [`EngineRequest`] variant
    /// and unwraps the matching [`EngineResponse`] variant.
    ///
    /// Single-item requests route through the batch paths internally, so
    /// latency and stats accounting exists exactly once.
    ///
    /// Every dispatch records its latency on the per-variant
    /// `gt_dispatch_latency_seconds` histogram; under an active trace the
    /// same span lands on the stage timeline as `dispatch.<kind>`.
    pub fn dispatch(&self, request: EngineRequest) -> EngineResponse {
        let slot = observe::dispatch_slot(&request);
        let _timed = grouptravel_obs::Span::start(
            observe::DISPATCH_VARIANTS[slot].1,
            Some(&*self.metrics.dispatch[slot]),
        );
        match request {
            EngineRequest::Build { request } => {
                let response = self
                    .serve_package_batch(vec![*request])
                    .pop()
                    .expect("a one-request batch yields one response");
                EngineResponse::Package { response }
            }
            EngineRequest::Batch { requests } => EngineResponse::Batch {
                responses: self.serve_package_batch(requests),
            },
            EngineRequest::Command { request } => {
                let response = self
                    .serve_command_batch(vec![request])
                    .pop()
                    .expect("a one-command batch yields one response");
                EngineResponse::Command { response }
            }
            EngineRequest::CommandBatch { requests } => EngineResponse::CommandBatch {
                responses: self.serve_command_batch(requests),
            },
            EngineRequest::RegisterCatalog { catalog } => {
                // Wire catalogs arrive with their derived indexes skipped
                // (`#[serde(skip)]`): rebuild them before registration so
                // category/id lookups — and the spatial priming inside
                // `register` — see the real content.
                let mut catalog = *catalog;
                catalog.rebuild_indexes();
                EngineResponse::Registered {
                    outcome: self.register_catalog_info(catalog),
                }
            }
            EngineRequest::ExportSession { session_id } => EngineResponse::Session {
                outcome: self.export_session(session_id).map(Box::new),
            },
            EngineRequest::ImportSession { snapshot } => EngineResponse::Imported {
                outcome: self.import_session(*snapshot),
            },
            EngineRequest::Stats => EngineResponse::Stats {
                stats: self.stats(),
            },
            EngineRequest::Trace { request } => {
                // Single requests serve inline on this thread (one-element
                // batches take the inline path), so a thread-local trace
                // captures the whole dispatch. Nested traces refuse to
                // open (`begin` yields `None`) and report an empty
                // timeline rather than corrupting the outer trace.
                let guard = grouptravel_obs::trace::begin(64);
                let response = self.dispatch(*request);
                let trace =
                    guard.map_or_else(TraceReport::default, grouptravel_obs::TraceGuard::finish);
                EngineResponse::Traced {
                    response: Box::new(response),
                    trace,
                }
            }
        }
    }

    /// Serves one version-stamped frame: rejects envelopes of a version
    /// this build does not speak with
    /// [`ProtocolError::UNSUPPORTED_VERSION`], otherwise dispatches the
    /// request. This is what the HTTP front-end calls per decoded body.
    pub fn dispatch_envelope(&self, envelope: RequestEnvelope) -> ResponseEnvelope {
        if envelope.v != PROTOCOL_VERSION {
            return ResponseEnvelope::new(EngineResponse::Error {
                error: ProtocolError::unsupported_version(envelope.v),
            });
        }
        ResponseEnvelope::new(self.dispatch(envelope.request))
    }

    /// Serves one request synchronously (compatibility wrapper over
    /// [`Engine::dispatch`]).
    pub fn serve(&self, request: &PackageRequest) -> PackageResponse {
        match self.dispatch(EngineRequest::Build {
            request: Box::new(request.clone()),
        }) {
            EngineResponse::Package { response } => response,
            other => unreachable!("Build must answer Package, got {}", other.kind()),
        }
    }

    /// One request, served and accounted: the only place one-shot latency
    /// and stats bookkeeping happens (both the single and the batch route
    /// of the protocol land here).
    fn serve_one(&self, request: &PackageRequest) -> PackageResponse {
        let start = Instant::now();
        let (outcome, cache_hit) = {
            let _timed = span!("request.build");
            self.build(request)
        };
        let latency = start.elapsed();

        self.metrics.build_latency.record_duration(latency);
        if self.slow_log.observe(
            "build",
            request.session_id,
            &request.city,
            latency,
            outcome.is_ok(),
        ) {
            self.metrics.slow_requests.inc();
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if cache_hit {
            self.stats
                .clustering_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
        self.sessions.record(
            request.session_id,
            &request.city,
            outcome.as_ref().ok(),
            latency,
        );
        PackageResponse {
            session_id: request.session_id,
            city: request.city.clone(),
            outcome,
            latency,
            clustering_cache_hit: cache_hit,
        }
    }

    /// Serves a batch of requests (compatibility wrapper over
    /// [`Engine::dispatch`]).
    #[must_use]
    pub fn serve_batch(&self, requests: Vec<PackageRequest>) -> Vec<PackageResponse> {
        match self.dispatch(EngineRequest::Batch { requests }) {
            EngineResponse::Batch { responses } => responses,
            other => unreachable!("Batch must answer Batch, got {}", other.kind()),
        }
    }

    /// The batch build path: fans out over the engine's shared worker
    /// pool, one task per `resolved_worker_threads`-sized chunk. Responses
    /// come back in request order; every request gets a response (failures
    /// are carried in `PackageResponse::outcome`, they never abort the
    /// batch). Per-request latency is still measured inside `serve_one`,
    /// exactly as on the single-request path.
    fn serve_package_batch(&self, requests: Vec<PackageRequest>) -> Vec<PackageResponse> {
        let threads = self.worker_threads;
        if threads == 1 || requests.len() <= 1 {
            return requests.iter().map(|r| self.serve_one(r)).collect();
        }

        let chunk_size = requests.len().div_ceil(threads);
        let mut responses: Vec<Option<PackageResponse>> = Vec::new();
        responses.resize_with(requests.len(), || None);

        self.pool.scope(TaskKind::Serve, |scope| {
            for (request_chunk, response_chunk) in requests
                .chunks(chunk_size)
                .zip(responses.chunks_mut(chunk_size))
            {
                scope.spawn(move || {
                    for (request, slot) in request_chunk.iter().zip(response_chunk.iter_mut()) {
                        *slot = Some(self.serve_one(request));
                    }
                });
            }
        });

        responses
            .into_iter()
            .map(|r| r.expect("every batch slot is filled by its worker"))
            .collect()
    }

    /// The build path shared by [`Engine::serve`] and the batch fan-out:
    /// resolve the city, then [`Engine::build_in`].
    fn build(&self, request: &PackageRequest) -> (Result<TravelPackage, EngineError>, bool) {
        let Some(entry) = self.registry.get(&request.city) else {
            return (Err(EngineError::UnknownCity(request.city.clone())), false);
        };
        self.build_in(&entry, &request.profile, &request.query, &request.config)
    }

    /// The build path shared by every route into the engine (one-shot
    /// requests and interactive `Build` commands): fetch or fit the
    /// clustering, assemble through the grid provider.
    fn build_in(
        &self,
        entry: &CityEntry,
        profile: &GroupProfile,
        query: &GroupQuery,
        config: &BuildConfig,
    ) -> (Result<TravelPackage, EngineError>, bool) {
        let config = BuildConfig {
            metric: self.config.metric,
            ..*config
        };
        let builder = PackageBuilder::new(entry.catalog(), entry.vectorizer());

        // Reject invalid requests before any clustering work: otherwise a
        // stream of unsatisfiable requests with varying seeds would force
        // one full FCM training each and churn warm entries out of the LRU.
        // This also keeps error variants identical to the core path (e.g.
        // ZeroCompositeItems for k = 0, not a clustering error).
        {
            let _timed = span!("build.validate");
            if let Err(e) = builder.validate(query, &config) {
                return (Err(e.into()), false);
            }
        }

        let fcm_config = builder.fcm_config(&config);
        let key: ModelKey = (entry.fingerprint(), fcm_config.cache_key());
        // Single-flight: N concurrent cold misses on one (catalog, config)
        // key run exactly one FCM training — the rest wait for its result
        // instead of shouldering duplicate work (the stampede case an HTTP
        // front-end funnels in). Only the centroids are cached: they are
        // all a build consumes, and the n × k membership matrix would
        // dominate cache memory at large catalog scale.
        // Single-flight and the pool compose: the winner of a stampede
        // trains exactly once, parallelizing *internally* over the shared
        // pool; coalesced waiters block on the cache entry, not the pool.
        let trained = self.clusterings.get_or_train(key, || {
            let _timed = span!("fcm.train", &self.metrics.fcm_train);
            builder.cluster_on(&config, self.train_pool()).map(|fresh| {
                self.metrics
                    .fcm_sweeps
                    .add(u64::try_from(fresh.iterations).unwrap_or(u64::MAX));
                fresh.centroids
            })
        });
        let (clustering, cache_hit) = match trained {
            Ok((cached, CacheOutcome::Trained)) => {
                self.metrics.clustering.miss.inc();
                self.stats.fcm_trainings.fetch_add(1, Ordering::Relaxed);
                (cached, false)
            }
            // A coalesced wait is a cache hit from the requester's view:
            // its build consumed a model someone else trained.
            Ok((cached, outcome)) => {
                match outcome {
                    CacheOutcome::Coalesced => self.metrics.clustering.coalesced_wait.inc(),
                    _ => self.metrics.clustering.hit.inc(),
                }
                (cached, true)
            }
            Err(e) => return (Err(e.into()), false),
        };

        let provider = GridCandidates::new(
            entry,
            self.config.min_candidate_pool,
            self.config.candidate_oversample,
            self.config.metric,
        )
        .with_widen_counters(&self.metrics.widen);
        let outcome = {
            let _timed = span!("build.assemble");
            builder
                .build_with(
                    &provider,
                    Some(clustering.as_slice()),
                    profile,
                    query,
                    &config,
                )
                .map_err(EngineError::from)
        };
        (outcome, cache_hit)
    }

    /// Serves one interactive-session command (compatibility wrapper over
    /// [`Engine::dispatch`]). Steps of the same session serialize on the
    /// session's own lock; distinct sessions proceed in parallel.
    pub fn serve_command(&self, request: &CommandRequest) -> CommandResponse {
        match self.dispatch(EngineRequest::Command {
            request: request.clone(),
        }) {
            EngineResponse::Command { response } => response,
            other => unreachable!("Command must answer Command, got {}", other.kind()),
        }
    }

    /// One command, served and accounted: the only place interactive
    /// latency and stats bookkeeping happens (both the single and the
    /// batch route of the protocol land here).
    fn serve_command_one(&self, request: &CommandRequest) -> CommandResponse {
        let (kind_slot, span_name) = observe::command_slot(&request.command);
        let start = Instant::now();
        let (outcome, cache_hit, step, city) = {
            let _timed = grouptravel_obs::Span::start(span_name, None);
            self.execute_command(request, start)
        };
        let latency = start.elapsed();

        self.metrics.command_latency[kind_slot].record_duration(latency);
        if self.slow_log.observe(
            span_name,
            request.session_id,
            &city,
            latency,
            outcome.is_ok(),
        ) {
            self.metrics.slow_requests.inc();
        }

        let counter = match &request.command {
            SessionCommand::Build(_) => &self.stats.cmd_builds,
            SessionCommand::Customize(_) => &self.stats.cmd_customizations,
            SessionCommand::Refine(_) => &self.stats.cmd_refinements,
            SessionCommand::SuggestReplacement { .. } => &self.stats.cmd_suggestions,
            SessionCommand::End => &self.stats.cmd_ended,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if outcome.is_err() {
            self.stats.cmd_failures.fetch_add(1, Ordering::Relaxed);
        }
        if cache_hit {
            self.stats
                .clustering_cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }

        CommandResponse {
            session_id: request.session_id,
            city,
            step,
            outcome,
            latency,
            clustering_cache_hit: cache_hit,
        }
    }

    /// Serves a batch of interactive commands (compatibility wrapper over
    /// [`Engine::dispatch`]).
    #[must_use]
    pub fn serve_commands_batch(&self, requests: Vec<CommandRequest>) -> Vec<CommandResponse> {
        match self.dispatch(EngineRequest::CommandBatch { requests }) {
            EngineResponse::CommandBatch { responses } => responses,
            other => unreachable!(
                "CommandBatch must answer CommandBatch, got {}",
                other.kind()
            ),
        }
    }

    /// The batch command path: fans *sessions* out over the engine's
    /// shared worker pool. Commands addressed to the same session run in
    /// submission order on one worker (a group's interaction is
    /// sequential); distinct sessions run concurrently. Responses come
    /// back in request order and failures never abort the batch.
    fn serve_command_batch(&self, requests: Vec<CommandRequest>) -> Vec<CommandResponse> {
        let threads = self.worker_threads;
        if threads == 1 || requests.len() <= 1 {
            return requests.iter().map(|r| self.serve_command_one(r)).collect();
        }

        // One lane per session, in first-appearance order; a lane holds the
        // indices of that session's commands in submission order.
        let mut lanes: Vec<Vec<usize>> = Vec::new();
        let mut lane_of: HashMap<SessionId, usize> = HashMap::new();
        for (index, request) in requests.iter().enumerate() {
            let lane = *lane_of.entry(request.session_id).or_insert_with(|| {
                lanes.push(Vec::new());
                lanes.len() - 1
            });
            lanes[lane].push(index);
        }

        // The lane→worker assignment (strided by worker index) is the same
        // as the pre-pool scaffold, so response order and per-command
        // accounting are unchanged; each worker fills its own scatter slot.
        let workers = threads.min(lanes.len());
        let mut scattered: Vec<Vec<(usize, CommandResponse)>> = Vec::new();
        scattered.resize_with(workers, Vec::new);
        let lanes = &lanes;
        let requests = &requests;
        self.pool.scope(TaskKind::Command, |scope| {
            for (worker, served) in scattered.iter_mut().enumerate() {
                scope.spawn(move || {
                    for lane in lanes.iter().skip(worker).step_by(workers) {
                        for &index in lane {
                            served.push((index, self.serve_command_one(&requests[index])));
                        }
                    }
                });
            }
        });

        let mut responses: Vec<Option<CommandResponse>> = Vec::new();
        responses.resize_with(requests.len(), || None);
        for (index, response) in scattered.into_iter().flatten() {
            responses[index] = Some(response);
        }
        responses
            .into_iter()
            .map(|r| r.expect("every command slot is filled by its worker"))
            .collect()
    }

    /// Executes one command against the session store, returning the
    /// outcome, whether a build hit the clustering cache, the session's
    /// step counter after the command, and the city it ran in.
    fn execute_command(
        &self,
        request: &CommandRequest,
        start: Instant,
    ) -> (Result<CommandOutcome, EngineError>, bool, u64, String) {
        let id = request.session_id;
        match &request.command {
            SessionCommand::Build(spec) => {
                let interactive::BuildSpec {
                    city,
                    profile,
                    group,
                    consensus,
                    // query/config reach build_step through `spec`
                    query: _,
                    config: _,
                } = spec.as_ref();
                let Some(entry) = self.registry.get(city) else {
                    return (
                        Err(EngineError::UnknownCity(city.clone())),
                        false,
                        0,
                        city.clone(),
                    );
                };
                // Profile resolution from the command alone: an explicit
                // profile wins; else a group shipped with *this* command
                // (fresh information) is aggregated. An existing session
                // additionally falls back to its current — possibly
                // refined — profile.
                let command_profile = match (profile, group, consensus) {
                    (Some(p), _, _) => Some(p.clone()),
                    (None, Some(g), Some(c)) => Some(g.profile(*c)),
                    (None, _, _) => None,
                };
                let existing = self.sessions.with_session(id, |state| {
                    match command_profile.clone().or_else(|| state.profile.clone()) {
                        Some(profile) => self.build_step(state, &entry, spec, profile, start),
                        None => {
                            let step = Self::complete_step(state, start, false);
                            (Err(Self::profile_needed()), false, step)
                        }
                    }
                });
                let (outcome, hit, step) = match existing {
                    Some(served) => served,
                    // Only a Build that can produce a profile may create a
                    // session: a malformed first Build must not occupy a
                    // slot (or evict live sessions to claim one).
                    None => match command_profile {
                        Some(profile) => self.sessions.with_session_or_insert(id, city, |state| {
                            self.build_step(state, &entry, spec, profile, start)
                        }),
                        None => (Err(Self::profile_needed()), false, 0),
                    },
                };
                (outcome, hit, step, city.clone())
            }
            SessionCommand::Customize(op) => {
                let member = request.member.unwrap_or(0);
                match self.sessions.with_session(id, |state| {
                    let city = state.city.clone();
                    let Some(entry) = self.registry.get(&state.city) else {
                        let step = Self::complete_step(state, start, false);
                        return (Err(EngineError::UnknownCity(city.clone())), step, city);
                    };
                    let Some(mut package) = state.last_package.take() else {
                        let step = Self::complete_step(state, start, false);
                        return (
                            Err(EngineError::InvalidCommand(
                                "Customize requires a successfully built package".to_string(),
                            )),
                            step,
                            city,
                        );
                    };
                    // A session served only by the one-shot `serve()` path
                    // has a package but no interactive build context —
                    // customizing it must fail typed, never panic.
                    let (Some(profile), Some(query)) =
                        (state.profile.as_ref(), state.query.as_ref())
                    else {
                        state.last_package = Some(package);
                        let step = Self::complete_step(state, start, false);
                        return (
                            Err(EngineError::InvalidCommand(
                                "the session has a package but no interactive build context; \
                                 issue a Build first"
                                    .to_string(),
                            )),
                            step,
                            city,
                        );
                    };
                    let weights = state.config.map(|c| c.weights).unwrap_or_default();
                    // GENERATE assembles its new composite item from the
                    // grid-backed pool, exactly like engine builds do.
                    let provider = GridCandidates::new(
                        &entry,
                        self.config.min_candidate_pool,
                        self.config.candidate_oversample,
                        self.config.metric,
                    )
                    .with_widen_counters(&self.metrics.widen);
                    let applied = apply_op(
                        entry.catalog(),
                        entry.vectorizer(),
                        self.config.metric,
                        &provider,
                        &mut package,
                        op,
                        profile,
                        query,
                        &weights,
                    );
                    let outcome = match applied {
                        Ok(log) => {
                            grouptravel::record_member_log(&mut state.interactions, member, &log);
                            state.customizations += 1;
                            state.last_package = Some(package.clone());
                            Ok(CommandOutcome::Package(package))
                        }
                        Err(e) => {
                            // `apply_op` leaves the package untouched on
                            // error; restore it as the current package.
                            state.last_package = Some(package);
                            Err(EngineError::Build(e))
                        }
                    };
                    let ok = outcome.is_ok();
                    let step = Self::complete_step(state, start, ok);
                    (outcome, step, city)
                }) {
                    Some((outcome, step, city)) => (outcome, false, step, city),
                    None => Self::unknown_session(id),
                }
            }
            SessionCommand::Refine(strategy) => {
                match self.sessions.with_session(id, |state| {
                    let city = state.city.clone();
                    let Some(entry) = self.registry.get(&state.city) else {
                        let step = Self::complete_step(state, start, false);
                        return (Err(EngineError::UnknownCity(city.clone())), step, city);
                    };
                    let Some(profile) = state.profile.clone() else {
                        let step = Self::complete_step(state, start, false);
                        return (
                            Err(EngineError::InvalidCommand(
                                "Refine requires a built session (no profile yet)".to_string(),
                            )),
                            step,
                            city,
                        );
                    };
                    let outcome = match strategy {
                        RefinementStrategy::Batch => {
                            let refined = refine_batch(
                                &profile,
                                &state.interactions,
                                entry.catalog(),
                                entry.vectorizer(),
                            );
                            state.profile = Some(refined.clone());
                            state.interactions.clear();
                            state.refinements += 1;
                            Ok(CommandOutcome::Refined(refined))
                        }
                        RefinementStrategy::Individual => match (&state.group, state.consensus) {
                            (Some(group), Some(consensus)) => {
                                let (refined_group, refined_profile) = refine_individual(
                                    group,
                                    consensus,
                                    &state.interactions,
                                    entry.catalog(),
                                    entry.vectorizer(),
                                );
                                state.group = Some(refined_group);
                                state.profile = Some(refined_profile.clone());
                                state.interactions.clear();
                                state.refinements += 1;
                                Ok(CommandOutcome::Refined(refined_profile))
                            }
                            _ => Err(EngineError::InvalidCommand(
                                "Refine(Individual) needs member profiles: Build with group + \
                                 consensus first"
                                    .to_string(),
                            )),
                        },
                    };
                    let ok = outcome.is_ok();
                    let step = Self::complete_step(state, start, ok);
                    (outcome, step, city)
                }) {
                    Some((outcome, step, city)) => (outcome, false, step, city),
                    None => Self::unknown_session(id),
                }
            }
            SessionCommand::SuggestReplacement { ci_index, poi } => {
                match self.sessions.with_session(id, |state| {
                    let city = state.city.clone();
                    let Some(entry) = self.registry.get(&state.city) else {
                        let step = Self::complete_step(state, start, false);
                        return (Err(EngineError::UnknownCity(city.clone())), step, city);
                    };
                    let Some(package) = state.last_package.as_ref() else {
                        let step = Self::complete_step(state, start, false);
                        return (
                            Err(EngineError::InvalidCommand(
                                "SuggestReplacement requires a successfully built package"
                                    .to_string(),
                            )),
                            step,
                            city,
                        );
                    };
                    let suggestion = suggest_replacement_in(
                        entry.catalog(),
                        self.config.metric,
                        package,
                        *ci_index,
                        *poi,
                    )
                    .cloned();
                    let step = Self::complete_step(state, start, true);
                    (Ok(CommandOutcome::Suggestion(suggestion)), step, city)
                }) {
                    Some((outcome, step, city)) => (outcome, false, step, city),
                    None => Self::unknown_session(id),
                }
            }
            SessionCommand::End => match self.sessions.remove(id) {
                Some(state) => {
                    let step = state.steps;
                    let city = state.city.clone();
                    (
                        Ok(CommandOutcome::Ended(Box::new(state))),
                        false,
                        step,
                        city,
                    )
                }
                None => Self::unknown_session(id),
            },
        }
    }

    /// Runs one interactive build against a locked session. The session's
    /// interactive context (city, group, consensus, profile, query,
    /// config) commits **only on success**: a failed build changes nothing
    /// but the step/failure counters, so a session can never end up
    /// stranded between cities or configurations with a stale package.
    fn build_step(
        &self,
        state: &mut SessionState,
        entry: &CityEntry,
        spec: &interactive::BuildSpec,
        profile: GroupProfile,
        start: Instant,
    ) -> (Result<CommandOutcome, EngineError>, bool, u64) {
        let (result, hit) = self.build_in(entry, &profile, &spec.query, &spec.config);
        let (outcome, ok) = match result {
            Ok(package) => {
                state.city = spec.city.clone();
                if let Some(g) = &spec.group {
                    state.group = Some(g.clone());
                }
                if let Some(c) = spec.consensus {
                    state.consensus = Some(c);
                }
                state.profile = Some(profile);
                state.query = Some(spec.query);
                state.config = Some(spec.config);
                state.packages_served += 1;
                state.last_package = Some(package.clone());
                (Ok(CommandOutcome::Package(package)), true)
            }
            Err(e) => (Err(e), false),
        };
        let step = Self::complete_step(state, start, ok);
        (outcome, hit, step)
    }

    /// The error a `Build` that cannot resolve any profile fails with.
    fn profile_needed() -> EngineError {
        EngineError::InvalidCommand(
            "Build needs a profile: pass one explicitly, ship group + consensus, or build the \
             session successfully once before relying on its stored profile"
                .to_string(),
        )
    }

    /// The response tuple for a command addressed to an unknown session.
    fn unknown_session(id: SessionId) -> (Result<CommandOutcome, EngineError>, bool, u64, String) {
        (
            Err(EngineError::UnknownSession(id)),
            false,
            0,
            String::new(),
        )
    }

    /// Closes one interactive step: bumps the monotone step counter,
    /// accounts the step's latency, and counts failures.
    fn complete_step(state: &mut SessionState, start: Instant, ok: bool) -> u64 {
        state.steps += 1;
        let latency = start.elapsed();
        state.total_latency += latency;
        state.record_step_latency(latency);
        if !ok {
            state.failures += 1;
        }
        state.steps
    }

    /// Registers `catalog` re-using the item vectorizer — and therefore the
    /// profile schema — of an already-registered city, with no LDA
    /// training. Profiles elicited (or refined) against the source city
    /// stay meaningful in the new one: this is the cross-city transfer
    /// scenario of §4.4.4 served by the engine. Item vectors for POIs the
    /// vectorizer never saw are folded in from their tags.
    ///
    /// # Errors
    /// Fails when `source_city` is not registered or `catalog` is empty.
    pub fn register_catalog_sharing_schema(
        &self,
        catalog: PoiCatalog,
        source_city: &str,
    ) -> Result<u64, EngineError> {
        let Some(source) = self.registry.get(source_city) else {
            return Err(EngineError::UnknownCity(source_city.to_string()));
        };
        let entry = self
            .registry
            .register_shared(catalog, source.vectorizer_arc())?;
        Ok(entry.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_profile::{ConsensusMethod, GroupSize, SyntheticGroupGenerator, Uniformity};

    fn catalog(city: CitySpec, seed: u64) -> PoiCatalog {
        SyntheticCityGenerator::new(city, SyntheticCityConfig::small(seed)).generate()
    }

    fn profile_for(engine: &Engine, city: &str, seed: u64) -> GroupProfile {
        let schema = engine.profile_schema(city).unwrap();
        let mut groups = SyntheticGroupGenerator::new(schema, seed);
        groups
            .group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::pairwise_disagreement())
    }

    fn request(engine: &Engine, session_id: u64, city: &str, seed: u64) -> PackageRequest {
        PackageRequest {
            session_id,
            city: city.to_string(),
            profile: profile_for(engine, city, seed),
            query: GroupQuery::paper_default(),
            config: BuildConfig::default(),
        }
    }

    #[test]
    fn serve_builds_a_valid_package() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let req = request(&engine, 1, "Paris", 1);
        let response = engine.serve(&req);
        let package = response.package().expect("build should succeed");
        assert_eq!(package.len(), 5);
        assert!(package.is_valid(
            engine.registry().get("Paris").unwrap().catalog(),
            &req.query
        ));
        assert!(!response.clustering_cache_hit, "first build is cold");
    }

    #[test]
    fn unknown_city_is_an_error_not_a_panic() {
        let engine = Engine::new(EngineConfig::fast());
        let mut req = request_for_unregistered();
        req.city = "Atlantis".to_string();
        let response = engine.serve(&req);
        assert_eq!(
            response.outcome.unwrap_err(),
            EngineError::UnknownCity("Atlantis".to_string())
        );
    }

    fn request_for_unregistered() -> PackageRequest {
        // A profile built against a throwaway engine, since the target
        // engine has no schema to offer.
        let scratch = Engine::new(EngineConfig::fast());
        scratch
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        request(&scratch, 9, "Paris", 9)
    }

    #[test]
    fn warm_requests_reuse_the_clustering() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let cold = engine.serve(&request(&engine, 1, "Paris", 1));
        let warm = engine.serve(&request(&engine, 2, "Paris", 2));
        assert!(!cold.clustering_cache_hit);
        assert!(warm.clustering_cache_hit);
        let stats = engine.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.fcm_trainings, 1, "no retraining on the warm path");
        assert_eq!(stats.clustering_cache_hits, 1);
    }

    #[test]
    fn exhaustive_engine_matches_the_session_exactly() {
        use grouptravel::{GroupTravelSession, SessionConfig};

        let engine = Engine::new(EngineConfig::exhaustive());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let req = request(&engine, 1, "Paris", 3);
        let engine_package = engine.serve(&req).outcome.unwrap();

        let session = GroupTravelSession::new(
            catalog(CitySpec::paris(), 11),
            SessionConfig {
                lda: engine.config().lda,
                metric: engine.config().metric,
            },
        )
        .unwrap();
        let session_package = session
            .build_package(&req.profile, &req.query, &req.config)
            .unwrap();
        assert_eq!(
            engine_package, session_package,
            "exhaustive engine must be bit-identical to the one-shot session"
        );
    }

    #[test]
    fn default_grid_engine_matches_the_session_when_pools_cover_categories() {
        use grouptravel::{GroupTravelSession, SessionConfig};

        // The *default* (non-exhaustive) grid configuration: pools are
        // exact-k nearest sets, and `min_candidate_pool` covers every
        // category of this small test catalog — so the grid pool is the
        // brute-force pool in brute-force order and the build is
        // bit-identical, without flipping the exhaustive switch.
        let engine = Engine::new(EngineConfig::fast());
        assert_ne!(engine.config().min_candidate_pool, usize::MAX);
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let req = request(&engine, 1, "Paris", 5);
        let engine_package = engine.serve(&req).outcome.unwrap();

        let session = GroupTravelSession::new(
            catalog(CitySpec::paris(), 11),
            SessionConfig {
                lda: engine.config().lda,
                metric: engine.config().metric,
            },
        )
        .unwrap();
        let session_package = session
            .build_package(&req.profile, &req.query, &req.config)
            .unwrap();
        assert_eq!(engine_package, session_package);
    }

    #[test]
    fn serve_batch_preserves_order_and_session_state() {
        // Force the scoped-thread fan-out path even on single-core CI.
        let engine = Engine::new(EngineConfig {
            worker_threads: 4,
            ..EngineConfig::fast()
        });
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        engine
            .register_catalog(catalog(CitySpec::barcelona(), 13))
            .unwrap();

        let mut requests = Vec::new();
        for i in 0..12u64 {
            let city = if i % 2 == 0 { "Paris" } else { "Barcelona" };
            requests.push(request(&engine, i, city, 100 + i));
        }
        let responses = engine.serve_batch(requests);
        assert_eq!(responses.len(), 12);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.session_id, i as u64);
            let expected = if i % 2 == 0 { "Paris" } else { "Barcelona" };
            assert_eq!(response.city, expected);
            assert!(response.outcome.is_ok(), "request {i} failed");
            assert!(response.latency > Duration::ZERO);
        }
        assert_eq!(engine.sessions().len(), 12);
        let state = engine.sessions().snapshot(3).unwrap();
        assert_eq!(state.city, "Barcelona");
        assert_eq!(state.packages_served, 1);
        // Two cities, one build configuration: exactly two FCM trainings no
        // matter how the batch was scheduled (modulo benign races computing
        // the same key twice, which insert() collapses — so at most one per
        // (city, config) pair plus duplicates; requests must still total 12).
        let stats = engine.stats();
        assert_eq!(stats.requests, 12);
        assert!(stats.fcm_trainings >= 2);
        assert!(
            stats.clustering_cache_hits + stats.fcm_trainings >= 12,
            "every request either hit the cache or trained"
        );
    }

    #[test]
    fn invalid_requests_do_no_clustering_work() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        // Unsatisfiable category counts, each with a distinct seed: without
        // up-front validation every one would force a fresh FCM training.
        for seed in 0..5u64 {
            let mut bad = request(&engine, seed, "Paris", seed);
            bad.query = GroupQuery::new([1000, 1, 1, 1], None);
            bad.config.seed = 7000 + seed;
            let response = engine.serve(&bad);
            assert!(matches!(
                response.outcome,
                Err(EngineError::Build(
                    GroupTravelError::InsufficientCategory { .. }
                ))
            ));
        }
        assert_eq!(
            engine.stats().fcm_trainings,
            0,
            "no clustering for invalid requests"
        );
        assert!(engine.clustering_cache().is_empty());

        // Error parity with the core path for k = 0.
        let mut zero_k = request(&engine, 9, "Paris", 9);
        zero_k.config = BuildConfig::with_k(0);
        assert_eq!(
            engine.serve(&zero_k).outcome.unwrap_err(),
            EngineError::Build(GroupTravelError::ZeroCompositeItems)
        );
    }

    #[test]
    fn interactive_session_build_customize_refine_rebuild() {
        use grouptravel::CustomizationOp;
        use grouptravel_profile::Group;

        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let schema = engine.profile_schema("Paris").unwrap();
        let group: Group =
            SyntheticGroupGenerator::new(schema, 3).group(GroupSize::Small, Uniformity::NonUniform);
        let consensus = ConsensusMethod::pairwise_disagreement();

        // Build for the whole group (enables individual refinement).
        let built = engine.serve_command(&CommandRequest::new(
            7,
            SessionCommand::build_for_group(
                "Paris",
                group.clone(),
                consensus,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ));
        let package = built.package().expect("build succeeds").clone();
        assert_eq!(built.step, 1);
        assert_eq!(package.len(), 5);
        assert!(!built.clustering_cache_hit, "first build is cold");

        // A member removes one POI; the package shrinks by one.
        let victim = package.get(0).unwrap().poi_ids()[0];
        let member = group.members()[0].user_id;
        let customized = engine.serve_command(&CommandRequest::from_member(
            7,
            member,
            SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: 0,
                poi: victim,
            }),
        ));
        assert_eq!(customized.step, 2);
        assert!(!customized
            .package()
            .unwrap()
            .get(0)
            .unwrap()
            .contains(victim));

        // The system suggests a replacement without mutating anything.
        let suggested = engine.serve_command(&CommandRequest::new(
            7,
            SessionCommand::SuggestReplacement {
                ci_index: 1,
                poi: package.get(1).unwrap().poi_ids()[0],
            },
        ));
        assert!(matches!(
            suggested.outcome,
            Ok(CommandOutcome::Suggestion(Some(_)))
        ));
        assert_eq!(suggested.step, 3);

        // Refinement consumes the pooled interactions and moves the profile.
        let before = engine.sessions().snapshot(7).unwrap();
        assert_eq!(before.pending_interactions(), 1);
        let refined = engine.serve_command(&CommandRequest::new(
            7,
            SessionCommand::Refine(RefinementStrategy::Individual),
        ));
        let refined_profile = refined.refined_profile().expect("refined").clone();
        assert_eq!(
            engine
                .sessions()
                .snapshot(7)
                .unwrap()
                .pending_interactions(),
            0
        );

        // A rebuild with no explicit profile uses the refined one, warm.
        let rebuilt = engine.serve_command(&CommandRequest::new(
            7,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ));
        assert!(rebuilt.clustering_cache_hit, "rebuild must be warm");
        assert_eq!(
            engine.sessions().snapshot(7).unwrap().profile.unwrap(),
            refined_profile
        );
        let stats = engine.stats();
        assert_eq!(stats.fcm_trainings, 1, "interactive steps never retrain");
        assert_eq!(stats.lda_trainings, 1);
        assert_eq!(stats.commands.builds, 2);
        assert_eq!(stats.commands.customizations, 1);
        assert_eq!(stats.commands.refinements, 1);
        assert_eq!(stats.commands.suggestions, 1);
        assert_eq!(stats.commands.failures, 0);

        // End returns the final state and frees the slot.
        let ended = engine.serve_command(&CommandRequest::new(7, SessionCommand::End));
        match ended.outcome.unwrap() {
            CommandOutcome::Ended(state) => {
                assert_eq!(state.steps, 5);
                assert_eq!(state.packages_served, 2);
                assert_eq!(state.refinements, 1);
            }
            other => panic!("expected Ended, got {other:?}"),
        }
        assert!(engine.sessions().snapshot(7).is_none());
    }

    #[test]
    fn interactive_commands_fail_typed_without_a_session() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        for command in [
            SessionCommand::Customize(grouptravel::CustomizationOp::DeleteCi { ci_index: 0 }),
            SessionCommand::Refine(RefinementStrategy::Batch),
            SessionCommand::SuggestReplacement {
                ci_index: 0,
                poi: grouptravel_dataset::PoiId(1),
            },
            SessionCommand::End,
        ] {
            let response = engine.serve_command(&CommandRequest::new(99, command));
            assert_eq!(
                response.outcome.unwrap_err(),
                EngineError::UnknownSession(99)
            );
            assert_eq!(response.step, 0);
        }
        assert_eq!(engine.stats().commands.failures, 4);
        assert!(engine.sessions().is_empty(), "errors never create sessions");
    }

    #[test]
    fn customizing_a_one_shot_session_fails_typed_not_poisoned() {
        // `serve()` records a package without any interactive context; a
        // Customize on that session must fail typed — and must not poison
        // the session's lock for later commands.
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let one_shot = engine.serve(&request(&engine, 8, "Paris", 8));
        assert!(one_shot.outcome.is_ok());

        let response = engine.serve_command(&CommandRequest::new(
            8,
            SessionCommand::Customize(grouptravel::CustomizationOp::DeleteCi { ci_index: 0 }),
        ));
        assert!(matches!(
            response.outcome,
            Err(EngineError::InvalidCommand(_))
        ));
        // The session is intact and upgradeable to an interactive one.
        let state = engine.sessions().snapshot(8).expect("lock not poisoned");
        assert!(state.last_package.is_some(), "one-shot package survives");
        let upgraded = engine.serve_command(&CommandRequest::new(
            8,
            SessionCommand::build(
                "Paris",
                profile_for(&engine, "Paris", 8),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ));
        assert!(upgraded.outcome.is_ok());
    }

    #[test]
    fn failed_builds_do_not_move_the_session_between_cities() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        engine
            .register_catalog(catalog(CitySpec::barcelona(), 13))
            .unwrap();
        let built = engine.serve_command(&CommandRequest::new(
            4,
            SessionCommand::build(
                "Paris",
                profile_for(&engine, "Paris", 4),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ));
        let paris_package = built.package().unwrap().clone();

        // An unsatisfiable rebuild in Barcelona fails — and must leave the
        // session's context (city, query, config, package) untouched, or
        // later commands would resolve Paris POIs against Barcelona.
        let failed = engine.serve_command(&CommandRequest::new(
            4,
            SessionCommand::rebuild(
                "Barcelona",
                GroupQuery::new([1000, 1, 1, 1], None),
                BuildConfig::default(),
            ),
        ));
        assert!(matches!(failed.outcome, Err(EngineError::Build(_))));
        let state = engine.sessions().snapshot(4).unwrap();
        assert_eq!(state.city, "Paris", "failed build must not move the city");
        assert_eq!(state.query, Some(GroupQuery::paper_default()));
        assert_eq!(state.last_package.as_ref(), Some(&paris_package));
        assert_eq!(state.failures, 1);

        // Customization still applies against Paris.
        let victim = paris_package.get(0).unwrap().poi_ids()[0];
        let customized = engine.serve_command(&CommandRequest::new(
            4,
            SessionCommand::Customize(grouptravel::CustomizationOp::Remove {
                ci_index: 0,
                poi: victim,
            }),
        ));
        assert!(customized.outcome.is_ok());
    }

    #[test]
    fn profile_less_first_builds_never_occupy_or_evict_sessions() {
        let engine = Engine::new(EngineConfig {
            max_sessions: 2,
            ..EngineConfig::fast()
        });
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        for session in [1, 2] {
            let response = engine.serve_command(&CommandRequest::new(
                session,
                SessionCommand::build(
                    "Paris",
                    profile_for(&engine, "Paris", session),
                    GroupQuery::paper_default(),
                    BuildConfig::default(),
                ),
            ));
            assert!(response.outcome.is_ok());
        }
        // A malformed first Build (no resolvable profile) on a full store
        // must not create a session — and must not evict live ones.
        let response = engine.serve_command(&CommandRequest::new(
            3,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ));
        assert!(matches!(
            response.outcome,
            Err(EngineError::InvalidCommand(_))
        ));
        assert!(engine.sessions().snapshot(3).is_none());
        assert!(engine.sessions().snapshot(1).is_some(), "no eviction");
        assert!(engine.sessions().snapshot(2).is_some(), "no eviction");
        assert_eq!(engine.sessions().len(), 2);
    }

    #[test]
    fn individual_refinement_requires_member_profiles() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let profile = profile_for(&engine, "Paris", 5);
        engine.serve_command(&CommandRequest::new(
            1,
            SessionCommand::build(
                "Paris",
                profile,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ));
        let response = engine.serve_command(&CommandRequest::new(
            1,
            SessionCommand::Refine(RefinementStrategy::Individual),
        ));
        assert!(matches!(
            response.outcome,
            Err(EngineError::InvalidCommand(_))
        ));
        // Batch refinement works without member profiles.
        let response = engine.serve_command(&CommandRequest::new(
            1,
            SessionCommand::Refine(RefinementStrategy::Batch),
        ));
        assert!(response.refined_profile().is_some());
    }

    #[test]
    fn batch_with_failures_still_answers_everything() {
        let engine = Engine::new(EngineConfig::fast());
        engine
            .register_catalog(catalog(CitySpec::paris(), 11))
            .unwrap();
        let good = request(&engine, 1, "Paris", 1);
        let mut missing = request(&engine, 2, "Paris", 2);
        missing.city = "Nowhere".to_string();
        let mut impossible = request(&engine, 3, "Paris", 3);
        impossible.query = GroupQuery::new([1000, 1, 1, 1], None);

        let responses = engine.serve_batch(vec![good, missing, impossible]);
        assert!(responses[0].outcome.is_ok());
        assert!(matches!(
            responses[1].outcome,
            Err(EngineError::UnknownCity(_))
        ));
        assert!(matches!(
            responses[2].outcome,
            Err(EngineError::Build(
                GroupTravelError::InsufficientCategory { .. }
            ))
        ));
        let state = engine.sessions().snapshot(3).unwrap();
        assert_eq!(state.failures, 1);
    }
}
