//! The engine's metric catalog: every counter, gauge, and histogram the
//! engine records, registered once at construction against one
//! [`MetricsRegistry`] and handed out as `Arc` handles the hot paths
//! touch lock-free.
//!
//! Naming follows the Prometheus conventions: `gt_` prefix, `_total`
//! suffix on counters, `_seconds` on latency histograms (recorded in
//! nanoseconds, rendered in seconds). The full catalog:
//!
//! | series | kind | labels |
//! |---|---|---|
//! | `gt_dispatch_latency_seconds` | histogram | `variant` (request kind) |
//! | `gt_build_latency_seconds` | histogram | — |
//! | `gt_command_latency_seconds` | histogram | `kind` (command kind) |
//! | `gt_model_cache_events_total` | counter | `cache`, `event` |
//! | `gt_fcm_train_seconds` | histogram | — |
//! | `gt_fcm_sweeps_total` | counter | — |
//! | `gt_lda_train_seconds` | histogram | — |
//! | `gt_lda_sweeps_total` | counter | — |
//! | `gt_widen_escalations_total` | counter | `category` |
//! | `gt_sessions_open` | gauge | — |
//! | `gt_session_evictions_total` | counter | — |
//! | `gt_session_busy_skips_total` | counter | — |
//! | `gt_slow_requests_total` | counter | — |
//! | `gt_pool_queue_depth` | gauge | — |
//! | `gt_pool_tasks_total` | counter | `kind` (pool task kind) |
//! | `gt_pool_steals_total` | counter | — |
//! | `gt_worker_threads` | gauge | — |
//! | `gt_train_threads` | gauge | — |
//!
//! The `gt_pool_*` series instrument the engine's shared worker pool
//! (serve fan-out and model training); `gt_worker_threads` /
//! `gt_train_threads` report the thread budgets the engine resolved at
//! construction — the same numbers `GET /healthz` and
//! [`EngineStats`](crate::EngineStats) carry.
//!
//! `gt_model_cache_events_total{cache=…}` covers both model caches
//! (`"clustering"` centroids, `"vectorizer"` LDA models) with events
//! `hit` / `miss` / `coalesced_wait` / `eviction`. By construction,
//! `hit + coalesced_wait` for the clustering cache equals
//! [`EngineStats::clustering_cache_hits`](crate::EngineStats) and `miss`
//! equals `fcm_trainings` — the scrape surface and the stats surface
//! never disagree.

use crate::protocol::EngineRequest;
use grouptravel_dataset::Category;
use grouptravel_obs::{Counter, Gauge, Histogram, MetricsRegistry};
use grouptravel_pool::{PoolMetrics, TaskKind};
use std::sync::Arc;

/// `(request kind, dispatch stage name)` per [`EngineRequest`] variant, in
/// [`dispatch_slot`] order. The stage name doubles as the span name a
/// traced request reports for its dispatch stage.
pub(crate) const DISPATCH_VARIANTS: [(&str, &str); 9] = [
    ("build", "dispatch.build"),
    ("batch", "dispatch.batch"),
    ("command", "dispatch.command"),
    ("command-batch", "dispatch.command-batch"),
    ("register-catalog", "dispatch.register-catalog"),
    ("export-session", "dispatch.export-session"),
    ("import-session", "dispatch.import-session"),
    ("stats", "dispatch.stats"),
    ("trace", "dispatch.trace"),
];

/// `(command kind, slow-log / span name)` per
/// [`SessionCommand`](crate::SessionCommand) kind, in
/// [`command_slot`] order.
pub(crate) const COMMAND_VARIANTS: [(&str, &str); 5] = [
    ("build", "command.build"),
    ("customize", "command.customize"),
    ("refine", "command.refine"),
    ("suggest-replacement", "command.suggest-replacement"),
    ("end", "command.end"),
];

/// The `(histogram slot, span/slow-log name)` for a command kind.
pub(crate) fn command_slot(command: &crate::SessionCommand) -> (usize, &'static str) {
    let kind = command.kind();
    let slot = COMMAND_VARIANTS
        .iter()
        .position(|(k, _)| *k == kind)
        .expect("every SessionCommand kind has a command slot");
    (slot, COMMAND_VARIANTS[slot].1)
}

/// The histogram slot for a request variant.
pub(crate) fn dispatch_slot(request: &EngineRequest) -> usize {
    let kind = request.kind();
    DISPATCH_VARIANTS
        .iter()
        .position(|(k, _)| *k == kind)
        .expect("every EngineRequest kind has a dispatch slot")
}

/// The per-kind counters of one model cache on the shared
/// `gt_model_cache_events_total` family.
pub(crate) struct CacheEvents {
    pub hit: Arc<Counter>,
    pub miss: Arc<Counter>,
    pub coalesced_wait: Arc<Counter>,
    pub eviction: Arc<Counter>,
}

impl CacheEvents {
    fn register(registry: &MetricsRegistry, cache: &'static str) -> Self {
        let help = "Model cache events by cache and event kind.";
        let event = |event: &str| {
            registry.counter(
                "gt_model_cache_events_total",
                help,
                &[("cache", cache), ("event", event)],
            )
        };
        CacheEvents {
            hit: event("hit"),
            miss: event("miss"),
            coalesced_wait: event("coalesced_wait"),
            eviction: event("eviction"),
        }
    }
}

/// Session-store instrumentation, attached to the
/// [`SessionStore`](crate::SessionStore) at engine construction.
pub(crate) struct StoreMetrics {
    /// Sessions currently tracked (set after every len-changing write).
    pub open: Arc<Gauge>,
    /// Sessions evicted for staleness.
    pub evictions: Arc<Counter>,
    /// Sessions an eviction sweep skipped because a worker held them.
    pub busy_skips: Arc<Counter>,
}

impl StoreMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        StoreMetrics {
            open: registry.gauge("gt_sessions_open", "Sessions currently tracked.", &[]),
            evictions: registry.counter(
                "gt_session_evictions_total",
                "Sessions evicted for staleness.",
                &[],
            ),
            busy_skips: registry.counter(
                "gt_session_busy_skips_total",
                "Busy sessions skipped by eviction sweeps.",
                &[],
            ),
        }
    }
}

/// Catalog-registry instrumentation: the vectorizer cache's events and
/// LDA training cost, attached to the
/// [`EngineCatalogRegistry`](crate::EngineCatalogRegistry) at engine
/// construction.
pub(crate) struct RegistryMetrics {
    pub vectorizer: CacheEvents,
    pub lda_train: Arc<Histogram>,
    pub lda_sweeps: Arc<Counter>,
}

impl RegistryMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        RegistryMetrics {
            vectorizer: CacheEvents::register(registry, "vectorizer"),
            lda_train: registry.histogram(
                "gt_lda_train_seconds",
                "LDA vectorizer training duration.",
                &[],
            ),
            lda_sweeps: registry.counter(
                "gt_lda_sweeps_total",
                "Gibbs sweeps run by LDA trainings.",
                &[],
            ),
        }
    }
}

/// Every metric handle the engine itself records into. Constructed live
/// or against a disabled registry (then every handle is a no-op and
/// recording costs one branch).
pub struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    /// Per-variant dispatch latency, indexed by [`dispatch_slot`].
    pub(crate) dispatch: [Arc<Histogram>; DISPATCH_VARIANTS.len()],
    /// One-shot build latency (the `serve_one` accounting point).
    pub(crate) build_latency: Arc<Histogram>,
    /// Interactive command latency, indexed by command kind
    /// ([`COMMAND_VARIANTS`] order).
    pub(crate) command_latency: [Arc<Histogram>; COMMAND_VARIANTS.len()],
    /// Clustering (centroid) cache events.
    pub(crate) clustering: CacheEvents,
    /// Fuzzy-c-means training duration.
    pub(crate) fcm_train: Arc<Histogram>,
    /// Iterations run by FCM trainings.
    pub(crate) fcm_sweeps: Arc<Counter>,
    /// Candidate-pool widen escalations, indexed by [`Category::index`].
    pub(crate) widen: [Arc<Counter>; 4],
    /// Requests that crossed the slow-log threshold.
    pub(crate) slow_requests: Arc<Counter>,
}

impl EngineMetrics {
    pub(crate) fn new(registry: Arc<MetricsRegistry>) -> Self {
        let dispatch = DISPATCH_VARIANTS.map(|(kind, _)| {
            registry.histogram(
                "gt_dispatch_latency_seconds",
                "Engine dispatch latency by request variant.",
                &[("variant", kind)],
            )
        });
        let command_latency = COMMAND_VARIANTS.map(|(kind, _)| {
            registry.histogram(
                "gt_command_latency_seconds",
                "Interactive command latency by command kind.",
                &[("kind", kind)],
            )
        });
        let widen = Category::ALL.map(|category| {
            registry.counter(
                "gt_widen_escalations_total",
                "Candidate-pool widen escalations by category.",
                &[("category", category.short_name())],
            )
        });
        let build_latency = registry.histogram(
            "gt_build_latency_seconds",
            "One-shot package build latency.",
            &[],
        );
        let clustering = CacheEvents::register(&registry, "clustering");
        let fcm_train = registry.histogram(
            "gt_fcm_train_seconds",
            "Fuzzy-c-means training duration.",
            &[],
        );
        let fcm_sweeps = registry.counter(
            "gt_fcm_sweeps_total",
            "Iterations run by fuzzy-c-means trainings.",
            &[],
        );
        let slow_requests = registry.counter(
            "gt_slow_requests_total",
            "Requests recorded by the slow-request log.",
            &[],
        );
        EngineMetrics {
            registry,
            dispatch,
            build_latency,
            command_latency,
            clustering,
            fcm_train,
            fcm_sweeps,
            widen,
            slow_requests,
        }
    }

    /// The registry all engine metrics live in — what `GET /metrics`
    /// renders, and where the HTTP layer registers its own series.
    #[must_use]
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub(crate) fn store_metrics(&self) -> StoreMetrics {
        StoreMetrics::register(&self.registry)
    }

    /// Registers the shared worker pool's instrumentation
    /// (`gt_pool_queue_depth`, `gt_pool_tasks_total{kind}`,
    /// `gt_pool_steals_total`) for `WorkerPool::attach_metrics`.
    pub(crate) fn pool_metrics(&self) -> PoolMetrics {
        PoolMetrics {
            queue_depth: self.registry.gauge(
                "gt_pool_queue_depth",
                "Worker-pool jobs queued and not yet picked up.",
                &[],
            ),
            tasks: TaskKind::ALL.map(|kind| {
                self.registry.counter(
                    "gt_pool_tasks_total",
                    "Tasks spawned on the shared worker pool, by kind.",
                    &[("kind", kind.as_str())],
                )
            }),
            steals: self.registry.counter(
                "gt_pool_steals_total",
                "Pool tasks executed by a scope owner helping instead of a worker.",
                &[],
            ),
        }
    }

    /// Publishes the thread budgets the engine resolved at construction
    /// as `gt_worker_threads` / `gt_train_threads`.
    pub(crate) fn set_thread_gauges(&self, worker_threads: usize, train_threads: usize) {
        self.registry
            .gauge(
                "gt_worker_threads",
                "Resolved serve fan-out width of the shared worker pool.",
                &[],
            )
            .set(i64::try_from(worker_threads).unwrap_or(i64::MAX));
        self.registry
            .gauge(
                "gt_train_threads",
                "Resolved model-training fan-out width.",
                &[],
            )
            .set(i64::try_from(train_threads).unwrap_or(i64::MAX));
    }

    pub(crate) fn registry_metrics(&self) -> RegistryMetrics {
        RegistryMetrics::register(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_request_kind_has_a_dispatch_slot() {
        use crate::protocol::EngineRequest;
        let requests = [
            EngineRequest::Stats,
            EngineRequest::ExportSession { session_id: 1 },
            EngineRequest::Trace {
                request: Box::new(EngineRequest::Stats),
            },
        ];
        for request in &requests {
            let slot = dispatch_slot(request);
            assert_eq!(DISPATCH_VARIANTS[slot].0, request.kind());
        }
    }

    #[test]
    fn the_catalog_registers_without_kind_clashes() {
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = EngineMetrics::new(Arc::clone(&registry));
        let _store = metrics.store_metrics();
        let _reg = metrics.registry_metrics();
        metrics.clustering.hit.inc();
        let text = registry.render_prometheus();
        assert!(text.contains("gt_model_cache_events_total{cache=\"clustering\",event=\"hit\"} 1"));
        assert!(text.contains("# TYPE gt_dispatch_latency_seconds histogram"));
        assert!(text.contains("gt_widen_escalations_total{category=\"acco\"} 0"));
    }

    #[test]
    fn disabled_metrics_render_nothing() {
        let registry = Arc::new(MetricsRegistry::disabled());
        let metrics = EngineMetrics::new(Arc::clone(&registry));
        metrics.slow_requests.inc();
        assert_eq!(registry.render_prometheus(), "");
    }
}
