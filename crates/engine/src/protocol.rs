//! The engine's **versioned wire protocol**: one typed request/response
//! pair in front of every way into the engine.
//!
//! PR 1 and PR 2 grew four parallel entry points (`serve`, `serve_batch`,
//! `serve_command`, `serve_commands_batch`) with disjoint request and
//! response types — workable in-process, a dead end for a network boundary.
//! This module collapses them into a single envelope:
//!
//! * [`EngineRequest`] — everything a client can ask: one-shot builds,
//!   batches, interactive session commands (single or batched), catalog
//!   registration, session snapshot/resume, and stats.
//! * [`EngineResponse`] — the matching answers, one variant per request
//!   kind, plus [`EngineResponse::Error`] for protocol-level failures.
//! * [`RequestEnvelope`]/[`ResponseEnvelope`] — the version-stamped frames
//!   that actually travel. **Versioning rule:** `v` is a single integer
//!   ([`PROTOCOL_VERSION`]); additions of new request/response variants or
//!   new *optional* fields keep the version; renaming or changing the
//!   meaning of anything that already shipped bumps it. A server answers
//!   exactly one version and rejects others with
//!   [`ProtocolError::UNSUPPORTED_VERSION`] — clients must not guess.
//!
//! Every type here round-trips JSON **bit-identically** (pinned by the
//! `protocol_roundtrip` proptest suite): floats use shortest round-trip
//! formatting, durations split into `{secs, nanos}`, and errors carry
//! their full typed payload alongside the stable numeric code, so a
//! response relayed through any number of JSON hops is the response the
//! engine produced.
//!
//! [`crate::Engine::dispatch`] serves the protocol in-process; the
//! `grouptravel-server` crate serves the same bytes over HTTP/1.1.

use crate::interactive::{CommandRequest, CommandResponse};
use crate::store::{SessionId, SessionState};
use crate::{EngineError, EngineStats, PackageRequest, PackageResponse};
use grouptravel_dataset::PoiCatalog;
use grouptravel_obs::TraceReport;
use serde::{DeError, Deserialize, Serialize, Sink, Source, Value};
use std::fmt;

/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u32 = 1;

/// The snapshot-format version [`SessionSnapshot`] carries (independent of
/// the protocol version: snapshots outlive connections — they get parked
/// in files and object stores — so they version separately).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A protocol-level failure: the request never reached (or never named) a
/// serving path. Application-level failures — unknown city, unsatisfiable
/// query, unknown session — ride *inside* the matching response variant as
/// [`EngineError`] instead, so a batch of 50 requests with one bad entry
/// still answers the other 49.
///
/// `code` is stable and machine-matchable; `message` is the human-readable
/// rendering and carries no contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolError {
    /// Stable numeric code (`9x` for protocol-level, `1`–`16` mirror
    /// [`EngineError::code`] when an engine error is flattened to the wire).
    pub code: u16,
    /// Human-readable message.
    pub message: String,
}

impl ProtocolError {
    /// The envelope named a protocol version this server does not speak.
    pub const UNSUPPORTED_VERSION: u16 = 90;
    /// The request body did not parse as a [`RequestEnvelope`].
    pub const MALFORMED_REQUEST: u16 = 91;
    /// The HTTP path does not exist.
    pub const NOT_FOUND: u16 = 92;
    /// The HTTP method is not valid for the path.
    pub const METHOD_NOT_ALLOWED: u16 = 93;
    /// The server failed internally while serving the request.
    pub const INTERNAL: u16 = 94;
    /// The request body exceeded the server's size limit.
    pub const BODY_TOO_LARGE: u16 = 95;

    /// A protocol error with the given stable code and message.
    #[must_use]
    pub fn new(code: u16, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// The error a wrong-version envelope is rejected with.
    #[must_use]
    pub fn unsupported_version(got: u32) -> Self {
        Self::new(
            Self::UNSUPPORTED_VERSION,
            format!(
                "protocol version {got} is not supported; this server speaks {PROTOCOL_VERSION}"
            ),
        )
    }
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for ProtocolError {}

impl From<EngineError> for ProtocolError {
    /// Flattens an engine error to the wire pair: its stable code and its
    /// `Display` message, verbatim.
    fn from(e: EngineError) -> Self {
        Self::new(e.code(), e.to_string())
    }
}

/// A complete, resumable snapshot of one interactive session.
///
/// [`crate::Engine::export_session`] produces it; feeding it to
/// [`crate::Engine::import_session`] — on the same engine after an
/// eviction, or on a different engine entirely — reinstates the session's
/// whole history: current package, (refined) profile, pooled interactions,
/// counters. The target engine must have the session's city registered;
/// import re-primes the catalog's spatial index so the resumed session's
/// first command runs on the grid path, never a cold rebuild.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot format version ([`SNAPSHOT_VERSION`] at export time).
    pub v: u32,
    /// The session the snapshot belongs to.
    pub session_id: SessionId,
    /// The session's full state machine.
    pub state: SessionState,
}

/// Everything a newly registered catalog reports back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogInfo {
    /// The city the catalog is now addressable by.
    pub city: String,
    /// The catalog's content fingerprint (model-cache key component).
    pub fingerprint: u64,
    /// Whether registering trained a fresh LDA vectorizer (`false` means a
    /// warm model was reused).
    pub lda_trained: bool,
}

/// The acknowledgement of a successful session import.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportInfo {
    /// The session id the snapshot was installed under.
    pub session_id: SessionId,
    /// The city the resumed session is served in.
    pub city: String,
    /// Whether an existing session with the same id was replaced.
    pub replaced: bool,
}

/// Every request the engine can serve — the single public surface of the
/// serving layer. The legacy `serve*` methods are thin wrappers that wrap
/// their argument in the matching variant and unwrap the matching response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineRequest {
    /// Build one package (the PR 1 `serve` path). (Boxed: the request —
    /// profile included — dwarfs every other variant.)
    Build {
        /// The one-shot package request.
        request: Box<PackageRequest>,
    },
    /// Build a batch of packages with worker fan-out (`serve_batch`).
    Batch {
        /// The batch, answered in order.
        requests: Vec<PackageRequest>,
    },
    /// One interactive-session command (`serve_command`).
    Command {
        /// The addressed command.
        request: CommandRequest,
    },
    /// A batch of interactive commands — per-session lanes, distinct
    /// sessions fan out (`serve_commands_batch`).
    CommandBatch {
        /// The batch, answered in order.
        requests: Vec<CommandRequest>,
    },
    /// Register (or replace) a city catalog, training or reusing its
    /// vectorizer.
    RegisterCatalog {
        /// The catalog to register under its city name.
        catalog: Box<PoiCatalog>,
    },
    /// Snapshot one session for persistence or migration.
    ExportSession {
        /// The session to snapshot.
        session_id: SessionId,
    },
    /// Reinstate a previously exported session.
    ImportSession {
        /// The snapshot to resume from.
        snapshot: Box<SessionSnapshot>,
    },
    /// Aggregate serving counters.
    Stats,
    /// Serve the inner request with per-request tracing: the response is
    /// [`EngineResponse::Traced`], carrying the inner response plus the
    /// stage timeline the dispatch recorded. Tracing a `Trace` answers the
    /// inner request untraced (traces do not nest). Adding this variant
    /// did not bump [`PROTOCOL_VERSION`]: old servers reject unknown
    /// variants as malformed, old clients simply never send it.
    Trace {
        /// The request to serve and trace.
        request: Box<EngineRequest>,
    },
}

impl EngineRequest {
    /// Display name of the request kind (used in logs and errors).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            EngineRequest::Build { .. } => "build",
            EngineRequest::Batch { .. } => "batch",
            EngineRequest::Command { .. } => "command",
            EngineRequest::CommandBatch { .. } => "command-batch",
            EngineRequest::RegisterCatalog { .. } => "register-catalog",
            EngineRequest::ExportSession { .. } => "export-session",
            EngineRequest::ImportSession { .. } => "import-session",
            EngineRequest::Stats => "stats",
            EngineRequest::Trace { .. } => "trace",
        }
    }
}

/// The engine's answer to one [`EngineRequest`] — variants correspond
/// one-to-one (plus [`EngineResponse::Error`] for protocol-level
/// failures). Per-request failures are typed [`EngineError`]s inside the
/// variant payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineResponse {
    /// Answer to [`EngineRequest::Build`].
    Package {
        /// The built package (or typed failure) with serving metadata.
        response: PackageResponse,
    },
    /// Answer to [`EngineRequest::Batch`], in request order.
    Batch {
        /// One response per request; failures never abort the batch.
        responses: Vec<PackageResponse>,
    },
    /// Answer to [`EngineRequest::Command`].
    Command {
        /// The command's outcome with session metadata.
        response: CommandResponse,
    },
    /// Answer to [`EngineRequest::CommandBatch`], in request order.
    CommandBatch {
        /// One response per command; failures never abort the batch.
        responses: Vec<CommandResponse>,
    },
    /// Answer to [`EngineRequest::RegisterCatalog`].
    Registered {
        /// The registered catalog's identity, or why registration failed.
        outcome: Result<CatalogInfo, EngineError>,
    },
    /// Answer to [`EngineRequest::ExportSession`].
    Session {
        /// The snapshot, or why it could not be taken.
        outcome: Result<Box<SessionSnapshot>, EngineError>,
    },
    /// Answer to [`EngineRequest::ImportSession`].
    Imported {
        /// The resumed session's identity, or why the import failed.
        outcome: Result<ImportInfo, EngineError>,
    },
    /// Answer to [`EngineRequest::Stats`].
    Stats {
        /// Aggregate serving counters since engine construction.
        stats: EngineStats,
    },
    /// Answer to [`EngineRequest::Trace`]: the inner response plus the
    /// stage timeline its dispatch recorded.
    Traced {
        /// The inner request's response.
        response: Box<EngineResponse>,
        /// The stages the dispatch ran through, in completion order.
        trace: TraceReport,
    },
    /// The request failed before reaching a serving path (bad version,
    /// malformed body, transport-level trouble).
    Error {
        /// What went wrong, with its stable code.
        error: ProtocolError,
    },
}

impl EngineResponse {
    /// Display name of the response kind (used in logs and errors).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            EngineResponse::Package { .. } => "package",
            EngineResponse::Batch { .. } => "batch",
            EngineResponse::Command { .. } => "command",
            EngineResponse::CommandBatch { .. } => "command-batch",
            EngineResponse::Registered { .. } => "registered",
            EngineResponse::Session { .. } => "session",
            EngineResponse::Imported { .. } => "imported",
            EngineResponse::Stats { .. } => "stats",
            EngineResponse::Traced { .. } => "traced",
            EngineResponse::Error { .. } => "error",
        }
    }

    /// The protocol-level error, when this response is one.
    #[must_use]
    pub fn protocol_error(&self) -> Option<&ProtocolError> {
        match self {
            EngineResponse::Error { error } => Some(error),
            _ => None,
        }
    }
}

/// The version-stamped frame a request travels in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestEnvelope {
    /// Protocol version the client speaks (must equal
    /// [`PROTOCOL_VERSION`]).
    pub v: u32,
    /// The request proper.
    pub request: EngineRequest,
}

impl RequestEnvelope {
    /// Wraps a request in the current protocol version.
    #[must_use]
    pub fn new(request: EngineRequest) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            request,
        }
    }
}

/// The version-stamped frame a response travels in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponseEnvelope {
    /// Protocol version the server answered with.
    pub v: u32,
    /// The response proper.
    pub response: EngineResponse,
}

impl ResponseEnvelope {
    /// Wraps a response in the current protocol version.
    #[must_use]
    pub fn new(response: EngineResponse) -> Self {
        Self {
            v: PROTOCOL_VERSION,
            response,
        }
    }
}

// ---------------------------------------------------------------------------
// EngineError on the wire
// ---------------------------------------------------------------------------

/// The typed payload of an [`EngineError`], in the derive-friendly shape.
/// Kept private: the public wire form wraps it with the stable code and the
/// rendered message (see the manual impls below).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum EngineErrorKind {
    UnknownCity(String),
    UnknownSession(SessionId),
    InvalidCommand(String),
    Build(grouptravel::GroupTravelError),
}

impl From<&EngineError> for EngineErrorKind {
    fn from(e: &EngineError) -> Self {
        match e {
            EngineError::UnknownCity(city) => EngineErrorKind::UnknownCity(city.clone()),
            EngineError::UnknownSession(id) => EngineErrorKind::UnknownSession(*id),
            EngineError::InvalidCommand(why) => EngineErrorKind::InvalidCommand(why.clone()),
            EngineError::Build(inner) => EngineErrorKind::Build(inner.clone()),
        }
    }
}

impl From<EngineErrorKind> for EngineError {
    fn from(kind: EngineErrorKind) -> Self {
        match kind {
            EngineErrorKind::UnknownCity(city) => EngineError::UnknownCity(city),
            EngineErrorKind::UnknownSession(id) => EngineError::UnknownSession(id),
            EngineErrorKind::InvalidCommand(why) => EngineError::InvalidCommand(why),
            EngineErrorKind::Build(inner) => EngineError::Build(inner),
        }
    }
}

/// The wire form of an [`EngineError`] is
/// `{"code": <stable u16>, "message": <Display, verbatim>, "kind": <typed payload>}`:
/// `code` is what clients match on, `message` is what they log, and `kind`
/// is what makes the round trip bit-identical — decoding reads only
/// `kind` (code and message are derived data and re-derived on re-encode).
impl Serialize for EngineError {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::UInt(u64::from(self.code()))),
            ("message".to_string(), Value::Str(self.to_string())),
            ("kind".to_string(), EngineErrorKind::from(self).to_value()),
        ])
    }

    fn stream(&self, sink: &mut dyn Sink) {
        sink.object(3);
        sink.name("code");
        sink.uint(u64::from(self.code()));
        sink.name("message");
        sink.string(&self.to_string());
        sink.name("kind");
        EngineErrorKind::from(self).stream(sink);
    }
}

impl Deserialize for EngineError {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("EngineError: expected object, got {v:?}")))?;
        let kind: EngineErrorKind = serde::field(obj, "kind", "EngineError")?;
        Ok(kind.into())
    }

    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let members = src
            .object()
            .map_err(|e| DeError::custom(format!("EngineError: {e}")))?;
        let mut kind: Option<EngineErrorKind> = None;
        for _ in 0..members {
            let name = src.name()?;
            match name.as_ref() {
                "kind" if kind.is_none() => {
                    kind = Some(
                        EngineErrorKind::decode(src)
                            .map_err(|e| DeError::custom(format!("EngineError.kind: {e}")))?,
                    );
                }
                _ => src.skip_value()?,
            }
        }
        let kind = kind.ok_or_else(|| DeError::custom("EngineError: missing field `kind`"))?;
        Ok(kind.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel::GroupTravelError;

    #[test]
    fn engine_error_wire_form_carries_code_message_and_kind() {
        let e = EngineError::UnknownSession(42);
        let v = e.to_value();
        assert_eq!(v.get("code"), Some(&Value::UInt(2)));
        assert_eq!(
            v.get("message"),
            Some(&Value::Str(e.to_string())),
            "wire message is the Display rendering, verbatim"
        );
        let back = EngineError::from_value(&v).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn engine_errors_round_trip_bit_identically_through_json() {
        let all = [
            EngineError::UnknownCity("Atlantis".to_string()),
            EngineError::UnknownSession(7),
            EngineError::InvalidCommand("no package yet".to_string()),
            EngineError::Build(GroupTravelError::ZeroCompositeItems),
            EngineError::Build(GroupTravelError::InsufficientCategory {
                category: grouptravel_dataset::Category::Restaurant,
                required: 3,
                available: 1,
            }),
        ];
        for e in all {
            let json = serde_json::to_string(&e).unwrap();
            assert_eq!(serde_json::from_str::<EngineError>(&json).unwrap(), e);
        }
    }

    #[test]
    fn protocol_error_flattens_code_and_display_verbatim() {
        let e = EngineError::UnknownSession(9);
        let wire: ProtocolError = e.clone().into();
        assert_eq!(wire.code, e.code());
        assert_eq!(wire.message, e.to_string());
    }

    #[test]
    fn envelopes_default_to_the_current_version() {
        let env = RequestEnvelope::new(EngineRequest::Stats);
        assert_eq!(env.v, PROTOCOL_VERSION);
        let json = serde_json::to_string(&env).unwrap();
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }
}
