//! The grid-backed candidate provider.
//!
//! Plugs the registry's per-category [`GridIndex`]es into the core builder's
//! `CandidateProvider` seam: instead of scoring every POI of a category for
//! every composite item (the brute-force default), only POIs in grid cells
//! around the centroid are surfaced, expanding ring by ring until the pool
//! is comfortably larger than what the query needs.

use crate::registry::CityEntry;
use grouptravel::CandidateProvider;
use grouptravel_dataset::{Category, Poi, PoiCatalog};
use grouptravel_geo::GeoPoint;

/// Candidate generation via the city's spatial grids.
///
/// The pool per category is
/// `max(needed × oversample, min_pool)` points around the centroid (all of
/// the category when it is smaller than that): large enough that greedy
/// selection under budget constraints has slack, small enough that scoring
/// stays O(pool) instead of O(category).
///
/// With `min_pool = usize::MAX` (see `EngineConfig::exhaustive`) the pool is
/// always the whole category and builds are bit-for-bit identical to the
/// brute-force path — the configuration the equivalence tests exercise.
pub struct GridCandidates<'e> {
    entry: &'e CityEntry,
    min_pool: usize,
    oversample: usize,
}

impl<'e> GridCandidates<'e> {
    /// Creates a provider over a registered city.
    #[must_use]
    pub fn new(entry: &'e CityEntry, min_pool: usize, oversample: usize) -> Self {
        Self {
            entry,
            min_pool,
            oversample: oversample.max(1),
        }
    }
}

impl CandidateProvider for GridCandidates<'_> {
    fn candidates<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        needed: usize,
    ) -> Vec<&'c Poi> {
        // The grids' stored positions are only valid for the exact catalog
        // they were built from. The engine always passes that instance; any
        // other caller (both types are public API) gets the correct
        // brute-force answer instead of out-of-bounds/wrong-POI lookups.
        if !std::ptr::eq(catalog, self.entry.catalog()) {
            return catalog.by_category(category);
        }
        let Some(category_grid) = self.entry.category_grid(category) else {
            return Vec::new();
        };
        let pool = needed.saturating_mul(self.oversample).max(self.min_pool);
        let grid_indices = category_grid.grid().candidates_around(centroid, pool);
        let pois = catalog.pois();
        category_grid
            .to_catalog_positions(&grid_indices)
            .into_iter()
            .map(|pos| &pois[pos])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineCatalogRegistry;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_topics::LdaConfig;

    #[test]
    fn foreign_catalog_falls_back_to_brute_force() {
        let catalog = SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(5))
            .generate();
        let registry = EngineCatalogRegistry::new();
        let (entry, _) = registry
            .register(
                catalog,
                LdaConfig {
                    iterations: 20,
                    ..LdaConfig::default()
                },
            )
            .unwrap();
        // A different catalog instance — even a smaller one — must get a
        // correct answer out of its own POIs, not grid positions from the
        // registered one.
        let other =
            SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::small(6))
                .generate();
        let provider = GridCandidates::new(&entry, 8, 4);
        let center = other.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let pool = provider.candidates(&other, category, &center, 2);
            assert_eq!(pool.len(), other.count_category(category));
            assert!(pool.iter().all(|p| p.category == category));
        }
    }

    #[test]
    fn exhaustive_pool_equals_the_whole_category() {
        let catalog = SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(3))
            .generate();
        let registry = EngineCatalogRegistry::new();
        let (entry, _) = registry
            .register(
                catalog,
                LdaConfig {
                    iterations: 20,
                    ..LdaConfig::default()
                },
            )
            .unwrap();
        let provider = GridCandidates::new(&entry, usize::MAX, 8);
        let catalog = entry.catalog();
        let center = catalog.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let mut pool: Vec<u64> = provider
                .candidates(catalog, category, &center, 2)
                .iter()
                .map(|p| p.id.0)
                .collect();
            pool.sort_unstable();
            let mut all: Vec<u64> = catalog
                .by_category(category)
                .iter()
                .map(|p| p.id.0)
                .collect();
            all.sort_unstable();
            assert_eq!(pool, all);
        }
    }

    #[test]
    fn bounded_pool_is_a_subset_with_enough_candidates() {
        let catalog = SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(4))
            .generate();
        let registry = EngineCatalogRegistry::new();
        let (entry, _) = registry
            .register(
                catalog,
                LdaConfig {
                    iterations: 20,
                    ..LdaConfig::default()
                },
            )
            .unwrap();
        let provider = GridCandidates::new(&entry, 8, 4);
        let catalog = entry.catalog();
        let center = catalog.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let pool = provider.candidates(catalog, category, &center, 2);
            let category_size = catalog.count_category(category);
            assert!(pool.len() >= 8.min(category_size));
            assert!(pool.len() <= category_size);
            for poi in &pool {
                assert_eq!(poi.category, category);
            }
        }
    }
}
