//! The grid-backed candidate provider.
//!
//! Plugs the catalog's per-category spatial grids into the core builder's
//! `CandidateProvider` seam: instead of scoring every POI of a category for
//! every composite item (the brute-force default), only the *exact*
//! `pool`-nearest POIs to the centroid are surfaced — computed by the
//! ring-bounded k-NN of `GridIndex`, so the pool is precisely what a full
//! sort by distance would yield, at O(cells touched + pool) cost.
//!
//! When the builder reports a shortfall (the budget rejected too many of
//! the pooled candidates), [`CandidateProvider::widen`] doubles the pool —
//! continuing the ring expansion rather than restarting from a full
//! category scan — until the count is met or the pool covers the whole
//! category, at which point the selection is running on exactly the
//! brute-force pool in the brute-force order.

use crate::registry::CityEntry;
use grouptravel::CandidateProvider;
use grouptravel_dataset::{Category, Poi, PoiCatalog};
use grouptravel_geo::{DistanceMetric, GeoPoint};
use grouptravel_obs::Counter;
use std::sync::Arc;

/// Candidate generation via the city's spatial grids.
///
/// The pool per category is the exact `max(needed × oversample, min_pool)`
/// nearest POIs to the centroid (the whole category when it is smaller than
/// that): large enough that greedy selection under budget constraints has
/// slack, small enough that scoring stays O(pool) instead of O(category).
/// Candidates are returned in catalog order — the builder re-ranks by score,
/// and catalog order makes its tie-breaking identical to the brute-force
/// path's, so a pool that covers the category is bit-for-bit equivalent to
/// brute force.
///
/// With `min_pool = usize::MAX` (see `EngineConfig::exhaustive`) the pool is
/// always the whole category and builds are bit-identical to the brute-force
/// path by construction — the configuration the equivalence tests exercise.
pub struct GridCandidates<'e> {
    entry: &'e CityEntry,
    min_pool: usize,
    oversample: usize,
    metric: DistanceMetric,
    /// Per-category widen-escalation counters ([`Category::index`] order),
    /// attached by the engine via [`GridCandidates::with_widen_counters`].
    widen_counters: Option<&'e [Arc<Counter>; 4]>,
}

impl<'e> GridCandidates<'e> {
    /// Creates a provider over a registered city. `metric` must be the
    /// engine's serving metric so pool distances agree with build scoring.
    #[must_use]
    pub fn new(
        entry: &'e CityEntry,
        min_pool: usize,
        oversample: usize,
        metric: DistanceMetric,
    ) -> Self {
        Self {
            entry,
            min_pool,
            oversample: oversample.max(1),
            metric,
            widen_counters: None,
        }
    }

    /// Counts every [`CandidateProvider::widen`] escalation on the
    /// per-category counters (the engine's
    /// `gt_widen_escalations_total{category=…}` series).
    #[must_use]
    pub fn with_widen_counters(mut self, counters: &'e [Arc<Counter>; 4]) -> Self {
        self.widen_counters = Some(counters);
        self
    }

    /// The exact `pool_size`-nearest POIs of `category` around `centroid`,
    /// in catalog order; the whole category when `pool_size` covers it.
    fn pool<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        pool_size: usize,
    ) -> Vec<&'c Poi> {
        if pool_size >= catalog.count_category(category) {
            return catalog.by_category(category);
        }
        let Some(grid) = self.entry.category_grid(category) else {
            return Vec::new();
        };
        let mut positions = grid.k_nearest(centroid, pool_size, self.metric, |_| true);
        // Catalog order, not distance order: the builder re-scores anyway,
        // and catalog order keeps score ties resolving exactly as the
        // brute-force path resolves them.
        positions.sort_unstable();
        let pois = catalog.pois();
        positions.into_iter().map(|pos| &pois[pos]).collect()
    }

    /// Whether `catalog` is the instance the grids were built from.
    fn owns(&self, catalog: &PoiCatalog) -> bool {
        std::ptr::eq(catalog, self.entry.catalog())
    }
}

impl CandidateProvider for GridCandidates<'_> {
    fn candidates<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        needed: usize,
    ) -> Vec<&'c Poi> {
        // The grids' stored positions are only valid for the exact catalog
        // they were built from. The engine always passes that instance; any
        // other caller (both types are public API) gets the correct
        // brute-force answer instead of out-of-bounds/wrong-POI lookups.
        if !self.owns(catalog) {
            return catalog.by_category(category);
        }
        let pool_size = needed.saturating_mul(self.oversample).max(self.min_pool);
        self.pool(catalog, category, centroid, pool_size)
    }

    fn widen<'c>(
        &self,
        catalog: &'c PoiCatalog,
        category: Category,
        centroid: &GeoPoint,
        _needed: usize,
        previous: usize,
    ) -> Option<Vec<&'c Poi>> {
        if !self.owns(catalog) || previous >= catalog.count_category(category) {
            // Foreign catalogs already got the whole category; a pool that
            // covered the category cannot grow.
            return None;
        }
        if let Some(counters) = self.widen_counters {
            counters[category.index()].inc();
        }
        Some(self.pool(
            catalog,
            category,
            centroid,
            previous.saturating_mul(2).max(1),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineCatalogRegistry;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};
    use grouptravel_topics::LdaConfig;

    const METRIC: DistanceMetric = DistanceMetric::Equirectangular;

    fn registered(seed: u64) -> (EngineCatalogRegistry, std::sync::Arc<CityEntry>) {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed))
                .generate();
        let registry = EngineCatalogRegistry::new();
        let (entry, _) = registry
            .register(
                catalog,
                LdaConfig {
                    iterations: 20,
                    ..LdaConfig::default()
                },
            )
            .unwrap();
        (registry, entry)
    }

    #[test]
    fn foreign_catalog_falls_back_to_brute_force() {
        let (_registry, entry) = registered(5);
        // A different catalog instance — even a smaller one — must get a
        // correct answer out of its own POIs, not grid positions from the
        // registered one.
        let other =
            SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::small(6))
                .generate();
        let provider = GridCandidates::new(&entry, 8, 4, METRIC);
        let center = other.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let pool = provider.candidates(&other, category, &center, 2);
            assert_eq!(pool.len(), other.count_category(category));
            assert!(pool.iter().all(|p| p.category == category));
            assert!(provider
                .widen(&other, category, &center, 2, pool.len())
                .is_none());
        }
    }

    #[test]
    fn exhaustive_pool_equals_the_whole_category() {
        let (_registry, entry) = registered(3);
        let provider = GridCandidates::new(&entry, usize::MAX, 8, METRIC);
        let catalog = entry.catalog();
        let center = catalog.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let pool: Vec<u64> = provider
                .candidates(catalog, category, &center, 2)
                .iter()
                .map(|p| p.id.0)
                .collect();
            let all: Vec<u64> = catalog
                .by_category(category)
                .iter()
                .map(|p| p.id.0)
                .collect();
            assert_eq!(pool, all, "exhaustive pools surface the category in order");
        }
    }

    #[test]
    fn bounded_pool_is_the_exact_nearest_set_in_catalog_order() {
        let (_registry, entry) = registered(4);
        let provider = GridCandidates::new(&entry, 8, 4, METRIC);
        let catalog = entry.catalog();
        let center = catalog.bounding_box().unwrap().center();
        for &category in &Category::ALL {
            let pool = provider.candidates(catalog, category, &center, 2);
            let category_size = catalog.count_category(category);
            let expected_size = 8.min(category_size);
            assert_eq!(
                pool.len(),
                expected_size,
                "pool is exactly k, not a superset"
            );
            // The pool must be exactly the brute-force k nearest…
            let brute: Vec<u64> = catalog
                .k_nearest_in_category(&center, category, expected_size, METRIC, &[])
                .iter()
                .map(|p| p.id.0)
                .collect();
            let mut pool_ids: Vec<u64> = pool.iter().map(|p| p.id.0).collect();
            let mut brute_sorted = brute.clone();
            brute_sorted.sort_unstable();
            let sorted_pool = {
                pool_ids.sort_unstable();
                pool_ids.clone()
            };
            assert_eq!(sorted_pool, brute_sorted);
            // …and come back in catalog order.
            let positions: Vec<usize> = pool
                .iter()
                .map(|p| catalog.pois().iter().position(|q| q.id == p.id).unwrap())
                .collect();
            assert!(positions.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn widen_doubles_until_the_category_is_covered() {
        let (_registry, entry) = registered(7);
        let provider = GridCandidates::new(&entry, 4, 1, METRIC);
        let catalog = entry.catalog();
        let center = catalog.bounding_box().unwrap().center();
        let category = Category::Restaurant;
        let category_size = catalog.count_category(category);
        let mut pool = provider.candidates(catalog, category, &center, 2);
        assert_eq!(pool.len(), 4);
        let mut widenings = 0;
        while let Some(wider) = provider.widen(catalog, category, &center, 2, pool.len()) {
            assert!(
                wider.len() > pool.len(),
                "widen must strictly grow the pool"
            );
            pool = wider;
            widenings += 1;
            assert!(widenings < 64, "widening must terminate");
        }
        assert_eq!(
            pool.len(),
            category_size,
            "widening ends at the whole category"
        );
        let all: Vec<u64> = catalog
            .by_category(category)
            .iter()
            .map(|p| p.id.0)
            .collect();
        let pool_ids: Vec<u64> = pool.iter().map(|p| p.id.0).collect();
        assert_eq!(
            pool_ids, all,
            "the final pool is brute force in brute order"
        );
    }
}
