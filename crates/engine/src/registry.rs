//! The catalog registry: loaded cities, their fingerprints, warm item
//! vectorizers, and per-category spatial grids.
//!
//! Registering a city is the expensive, once-per-catalog step — it trains
//! (or re-uses) the LDA-backed [`ItemVectorizer`] and primes the catalog's
//! per-category [`grouptravel_dataset::SpatialIndex`] (the grids live on
//! the catalog itself since the k-NN refactor, so every consumer — engine
//! provider, `REPLACE` suggestions, `ADD` candidates — shares one build).
//! Everything a request needs afterwards hangs off an `Arc<CityEntry>`, so
//! serving threads share the substrate without copying or locking it.
//!
//! Vectorizers are cached across registrations in a bounded LRU keyed by
//! `(catalog fingerprint, LdaConfig cache key)`: re-registering the same
//! catalog content (a restart, a replica, an A/B twin) skips LDA training
//! entirely, while superseded catalog versions age out instead of
//! accumulating forever.

use crate::cache::{CacheOutcome, LruCache};
use crate::observe::RegistryMetrics;
use grouptravel::{GroupTravelError, ItemVectorizer};
use grouptravel_dataset::{Category, CategoryGrid, PoiCatalog};
use grouptravel_pool::WorkerPool;
use grouptravel_topics::LdaConfig;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

/// A fully-prepared city: catalog (with primed spatial grids), fingerprint,
/// warm vectorizer.
#[derive(Debug)]
pub struct CityEntry {
    catalog: PoiCatalog,
    fingerprint: u64,
    vectorizer: Arc<ItemVectorizer>,
}

impl CityEntry {
    /// The city's catalog.
    #[must_use]
    pub fn catalog(&self) -> &PoiCatalog {
        &self.catalog
    }

    /// The catalog's content fingerprint.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The item vectorizer trained for this catalog.
    #[must_use]
    pub fn vectorizer(&self) -> &ItemVectorizer {
        &self.vectorizer
    }

    /// A shareable handle to the vectorizer (for registering other cities
    /// with the same profile schema).
    #[must_use]
    pub fn vectorizer_arc(&self) -> Arc<ItemVectorizer> {
        Arc::clone(&self.vectorizer)
    }

    /// The spatial grid for one category (the catalog's own, primed at
    /// registration).
    #[must_use]
    pub fn category_grid(&self, category: Category) -> Option<&CategoryGrid> {
        self.catalog.spatial().category(category)
    }
}

/// Thread-safe registry of loaded city catalogs.
pub struct EngineCatalogRegistry {
    cities: RwLock<HashMap<String, Arc<CityEntry>>>,
    /// Warm LDA models: `(catalog fingerprint, LdaConfig::cache_key())` →
    /// trained vectorizer. Bounded so superseded catalog contents age out.
    vectorizers: LruCache<(u64, u64), ItemVectorizer>,
    /// Training-cost / cache-event instrumentation, attached once by the
    /// engine.
    metrics: OnceLock<RegistryMetrics>,
}

impl Default for EngineCatalogRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineCatalogRegistry {
    /// Default capacity of the warm-vectorizer LRU: comfortably more than
    /// the number of catalogs a single engine serves at once, small enough
    /// that stale catalog versions cannot pile up.
    pub const DEFAULT_VECTORIZER_CAPACITY: usize = 16;

    /// An empty registry with the default warm-model capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_vectorizer_capacity(Self::DEFAULT_VECTORIZER_CAPACITY)
    }

    /// An empty registry keeping at most `capacity` warm vectorizers.
    #[must_use]
    pub fn with_vectorizer_capacity(capacity: usize) -> Self {
        Self {
            cities: RwLock::new(HashMap::new()),
            vectorizers: LruCache::new(capacity),
            metrics: OnceLock::new(),
        }
    }

    /// Attaches training/cache instrumentation. Only the first attachment
    /// takes effect; it also hooks the vectorizer LRU's eviction counter.
    pub(crate) fn attach_metrics(&self, metrics: RegistryMetrics) {
        self.vectorizers
            .on_evict(Arc::clone(&metrics.vectorizer.eviction));
        let _ = self.metrics.set(metrics);
    }

    /// Registers a catalog under its city name, training the vectorizer if
    /// no warm model exists for this exact catalog content and LDA
    /// configuration. Replaces any previous entry for the same city name.
    ///
    /// Returns the prepared entry and whether a vectorizer training run was
    /// needed (`false` means a warm model was reused).
    ///
    /// # Errors
    /// Fails when the catalog is empty or topic-model training fails.
    pub fn register(
        &self,
        catalog: PoiCatalog,
        lda: LdaConfig,
    ) -> Result<(Arc<CityEntry>, bool), GroupTravelError> {
        self.register_on(catalog, lda, None)
    }

    /// [`EngineCatalogRegistry::register`] with an optional worker pool
    /// handed through to vectorizer training ([`ItemVectorizer::fit_on`]).
    /// Only the block-Gibbs LDA sampler fans out; results are identical
    /// with or without a pool.
    ///
    /// # Errors
    /// Fails when the catalog is empty or topic-model training fails.
    pub fn register_on(
        &self,
        catalog: PoiCatalog,
        lda: LdaConfig,
        pool: Option<&WorkerPool>,
    ) -> Result<(Arc<CityEntry>, bool), GroupTravelError> {
        if catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        let fingerprint = catalog.fingerprint();
        let model_key = (fingerprint, lda.cache_key());

        // Single-flight training: concurrent registrations of identical
        // catalog content coalesce onto one LDA run (the same stampede
        // protection the clustering cache applies to cold builds).
        let (vectorizer, outcome) = self.vectorizers.get_or_train(model_key, || {
            let _timed = grouptravel_obs::Span::start(
                "lda.train",
                self.metrics.get().map(|m| m.lda_train.as_ref()),
            );
            ItemVectorizer::fit_on(&catalog, lda, pool)
        })?;
        let trained = outcome == CacheOutcome::Trained;
        if let Some(metrics) = self.metrics.get() {
            match outcome {
                CacheOutcome::Hit => metrics.vectorizer.hit.inc(),
                CacheOutcome::Coalesced => metrics.vectorizer.coalesced_wait.inc(),
                CacheOutcome::Trained => {
                    metrics.vectorizer.miss.inc();
                    metrics
                        .lda_sweeps
                        .add(u64::try_from(lda.iterations).unwrap_or(u64::MAX));
                }
            }
        }

        // Prime the catalog's per-category grids now, off the request path:
        // every spatial query any request makes afterwards finds them built.
        let _ = catalog.spatial();

        let entry = Arc::new(CityEntry {
            fingerprint,
            vectorizer,
            catalog,
        });
        self.cities
            .write()
            .expect("city registry poisoned")
            .insert(entry.catalog.city().to_string(), Arc::clone(&entry));
        Ok((entry, trained))
    }

    /// Registers a catalog that reuses an already-trained vectorizer
    /// (typically another registered city's) so both cities share one
    /// profile schema — profiles elicited or refined against one remain
    /// meaningful in the other (the §4.4.4 cross-city transfer). No LDA
    /// training runs; the shared model is *not* entered into the warm-model
    /// LRU because its key (its own catalog's fingerprint) does not
    /// describe this catalog.
    ///
    /// # Errors
    /// Fails when the catalog is empty.
    pub fn register_shared(
        &self,
        catalog: PoiCatalog,
        vectorizer: Arc<ItemVectorizer>,
    ) -> Result<Arc<CityEntry>, GroupTravelError> {
        if catalog.is_empty() {
            return Err(GroupTravelError::EmptyCatalog);
        }
        let fingerprint = catalog.fingerprint();
        let _ = catalog.spatial();
        let entry = Arc::new(CityEntry {
            fingerprint,
            vectorizer,
            catalog,
        });
        self.cities
            .write()
            .expect("city registry poisoned")
            .insert(entry.catalog.city().to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// The entry for a city, if registered.
    #[must_use]
    pub fn get(&self, city: &str) -> Option<Arc<CityEntry>> {
        self.cities
            .read()
            .expect("city registry poisoned")
            .get(city)
            .cloned()
    }

    /// Registered city names, sorted.
    #[must_use]
    pub fn cities(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .cities
            .read()
            .expect("city registry poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered cities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cities.read().expect("city registry poisoned").len()
    }

    /// Whether no city is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};

    fn small_catalog(seed: u64) -> PoiCatalog {
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
    }

    fn fast_lda() -> LdaConfig {
        LdaConfig {
            iterations: 20,
            ..LdaConfig::default()
        }
    }

    #[test]
    fn register_then_get_round_trips() {
        let registry = EngineCatalogRegistry::new();
        let catalog = small_catalog(1);
        let fingerprint = catalog.fingerprint();
        let (entry, trained) = registry.register(catalog, fast_lda()).unwrap();
        assert!(trained, "first registration must train");
        assert_eq!(entry.fingerprint(), fingerprint);
        assert_eq!(registry.len(), 1);
        let fetched = registry.get("Paris").unwrap();
        assert_eq!(fetched.fingerprint(), fingerprint);
        assert!(registry.get("Atlantis").is_none());
    }

    #[test]
    fn identical_content_reuses_the_warm_vectorizer() {
        let registry = EngineCatalogRegistry::new();
        let (_, first) = registry.register(small_catalog(1), fast_lda()).unwrap();
        let (_, second) = registry.register(small_catalog(1), fast_lda()).unwrap();
        assert!(first);
        assert!(!second, "same content + config must reuse the warm model");

        // Different LDA config on the same content trains a new model.
        let other = LdaConfig {
            iterations: 21,
            ..fast_lda()
        };
        let (_, third) = registry.register(small_catalog(1), other).unwrap();
        assert!(third);
    }

    #[test]
    fn warm_vectorizer_cache_is_bounded() {
        let registry = EngineCatalogRegistry::with_vectorizer_capacity(1);
        let (_, first) = registry.register(small_catalog(1), fast_lda()).unwrap();
        assert!(first);
        // A second catalog evicts the first warm model (capacity 1)…
        let (_, second) = registry.register(small_catalog(2), fast_lda()).unwrap();
        assert!(second);
        // …so re-registering the first content trains again instead of
        // growing the cache without bound.
        let (_, third) = registry.register(small_catalog(1), fast_lda()).unwrap();
        assert!(third, "evicted model must be retrained, not resurrected");
        // Registered cities themselves are unaffected by vectorizer
        // eviction: the entry keeps its own Arc.
        assert_eq!(registry.len(), 1, "same city name replaced in place");
    }

    #[test]
    fn empty_catalogs_are_rejected() {
        let registry = EngineCatalogRegistry::new();
        let err = registry
            .register(PoiCatalog::new("Empty", vec![]), fast_lda())
            .unwrap_err();
        assert_eq!(err, GroupTravelError::EmptyCatalog);
    }

    #[test]
    fn category_grids_cover_the_whole_catalog() {
        let registry = EngineCatalogRegistry::new();
        let (entry, _) = registry.register(small_catalog(2), fast_lda()).unwrap();
        let total: usize = Category::ALL
            .iter()
            .map(|&c| entry.category_grid(c).unwrap().grid().len())
            .sum();
        assert_eq!(total, entry.catalog().len());
    }
}
