//! The thread-safe session store.
//!
//! Tracks, per group session, which city it is in, how many packages it has
//! been served, the latest package, and cumulative latency — the state a
//! front-end needs to resume a group's interaction (display → customize →
//! refine) on any serving thread. Shared as `Arc<RwLock<…>>`: batch serving
//! reads catalogs lock-free and only takes this write lock for the short
//! bookkeeping at the end of each request.
//!
//! The store is **bounded**: each state clones the session's latest
//! package, so an unbounded map would grow linearly with every distinct
//! group ever served. Past the capacity, admitting a new session evicts the
//! stalest ~1/8 of existing sessions in one sweep (amortizing the O(n) scan
//! over many admissions), which behaves like a coarse LRU/TTL for
//! abandoned groups.

use grouptravel::TravelPackage;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Identifier of a group session.
pub type SessionId = u64;

/// Per-session serving state.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// The city the session is currently being served in.
    pub city: String,
    /// Packages successfully served to this session.
    pub packages_served: u64,
    /// Requests that failed for this session.
    pub failures: u64,
    /// The most recent successfully-built package.
    pub last_package: Option<TravelPackage>,
    /// Total build latency accumulated by this session.
    pub total_latency: Duration,
    /// Logical-clock stamp of the last touch (drives staleness eviction).
    touched: u64,
}

impl SessionState {
    fn new(city: &str) -> Self {
        Self {
            city: city.to_string(),
            packages_served: 0,
            failures: 0,
            last_package: None,
            total_latency: Duration::ZERO,
            touched: 0,
        }
    }

    /// Mean build latency over every request of this session.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        let requests = self.packages_served + self.failures;
        if requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(requests).unwrap_or(u32::MAX)
        }
    }
}

/// A clonable, thread-safe, bounded map of session states.
#[derive(Clone)]
pub struct SessionStore {
    sessions: Arc<RwLock<HashMap<SessionId, SessionState>>>,
    clock: Arc<AtomicU64>,
    capacity: usize,
}

impl Default for SessionStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionStore {
    /// Default session capacity: generous for a single engine process,
    /// bounded so abandoned sessions cannot exhaust memory.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// An empty store with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty store tracking at most `capacity` sessions (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            sessions: Arc::new(RwLock::new(HashMap::new())),
            clock: Arc::new(AtomicU64::new(0)),
            capacity: capacity.max(1),
        }
    }

    /// Records the outcome of one served request. Admitting a session past
    /// the capacity evicts the stalest existing sessions first.
    pub fn record(
        &self,
        id: SessionId,
        city: &str,
        package: Option<&TravelPackage>,
        latency: Duration,
    ) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut sessions = self.sessions.write().expect("session store poisoned");
        if !sessions.contains_key(&id) && sessions.len() >= self.capacity {
            Self::evict_stalest(&mut sessions, self.capacity);
        }
        let state = sessions
            .entry(id)
            .or_insert_with(|| SessionState::new(city));
        state.city = city.to_string();
        state.total_latency += latency;
        state.touched = stamp;
        match package {
            Some(p) => {
                state.packages_served += 1;
                state.last_package = Some(p.clone());
            }
            None => state.failures += 1,
        }
    }

    /// Removes the least-recently-touched eighth of the map (at least one
    /// entry), amortizing the O(n) staleness scan over many admissions.
    fn evict_stalest(sessions: &mut HashMap<SessionId, SessionState>, capacity: usize) {
        let evict = (capacity / 8).max(1);
        let mut by_age: Vec<(u64, SessionId)> =
            sessions.iter().map(|(id, s)| (s.touched, *id)).collect();
        by_age.sort_unstable();
        for (_, id) in by_age.into_iter().take(evict) {
            sessions.remove(&id);
        }
    }

    /// A snapshot of one session's state.
    #[must_use]
    pub fn snapshot(&self, id: SessionId) -> Option<SessionState> {
        self.sessions
            .read()
            .expect("session store poisoned")
            .get(&id)
            .cloned()
    }

    /// Number of tracked sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.read().expect("session store poisoned").len()
    }

    /// Whether no session is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops a session's state, returning it if present.
    pub fn remove(&self, id: SessionId) -> Option<SessionState> {
        self.sessions
            .write()
            .expect("session store poisoned")
            .remove(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_snapshot_reads() {
        let store = SessionStore::new();
        assert!(store.is_empty());
        let package = TravelPackage::new(vec![]);
        store.record(7, "Paris", Some(&package), Duration::from_millis(10));
        store.record(7, "Paris", None, Duration::from_millis(30));
        let state = store.snapshot(7).unwrap();
        assert_eq!(state.city, "Paris");
        assert_eq!(state.packages_served, 1);
        assert_eq!(state.failures, 1);
        assert_eq!(state.total_latency, Duration::from_millis(40));
        assert_eq!(state.mean_latency(), Duration::from_millis(20));
        assert!(state.last_package.is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sessions_can_move_between_cities() {
        let store = SessionStore::new();
        let package = TravelPackage::new(vec![]);
        store.record(1, "Paris", Some(&package), Duration::ZERO);
        store.record(1, "Barcelona", Some(&package), Duration::ZERO);
        assert_eq!(store.snapshot(1).unwrap().city, "Barcelona");
        assert_eq!(store.snapshot(1).unwrap().packages_served, 2);
    }

    #[test]
    fn remove_clears_state() {
        let store = SessionStore::new();
        store.record(1, "Paris", None, Duration::ZERO);
        assert!(store.remove(1).is_some());
        assert!(store.snapshot(1).is_none());
        assert!(store.remove(1).is_none());
    }

    #[test]
    fn capacity_evicts_the_stalest_sessions() {
        let store = SessionStore::with_capacity(8);
        for id in 0..8u64 {
            store.record(id, "Paris", None, Duration::ZERO);
        }
        // Touch session 0 so it is fresh again.
        store.record(0, "Paris", None, Duration::ZERO);
        // Admitting a ninth session evicts the stalest entry (id 1), never
        // letting the map exceed its capacity.
        store.record(100, "Paris", None, Duration::ZERO);
        assert!(store.len() <= 8);
        assert!(store.snapshot(0).is_some(), "freshly-touched survives");
        assert!(store.snapshot(100).is_some(), "new session admitted");
        assert!(store.snapshot(1).is_none(), "stalest session evicted");
        // Hammering many unique ids keeps the store bounded.
        for id in 1000..2000u64 {
            store.record(id, "Paris", None, Duration::ZERO);
        }
        assert!(store.len() <= 8);
    }

    #[test]
    fn clones_share_state() {
        let store = SessionStore::new();
        let clone = store.clone();
        store.record(5, "Paris", None, Duration::ZERO);
        assert_eq!(clone.len(), 1);
    }
}
