//! The thread-safe session store: the authoritative per-group state
//! machine of the engine.
//!
//! PR 1 used this store as a latency ledger — city, counters, last package.
//! It now owns everything a multi-step interaction needs: the current
//! package, the group's (possibly refined) profile, the member profiles and
//! consensus method that enable individual refinement, the pooled
//! per-member [`MemberInteractions`], a monotone step counter, and recent
//! per-step latencies.
//!
//! **Locking.** The map itself sits behind an `RwLock` that is only held
//! long enough to clone an `Arc` to a session's slot; every slot carries its
//! own `Mutex` around the [`SessionState`]. Steps *within* one session
//! therefore serialize (a group's customize/refine/build commands are a
//! sequential interaction), while steps of *distinct* sessions run fully in
//! parallel — including expensive package builds.
//!
//! **Bounds.** Each state clones the session's latest package, so the map
//! is capacity-bounded: admitting a new session past the capacity evicts
//! the stalest ~1/8 of *idle* sessions in one sweep (slots currently
//! checked out by a serving thread are never evicted mid-step; the map may
//! transiently exceed its capacity while every slot is busy).

use crate::observe::StoreMetrics;
use grouptravel::{BuildConfig, GroupQuery, MemberInteractions, TravelPackage};
use grouptravel_obs::LatencySummary;
use grouptravel_profile::{ConsensusMethod, Group, GroupProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;

/// Identifier of a group session.
pub type SessionId = u64;

/// Per-session serving state: the group's whole interaction so far.
///
/// Serializable end to end: [`crate::Engine::export_session`] snapshots it
/// onto the wire protocol so an evicted or migrated session can be resumed
/// on another engine instead of failing with `UnknownSession`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionState {
    /// The city the session is currently being served in.
    pub city: String,
    /// Packages successfully served to this session.
    pub packages_served: u64,
    /// Requests/commands that failed for this session.
    pub failures: u64,
    /// The most recent successfully-built (and possibly customized)
    /// package — the package the group is currently looking at.
    pub last_package: Option<TravelPackage>,
    /// Total serving latency accumulated by this session.
    pub total_latency: Duration,
    /// Monotone count of interactive commands served to this session
    /// (successes and failures alike).
    pub steps: u64,
    /// Customization operations successfully applied.
    pub customizations: u64,
    /// Profile refinements performed.
    pub refinements: u64,
    /// The group's current consensus profile — refined in place by
    /// `Refine` commands, used by profile-less rebuilds.
    pub profile: Option<GroupProfile>,
    /// The member profiles, when provided at build time (enables the
    /// *individual* refinement strategy). Refined in place.
    pub group: Option<Group>,
    /// Consensus method used to re-aggregate after individual refinement.
    pub consensus: Option<ConsensusMethod>,
    /// The query of the most recent build (customizations validate/score
    /// against it).
    pub query: Option<GroupQuery>,
    /// The build configuration of the most recent build.
    pub config: Option<BuildConfig>,
    /// Per-member interactions accumulated since the last refinement.
    pub interactions: Vec<MemberInteractions>,
    /// Latency of the most recent steps (bounded ring, newest last).
    /// Kept for snapshot compatibility and exact replay; prefer
    /// [`SessionState::step_latency_summary`] for a quantile readout.
    pub step_latencies: Vec<Duration>,
}

impl SessionState {
    /// How many per-step latencies are retained per session.
    pub const MAX_STEP_LATENCIES: usize = 256;

    fn new(city: &str) -> Self {
        Self {
            city: city.to_string(),
            packages_served: 0,
            failures: 0,
            last_package: None,
            total_latency: Duration::ZERO,
            steps: 0,
            customizations: 0,
            refinements: 0,
            profile: None,
            group: None,
            consensus: None,
            query: None,
            config: None,
            interactions: Vec::new(),
            step_latencies: Vec::new(),
        }
    }

    /// Appends one step latency, keeping only the most recent
    /// [`SessionState::MAX_STEP_LATENCIES`].
    pub fn record_step_latency(&mut self, latency: Duration) {
        if self.step_latencies.len() == Self::MAX_STEP_LATENCIES {
            self.step_latencies.remove(0);
        }
        self.step_latencies.push(latency);
    }

    /// Mean serving latency over every request of this session.
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        let requests = (self.packages_served + self.failures).max(self.steps);
        if requests == 0 {
            Duration::ZERO
        } else {
            self.total_latency / u32::try_from(requests).unwrap_or(u32::MAX)
        }
    }

    /// Total interactions (POIs added + removed) pooled since the last
    /// refinement.
    #[must_use]
    pub fn pending_interactions(&self) -> usize {
        self.interactions.iter().map(|m| m.log.len()).sum()
    }

    /// Quantile summary of the retained per-step latencies (exact — the
    /// ring holds at most [`SessionState::MAX_STEP_LATENCIES`] values, so
    /// this sorts rather than approximates).
    #[must_use]
    pub fn step_latency_summary(&self) -> LatencySummary {
        let mut ns: Vec<u64> = self
            .step_latencies
            .iter()
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .collect();
        ns.sort_unstable();
        LatencySummary::from_sorted_ns(&ns)
    }
}

/// One session's slot: recency stamp outside the lock (so eviction scans
/// never block on busy sessions), state behind its own mutex.
#[derive(Debug)]
struct SessionSlot {
    touched: AtomicU64,
    state: Mutex<SessionState>,
}

impl SessionSlot {
    fn new(city: &str, stamp: u64) -> Self {
        Self {
            touched: AtomicU64::new(stamp),
            state: Mutex::new(SessionState::new(city)),
        }
    }
}

/// A clonable, thread-safe, bounded map of per-session state machines.
#[derive(Clone)]
pub struct SessionStore {
    sessions: Arc<RwLock<HashMap<SessionId, Arc<SessionSlot>>>>,
    clock: Arc<AtomicU64>,
    capacity: usize,
    /// Occupancy / eviction instrumentation, attached once by the engine
    /// (shared across clones like the rest of the store).
    metrics: Arc<OnceLock<StoreMetrics>>,
}

impl Default for SessionStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionStore {
    /// Default session capacity: generous for a single engine process,
    /// bounded so abandoned sessions cannot exhaust memory.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// An empty store with the default capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty store tracking at most `capacity` sessions (minimum 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            sessions: Arc::new(RwLock::new(HashMap::new())),
            clock: Arc::new(AtomicU64::new(0)),
            capacity: capacity.max(1),
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Attaches occupancy/eviction instrumentation. Only the first
    /// attachment takes effect; it is shared by every clone of the store.
    pub(crate) fn attach_metrics(&self, metrics: StoreMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Publishes the current occupancy (called at the end of every
    /// len-changing write section, while the write lock is still held so
    /// the gauge never goes backwards in time).
    fn publish_open(&self, len: usize) {
        if let Some(metrics) = self.metrics.get() {
            metrics.open.set(i64::try_from(len).unwrap_or(i64::MAX));
        }
    }

    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The slot for `id`, touched, if the session exists.
    fn slot(&self, id: SessionId) -> Option<Arc<SessionSlot>> {
        let slot = self
            .sessions
            .read()
            .expect("session store poisoned")
            .get(&id)
            .cloned()?;
        slot.touched.store(self.stamp(), Ordering::Relaxed);
        Some(slot)
    }

    /// The slot for `id`, created (evicting stale sessions if at capacity)
    /// when absent.
    fn slot_or_insert(&self, id: SessionId, city: &str) -> Arc<SessionSlot> {
        if let Some(slot) = self.slot(id) {
            return slot;
        }
        let stamp = self.stamp();
        let mut sessions = self.sessions.write().expect("session store poisoned");
        if !sessions.contains_key(&id) && sessions.len() >= self.capacity {
            Self::evict_stalest(&mut sessions, self.capacity, self.metrics.get());
        }
        let slot = sessions
            .entry(id)
            .or_insert_with(|| Arc::new(SessionSlot::new(city, stamp)));
        slot.touched.store(stamp, Ordering::Relaxed);
        let slot = Arc::clone(slot);
        self.publish_open(sessions.len());
        slot
    }

    /// Removes the least-recently-touched eighth of the *idle* sessions (at
    /// least one entry when possible). Slots another thread has checked out
    /// (`Arc` strong count > 1) are skipped: evicting them would detach an
    /// in-flight step's updates — a lost update. Called under the write
    /// lock, so no new checkout can race the scan.
    fn evict_stalest(
        sessions: &mut HashMap<SessionId, Arc<SessionSlot>>,
        capacity: usize,
        metrics: Option<&StoreMetrics>,
    ) {
        let evict = (capacity / 8).max(1);
        let mut by_age: Vec<(u64, SessionId)> = sessions
            .iter()
            .filter(|(_, slot)| Arc::strong_count(slot) == 1)
            .map(|(id, slot)| (slot.touched.load(Ordering::Relaxed), *id))
            .collect();
        by_age.sort_unstable();
        let busy = sessions.len() - by_age.len();
        let evicted = by_age.len().min(evict);
        for (_, id) in by_age.into_iter().take(evict) {
            sessions.remove(&id);
        }
        if let Some(metrics) = metrics {
            metrics.busy_skips.add(busy as u64);
            metrics.evictions.add(evicted as u64);
        }
    }

    /// Runs `f` with exclusive access to an **existing** session's state —
    /// the step serializes with every other step of the same session, while
    /// distinct sessions proceed in parallel. Returns `None` when the
    /// session is unknown (never served, ended, or evicted).
    pub fn with_session<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut SessionState) -> R,
    ) -> Option<R> {
        let slot = self.slot(id)?;
        let mut state = slot.state.lock().expect("session state poisoned");
        Some(f(&mut state))
    }

    /// Runs `f` with exclusive access to the session's state, creating the
    /// session in `city` first when absent (evicting stale idle sessions if
    /// the store is at capacity).
    pub fn with_session_or_insert<R>(
        &self,
        id: SessionId,
        city: &str,
        f: impl FnOnce(&mut SessionState) -> R,
    ) -> R {
        let slot = self.slot_or_insert(id, city);
        let mut state = slot.state.lock().expect("session state poisoned");
        f(&mut state)
    }

    /// Records the outcome of one served one-shot request. Admitting a
    /// session past the capacity evicts the stalest idle sessions first.
    pub fn record(
        &self,
        id: SessionId,
        city: &str,
        package: Option<&TravelPackage>,
        latency: Duration,
    ) {
        self.with_session_or_insert(id, city, |state| {
            state.city = city.to_string();
            state.total_latency += latency;
            match package {
                Some(p) => {
                    state.packages_served += 1;
                    state.last_package = Some(p.clone());
                }
                None => state.failures += 1,
            }
        });
    }

    /// A snapshot of one session's state.
    #[must_use]
    pub fn snapshot(&self, id: SessionId) -> Option<SessionState> {
        self.with_session(id, |state| state.clone())
    }

    /// Number of tracked sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.read().expect("session store poisoned").len()
    }

    /// Whether no session is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs a complete session state under `id` — the resume half of
    /// snapshot/restore. Replaces any existing session with that id (the
    /// snapshot is the authoritative history); admitting a new id past the
    /// capacity evicts the stalest idle sessions first, exactly like
    /// organic admission. Returns whether an existing session was replaced.
    pub fn restore(&self, id: SessionId, state: SessionState) -> bool {
        let stamp = self.stamp();
        let mut sessions = self.sessions.write().expect("session store poisoned");
        if !sessions.contains_key(&id) && sessions.len() >= self.capacity {
            Self::evict_stalest(&mut sessions, self.capacity, self.metrics.get());
        }
        let slot = Arc::new(SessionSlot {
            touched: AtomicU64::new(stamp),
            state: Mutex::new(state),
        });
        let replaced = sessions.insert(id, slot).is_some();
        self.publish_open(sessions.len());
        replaced
    }

    /// Drops a session's state, returning it if present.
    pub fn remove(&self, id: SessionId) -> Option<SessionState> {
        let mut sessions = self.sessions.write().expect("session store poisoned");
        let slot = sessions.remove(&id)?;
        self.publish_open(sessions.len());
        drop(sessions);
        match Arc::try_unwrap(slot) {
            Ok(slot) => Some(slot.state.into_inner().expect("session state poisoned")),
            // Another thread still holds the slot mid-step: hand back a
            // snapshot; their updates land on the detached state.
            Err(shared) => Some(shared.state.lock().expect("session state poisoned").clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_snapshot_reads() {
        let store = SessionStore::new();
        assert!(store.is_empty());
        let package = TravelPackage::new(vec![]);
        store.record(7, "Paris", Some(&package), Duration::from_millis(10));
        store.record(7, "Paris", None, Duration::from_millis(30));
        let state = store.snapshot(7).unwrap();
        assert_eq!(state.city, "Paris");
        assert_eq!(state.packages_served, 1);
        assert_eq!(state.failures, 1);
        assert_eq!(state.total_latency, Duration::from_millis(40));
        assert_eq!(state.mean_latency(), Duration::from_millis(20));
        assert!(state.last_package.is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn sessions_can_move_between_cities() {
        let store = SessionStore::new();
        let package = TravelPackage::new(vec![]);
        store.record(1, "Paris", Some(&package), Duration::ZERO);
        store.record(1, "Barcelona", Some(&package), Duration::ZERO);
        assert_eq!(store.snapshot(1).unwrap().city, "Barcelona");
        assert_eq!(store.snapshot(1).unwrap().packages_served, 2);
    }

    #[test]
    fn remove_clears_state() {
        let store = SessionStore::new();
        store.record(1, "Paris", None, Duration::ZERO);
        assert!(store.remove(1).is_some());
        assert!(store.snapshot(1).is_none());
        assert!(store.remove(1).is_none());
    }

    #[test]
    fn capacity_evicts_the_stalest_sessions() {
        let store = SessionStore::with_capacity(8);
        for id in 0..8u64 {
            store.record(id, "Paris", None, Duration::ZERO);
        }
        // Touch session 0 so it is fresh again.
        store.record(0, "Paris", None, Duration::ZERO);
        // Admitting a ninth session evicts the stalest entry (id 1), never
        // letting the map exceed its capacity.
        store.record(100, "Paris", None, Duration::ZERO);
        assert!(store.len() <= 8);
        assert!(store.snapshot(0).is_some(), "freshly-touched survives");
        assert!(store.snapshot(100).is_some(), "new session admitted");
        assert!(store.snapshot(1).is_none(), "stalest session evicted");
        // Hammering many unique ids keeps the store bounded.
        for id in 1000..2000u64 {
            store.record(id, "Paris", None, Duration::ZERO);
        }
        assert!(store.len() <= 8);
    }

    #[test]
    fn clones_share_state() {
        let store = SessionStore::new();
        let clone = store.clone();
        store.record(5, "Paris", None, Duration::ZERO);
        assert_eq!(clone.len(), 1);
    }

    #[test]
    fn with_session_requires_an_existing_session() {
        let store = SessionStore::new();
        assert!(store.with_session(1, |_| ()).is_none());
        let created = store.with_session_or_insert(1, "Paris", |state| {
            state.steps += 1;
            state.steps
        });
        assert_eq!(created, 1);
        assert_eq!(store.with_session(1, |state| state.steps), Some(1));
    }

    #[test]
    fn steps_within_a_session_serialize() {
        // Hammer one session from many threads; the per-slot mutex must
        // make every increment visible (no lost updates).
        let store = SessionStore::new();
        store.with_session_or_insert(9, "Paris", |_| ());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let store = store.clone();
                scope.spawn(move || {
                    for _ in 0..250 {
                        store.with_session(9, |state| state.steps += 1);
                    }
                });
            }
        });
        assert_eq!(store.snapshot(9).unwrap().steps, 1000);
    }

    #[test]
    fn step_latency_ring_is_bounded() {
        let mut state = SessionState::new("Paris");
        for i in 0..(SessionState::MAX_STEP_LATENCIES + 10) {
            state.record_step_latency(Duration::from_micros(i as u64));
        }
        assert_eq!(state.step_latencies.len(), SessionState::MAX_STEP_LATENCIES);
        assert_eq!(
            *state.step_latencies.last().unwrap(),
            Duration::from_micros((SessionState::MAX_STEP_LATENCIES + 9) as u64)
        );
    }

    #[test]
    fn busy_sessions_are_never_evicted() {
        let store = SessionStore::with_capacity(2);
        store.record(1, "Paris", None, Duration::ZERO);
        store.record(2, "Paris", None, Duration::ZERO);
        // Hold session 1's slot checked out (strong count > 1) while a new
        // session forces an eviction sweep: the stalest *idle* session (2)
        // must go, not the busy one.
        let clone = store.clone();
        store.with_session(1, |_| {
            // `with_session` holds an Arc to slot 1 for this closure's
            // duration; admit session 3 from another thread meanwhile.
            std::thread::scope(|scope| {
                scope.spawn(|| clone.record(3, "Paris", None, Duration::ZERO));
            });
        });
        assert!(store.snapshot(1).is_some(), "busy session survives");
        assert!(store.snapshot(3).is_some(), "new session admitted");
        assert!(store.snapshot(2).is_none(), "idle session evicted");
    }
}
