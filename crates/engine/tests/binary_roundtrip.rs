//! `GTBF1` round-trip suite: every [`EngineRequest`] and [`EngineResponse`]
//! variant must survive binary encode → decode **bit-identically** — floats
//! as raw IEEE-754 bits, durations as exact `{secs, nanos}` pairs, errors
//! with their full typed payload — and re-encoding the decoded value must
//! reproduce the original frame byte for byte.
//!
//! Mirrors `protocol_roundtrip.rs` (the JSON suite): requests are
//! randomized with the vendored proptest (seeds derive from the test name,
//! so CI replays the same cases); responses are the engine's *real*
//! answers, produced by actual `dispatch` calls. On top of the mirrors,
//! this suite pins hostile-input behavior: truncation at every byte of a
//! real envelope frame, random garbage, depth/length bombs — always a
//! typed [`BinError`], never a panic.

use grouptravel::prelude::*;
use grouptravel_engine::binary::{self, BinError};
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineError, EngineRequest, EngineResponse,
    PackageRequest, ProtocolError, RequestEnvelope, ResponseEnvelope, SessionCommand,
    SessionSnapshot, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

/// One engine, registered once, shared by every case.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let engine = Engine::new(EngineConfig::fast());
        engine.register_catalog(paris(11)).unwrap();
        engine
    })
}

fn profile_for(seed: u64) -> GroupProfile {
    let schema = engine().profile_schema("Paris").unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

fn package_request(session_id: u64, seed: u64, k: usize, budget: Option<f64>) -> PackageRequest {
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile: profile_for(seed),
        query: GroupQuery::new([1, 1, 2, 2], budget),
        config: BuildConfig::with_k(k.max(1)),
    }
}

/// Binary round trip with frame bit-identity: encode → decode must return
/// the value, and re-encoding the decoded value must reproduce the exact
/// original frame bytes.
///
/// Also the streaming-vs-tree differential: `binary::encode`/`decode` run
/// the streaming [`serde::Sink`]/[`serde::Source`] fast path, so each call
/// is checked against the tree reference — the frame must equal
/// header + `encode_value_into(&to_value())` byte for byte, and the decode
/// must equal `from_value(&decode_value(frame))`.
fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug,
{
    let frame = binary::encode(value);
    let tree = value.to_value();
    let mut reference = Vec::new();
    binary::write_frame_header(&mut reference, binary::value_len(&tree));
    binary::encode_value_into(&tree, &mut reference);
    assert_eq!(
        frame, reference,
        "streaming encode must match the tree encoder"
    );
    let back: T = binary::decode(&frame).expect("frames decode");
    let via_tree = T::from_value(&binary::decode_value(&frame).expect("frames decode as trees"))
        .expect("decoded trees convert");
    assert_eq!(
        via_tree, back,
        "streaming decode must match the tree decoder"
    );
    assert_eq!(
        binary::encode(&back),
        frame,
        "re-encoding must be byte-identical"
    );
    back
}

fn roundtrip_request(request: &EngineRequest) -> EngineRequest {
    roundtrip(request)
}

fn roundtrip_response(response: &EngineResponse) -> EngineResponse {
    roundtrip(response)
}

/// Dispatches, round-trips the response through `GTBF1`, and additionally
/// checks the binary and JSON codecs agree on the decoded value.
fn dispatch_and_roundtrip(request: EngineRequest) -> EngineResponse {
    let response = engine().dispatch(request);
    assert_eq!(
        roundtrip_response(&response),
        response,
        "response must round-trip bit-identically"
    );
    let via_json: EngineResponse =
        serde_json::from_str(&serde_json::to_string(&response).unwrap()).unwrap();
    assert_eq!(via_json, response, "binary and JSON must decode equally");
    response
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn build_and_batch_requests_roundtrip(
        session in 0u64..1000,
        seed in 0u64..50,
        k in 1usize..5,
        budget_kind in 0u8..3,
        n in 1usize..4,
    ) {
        let budget = match budget_kind {
            0 => None,
            1 => Some(250.0),
            _ => Some(333.33 + seed as f64 * 0.1),
        };
        let single = EngineRequest::Build {
            request: Box::new(package_request(session, seed, k, budget)),
        };
        prop_assert_eq!(roundtrip_request(&single), single);

        let batch = EngineRequest::Batch {
            requests: (0..n)
                .map(|i| package_request(session + i as u64, seed + i as u64, k, budget))
                .collect(),
        };
        prop_assert_eq!(roundtrip_request(&batch), batch);
    }

    #[test]
    fn command_requests_roundtrip(
        session in 0u64..1000,
        seed in 0u64..50,
        kind in 0u8..8,
        a in 0usize..10,
        b in 0u64..100,
        member in 0u64..4,
    ) {
        let command = match kind {
            0 => SessionCommand::build(
                "Paris",
                profile_for(seed),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
            1 => {
                let schema = engine().profile_schema("Paris").unwrap();
                let group = SyntheticGroupGenerator::new(schema, seed)
                    .group(GroupSize::Medium, Uniformity::Uniform);
                SessionCommand::build_for_group(
                    "Paris",
                    group,
                    ConsensusMethod::pairwise_disagreement(),
                    GroupQuery::new([2, 1, 1, 1], Some(100.0 + b as f64)),
                    BuildConfig::with_k(3),
                )
            }
            2 => SessionCommand::rebuild(
                "Paris",
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
            3 => SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: a,
                poi: PoiId(b),
            }),
            4 => SessionCommand::Customize(CustomizationOp::Generate {
                rectangle: Rectangle::new(
                    2.35 - b as f64 * 0.001,
                    48.85 + a as f64 * 0.001,
                    0.01,
                    0.01,
                ),
            }),
            5 => SessionCommand::Refine(if a % 2 == 0 {
                RefinementStrategy::Batch
            } else {
                RefinementStrategy::Individual
            }),
            6 => SessionCommand::SuggestReplacement {
                ci_index: a,
                poi: PoiId(b),
            },
            _ => SessionCommand::End,
        };
        let request = EngineRequest::Command {
            request: if member == 0 {
                CommandRequest::new(session, command)
            } else {
                CommandRequest::from_member(session, member, command)
            },
        };
        prop_assert_eq!(roundtrip_request(&request), request);
    }

    #[test]
    fn truncating_a_request_frame_anywhere_is_a_typed_error(
        seed in 0u64..50,
        cut_fraction in 0u32..1000,
    ) {
        let frame = binary::encode(&RequestEnvelope::new(EngineRequest::Build {
            request: Box::new(package_request(1, seed, 3, Some(250.0))),
        }));
        let cut = (frame.len() as u64 * u64::from(cut_fraction) / 1000) as usize;
        let err = binary::decode::<RequestEnvelope>(&frame[..cut])
            .expect_err("truncated frames must fail");
        // Typed, displayable, and never a panic.
        prop_assert!(!err.to_string().is_empty());
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        // Raw bytes, framed bytes, and framed-with-valid-header bytes: the
        // decoder must return a typed error or a value, never panic.
        let _ = binary::decode_value(&bytes);
        let _ = binary::decode_value(&binary::frame(&bytes));
        let _ = binary::decode::<RequestEnvelope>(&binary::frame(&bytes));
    }
}

#[test]
fn every_request_variant_roundtrips() {
    let requests = [
        EngineRequest::Build {
            request: Box::new(package_request(1, 1, 5, None)),
        },
        EngineRequest::Batch {
            requests: vec![package_request(1, 1, 5, Some(400.0))],
        },
        EngineRequest::Command {
            request: CommandRequest::new(1, SessionCommand::End),
        },
        EngineRequest::CommandBatch {
            requests: vec![CommandRequest::new(1, SessionCommand::End)],
        },
        EngineRequest::RegisterCatalog {
            catalog: Box::new(paris(17)),
        },
        EngineRequest::ExportSession { session_id: 42 },
        EngineRequest::ImportSession {
            snapshot: Box::new(SessionSnapshot {
                v: 1,
                session_id: 42,
                state: sample_session_state(),
            }),
        },
        EngineRequest::Stats,
        EngineRequest::Trace {
            request: Box::new(EngineRequest::Build {
                request: Box::new(package_request(2, 2, 4, Some(150.0))),
            }),
        },
    ];
    for request in requests {
        assert_eq!(
            roundtrip_request(&request),
            request,
            "request kind `{}` must round-trip",
            request.kind()
        );
    }
}

/// A session state with every optional field populated, produced by a real
/// interactive session.
fn sample_session_state() -> grouptravel_engine::SessionState {
    let engine = Engine::new(EngineConfig::fast());
    engine.register_catalog(paris(11)).unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 3).group(GroupSize::Small, Uniformity::Uniform);
    let built = engine.serve_command(&CommandRequest::new(
        9,
        SessionCommand::build_for_group(
            "Paris",
            group.clone(),
            ConsensusMethod::pairwise_disagreement(),
            GroupQuery::paper_default(),
            BuildConfig::default(),
        ),
    ));
    let package = built.package().expect("build succeeds").clone();
    let victim = package.get(0).unwrap().poi_ids()[0];
    engine.serve_command(&CommandRequest::from_member(
        9,
        group.members()[0].user_id,
        SessionCommand::Customize(CustomizationOp::Remove {
            ci_index: 0,
            poi: victim,
        }),
    ));
    engine.sessions().snapshot(9).expect("session exists")
}

#[test]
fn every_response_variant_roundtrips_from_real_dispatches() {
    // Ordered so the engine accumulates state: build → commands → export →
    // import → stats. Each dispatch's response round-trips bit-identically
    // through GTBF1 and decodes equal to the JSON path.
    let ok = dispatch_and_roundtrip(EngineRequest::Build {
        request: Box::new(package_request(501, 5, 5, None)),
    });
    assert!(matches!(ok, EngineResponse::Package { ref response } if response.outcome.is_ok()));

    let failed = dispatch_and_roundtrip(EngineRequest::Build {
        request: Box::new(PackageRequest {
            city: "Atlantis".to_string(),
            ..package_request(502, 5, 5, None)
        }),
    });
    match failed {
        EngineResponse::Package { response } => {
            assert_eq!(
                response.outcome.unwrap_err(),
                EngineError::UnknownCity("Atlantis".to_string())
            );
        }
        other => panic!("expected Package, got {}", other.kind()),
    }

    dispatch_and_roundtrip(EngineRequest::Batch {
        requests: vec![
            package_request(503, 6, 4, Some(500.0)),
            package_request(504, 7, 3, None),
        ],
    });

    let built = dispatch_and_roundtrip(EngineRequest::Command {
        request: CommandRequest::new(
            600,
            SessionCommand::build(
                "Paris",
                profile_for(8),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ),
    });
    let package = match built {
        EngineResponse::Command { response } => response.package().unwrap().clone(),
        other => panic!("expected Command, got {}", other.kind()),
    };
    let victim = package.get(0).unwrap().poi_ids()[0];
    dispatch_and_roundtrip(EngineRequest::CommandBatch {
        requests: vec![
            CommandRequest::from_member(
                600,
                1,
                SessionCommand::Customize(CustomizationOp::Remove {
                    ci_index: 0,
                    poi: victim,
                }),
            ),
            CommandRequest::new(
                600,
                SessionCommand::SuggestReplacement {
                    ci_index: 1,
                    poi: package.get(1).unwrap().poi_ids()[0],
                },
            ),
            CommandRequest::new(600, SessionCommand::Refine(RefinementStrategy::Batch)),
        ],
    });

    let exported = dispatch_and_roundtrip(EngineRequest::ExportSession { session_id: 600 });
    let snapshot = match exported {
        EngineResponse::Session { outcome } => outcome.unwrap(),
        other => panic!("expected Session, got {}", other.kind()),
    };
    dispatch_and_roundtrip(EngineRequest::Command {
        request: CommandRequest::new(600, SessionCommand::End),
    });
    let imported = dispatch_and_roundtrip(EngineRequest::ImportSession { snapshot });
    match imported {
        EngineResponse::Imported { outcome } => {
            let info = outcome.unwrap();
            assert_eq!(info.session_id, 600);
            assert_eq!(info.city, "Paris");
            assert!(!info.replaced, "End freed the slot before the import");
        }
        other => panic!("expected Imported, got {}", other.kind()),
    }

    let missing = dispatch_and_roundtrip(EngineRequest::ExportSession { session_id: 9999 });
    match missing {
        EngineResponse::Session { outcome } => {
            assert_eq!(outcome.unwrap_err(), EngineError::UnknownSession(9999));
        }
        other => panic!("expected Session, got {}", other.kind()),
    }

    // A city the shared engine does not serve elsewhere (see the JSON
    // suite for why replacing Paris mid-run would be a race).
    let registered = dispatch_and_roundtrip(EngineRequest::RegisterCatalog {
        catalog: Box::new(
            SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::small(23))
                .generate(),
        ),
    });
    match registered {
        EngineResponse::Registered { outcome } => {
            let info = outcome.unwrap();
            assert_eq!(info.city, "Barcelona");
        }
        other => panic!("expected Registered, got {}", other.kind()),
    }

    dispatch_and_roundtrip(EngineRequest::Stats);

    let traced = dispatch_and_roundtrip(EngineRequest::Trace {
        request: Box::new(EngineRequest::Build {
            request: Box::new(package_request(505, 9, 4, None)),
        }),
    });
    match traced {
        EngineResponse::Traced { response, trace } => {
            assert!(
                matches!(*response, EngineResponse::Package { ref response } if response.outcome.is_ok())
            );
            assert!(
                trace.stages.iter().any(|s| s.stage == "dispatch.build"),
                "trace must include the dispatch stage, got {:?}",
                trace.stages
            );
        }
        other => panic!("expected Traced, got {}", other.kind()),
    }

    let error = EngineResponse::Error {
        error: ProtocolError::unsupported_version(99),
    };
    assert_eq!(roundtrip_response(&error), error);
}

#[test]
fn envelopes_roundtrip_and_version_is_enforced() {
    let envelope = RequestEnvelope::new(EngineRequest::Stats);
    let frame = binary::encode(&envelope);
    let back: RequestEnvelope = binary::decode(&frame).unwrap();
    assert_eq!(back, envelope);

    let answered = engine().dispatch_envelope(back);
    assert_eq!(answered.v, PROTOCOL_VERSION);
    assert!(matches!(answered.response, EngineResponse::Stats { .. }));
    let frame = binary::encode(&answered);
    let back: ResponseEnvelope = binary::decode(&frame).unwrap();
    assert_eq!(back, answered);

    // A wrong protocol (envelope) version never reaches dispatch.
    let rejected = engine().dispatch_envelope(RequestEnvelope {
        v: PROTOCOL_VERSION + 1,
        request: EngineRequest::Stats,
    });
    let error = rejected
        .response
        .protocol_error()
        .expect("wrong versions are protocol errors");
    assert_eq!(error.code, ProtocolError::UNSUPPORTED_VERSION);
}

#[test]
fn truncation_at_every_byte_of_a_real_envelope_is_a_typed_error() {
    // Exhaustive (not sampled) truncation sweep over a small real envelope.
    let frame = binary::encode(&RequestEnvelope::new(EngineRequest::Command {
        request: CommandRequest::new(
            7,
            SessionCommand::SuggestReplacement {
                ci_index: 3,
                poi: PoiId(12345),
            },
        ),
    }));
    for cut in 0..frame.len() {
        let err = binary::decode::<RequestEnvelope>(&frame[..cut])
            .expect_err("every truncation must fail");
        let _ = err.to_string();
    }
    assert!(binary::decode::<RequestEnvelope>(&frame).is_ok());
}

#[test]
fn unknown_frame_versions_are_typed_errors() {
    let mut frame = binary::encode(&RequestEnvelope::new(EngineRequest::Stats));
    for bad_version in [0u8, 2, 7, 255] {
        frame[4] = bad_version;
        assert_eq!(
            binary::decode::<RequestEnvelope>(&frame),
            Err(BinError::UnsupportedVersion(bad_version))
        );
    }
}

#[test]
fn binary_frames_are_smaller_than_json_for_real_envelopes() {
    // Not a wire guarantee, but the point of the format: a real build
    // envelope (float-heavy profile vectors) must shrink.
    let envelope = RequestEnvelope::new(EngineRequest::Build {
        request: Box::new(package_request(1, 1, 5, Some(400.0))),
    });
    let json = serde_json::to_string(&envelope).unwrap();
    let frame = binary::encode(&envelope);
    assert!(
        frame.len() < json.len(),
        "binary {} bytes vs JSON {} bytes",
        frame.len(),
        json.len()
    );
}
