//! Round-trip guarantees of the serving engine against the one-shot
//! pipeline: an exhaustive engine is bit-identical to
//! `GroupTravelSession::build_package`, the default (grid-bounded) engine
//! always serves valid packages while reusing cached models, and
//! interleaved interactive sessions lose no updates under concurrency.

use grouptravel::prelude::*;
use grouptravel::{GroupTravelSession, SessionConfig};
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, PackageRequest, SessionCommand, SessionId,
};
use proptest::prelude::*;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn profile_for(engine: &Engine, city: &str, seed: u64) -> GroupProfile {
    let schema = engine.profile_schema(city).unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random profiles, k and seeds, the exhaustive engine reproduces
    /// the one-shot session exactly — the serving layer adds caching and
    /// concurrency, never different answers.
    #[test]
    fn exhaustive_engine_round_trips_the_session(
        profile_seed in 0u64..1000,
        k in 2usize..7,
        fcm_seed in 0u64..1000,
    ) {
        let engine = Engine::new(EngineConfig::exhaustive());
        engine.register_catalog(paris(17)).unwrap();
        let config = BuildConfig {
            k,
            seed: fcm_seed,
            ..BuildConfig::default()
        };
        let request = PackageRequest {
            session_id: profile_seed,
            city: "Paris".to_string(),
            profile: profile_for(&engine, "Paris", profile_seed),
            query: GroupQuery::paper_default(),
            config,
        };
        let served = engine.serve(&request).outcome.unwrap();

        let session = GroupTravelSession::new(
            paris(17),
            SessionConfig {
                lda: engine.config().lda,
                metric: engine.config().metric,
            },
        )
        .unwrap();
        let direct = session
            .build_package(&request.profile, &request.query, &config)
            .unwrap();
        prop_assert_eq!(&served, &direct);
    }
}

#[test]
fn warm_batches_never_retrain_and_stay_valid() {
    // worker_threads > 1 exercises the scoped-thread fan-out even on
    // single-core CI machines.
    let engine = Engine::new(EngineConfig {
        worker_threads: 3,
        ..EngineConfig::fast()
    });
    engine.register_catalog(paris(29)).unwrap();

    let make_batch = |salt: u64| -> Vec<PackageRequest> {
        (0..8u64)
            .map(|i| PackageRequest {
                session_id: salt * 100 + i,
                city: "Paris".to_string(),
                profile: profile_for(&engine, "Paris", salt * 37 + i),
                query: GroupQuery::paper_default(),
                config: BuildConfig::default(),
            })
            .collect()
    };

    let cold = engine.serve_batch(make_batch(1));
    assert!(cold.iter().all(|r| r.outcome.is_ok()));
    let trainings_after_cold = engine.stats().fcm_trainings;
    assert!(trainings_after_cold >= 1);

    let warm = engine.serve_batch(make_batch(2));
    let entry = engine.registry().get("Paris").unwrap();
    for response in &warm {
        assert!(
            response.clustering_cache_hit,
            "warm batch must hit the cache"
        );
        let package = response.package().unwrap();
        assert_eq!(package.len(), 5);
        assert!(package.is_valid(entry.catalog(), &GroupQuery::paper_default()));
    }
    assert_eq!(
        engine.stats().fcm_trainings,
        trainings_after_cold,
        "no retraining may happen once the cache is warm"
    );
    assert_eq!(
        engine.stats().lda_trainings,
        1,
        "one vectorizer training total"
    );
}

/// One group's interactive script, expressible without knowing any build
/// output up front (Generate/DeleteCi address positions, not POI ids) so
/// whole scripts can be batched.
fn interleaved_script(engine: &Engine, session: SessionId) -> Vec<CommandRequest> {
    let bbox = engine
        .registry()
        .get("Paris")
        .unwrap()
        .catalog()
        .bounding_box()
        .unwrap();
    let rect = |f: f64| {
        Rectangle::new(
            bbox.min_lon + bbox.lon_span() * 0.2 * f,
            bbox.max_lat - bbox.lat_span() * 0.2 * f,
            bbox.lon_span() * 0.5,
            bbox.lat_span() * 0.5,
        )
    };
    let group = SyntheticGroupGenerator::new(engine.profile_schema("Paris").unwrap(), session)
        .group(GroupSize::Small, Uniformity::NonUniform);
    vec![
        CommandRequest::new(
            session,
            SessionCommand::build_for_group(
                "Paris",
                group,
                ConsensusMethod::pairwise_disagreement(),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ),
        CommandRequest::new(
            session,
            SessionCommand::Customize(CustomizationOp::Generate {
                rectangle: rect(1.0),
            }),
        ),
        CommandRequest::new(
            session,
            SessionCommand::Customize(CustomizationOp::Generate {
                rectangle: rect(2.0),
            }),
        ),
        CommandRequest::new(
            session,
            SessionCommand::Customize(CustomizationOp::DeleteCi { ci_index: 0 }),
        ),
        CommandRequest::new(session, SessionCommand::Refine(RefinementStrategy::Batch)),
        CommandRequest::new(
            session,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ),
    ]
}

#[test]
fn interleaved_sessions_lose_no_updates_and_stay_monotone() {
    const GROUPS: u64 = 6;
    let engine = Engine::new(EngineConfig {
        worker_threads: 4,
        ..EngineConfig::fast()
    });
    engine.register_catalog(paris(29)).unwrap();

    // N groups × M commands, interleaved round-robin: command j of every
    // session appears before command j+1 of any session, so the batch
    // exercises cross-session contention at every step.
    let scripts: Vec<Vec<CommandRequest>> = (0..GROUPS)
        .map(|s| interleaved_script(&engine, s))
        .collect();
    let steps_per_session = scripts[0].len() as u64;
    let mut batch = Vec::new();
    for j in 0..scripts[0].len() {
        for script in &scripts {
            batch.push(script[j].clone());
        }
    }

    let responses = engine.serve_commands_batch(batch.clone());
    assert_eq!(responses.len(), batch.len());
    let mut last_step = vec![0u64; GROUPS as usize];
    for (request, response) in batch.iter().zip(&responses) {
        assert_eq!(response.session_id, request.session_id, "order preserved");
        assert!(
            response.outcome.is_ok(),
            "session {} step {} failed: {:?}",
            response.session_id,
            response.step,
            response.outcome
        );
        // Monotone step counters: within a session, steps come back as
        // 1, 2, …, M in submission order — no reordering, no lost steps.
        let seen = &mut last_step[response.session_id as usize];
        assert_eq!(response.step, *seen + 1, "steps must be consecutive");
        *seen = response.step;
    }

    for session in 0..GROUPS {
        let state = engine.sessions().snapshot(session).unwrap();
        assert_eq!(state.steps, steps_per_session);
        assert_eq!(state.packages_served, 2, "initial build + rebuild");
        assert_eq!(state.customizations, 3);
        assert_eq!(state.refinements, 1);
        assert_eq!(state.failures, 0);
        // 5 CIs built + 2 generated − 1 deleted, then rebuilt at k = 5.
        assert_eq!(state.last_package.as_ref().unwrap().len(), 5);
        assert_eq!(
            state.pending_interactions(),
            0,
            "refinement consumed the interactions"
        );

        // No lost updates: the concurrent result must equal the same script
        // served strictly sequentially on a fresh engine.
        let sequential = Engine::new(EngineConfig {
            worker_threads: 1,
            ..EngineConfig::fast()
        });
        sequential.register_catalog(paris(29)).unwrap();
        for request in interleaved_script(&sequential, session) {
            let response = sequential.serve_command(&request);
            assert!(response.outcome.is_ok());
        }
        let expected = sequential.sessions().snapshot(session).unwrap();
        assert_eq!(state.last_package, expected.last_package);
        assert_eq!(
            state.profile.as_ref().unwrap(),
            expected.profile.as_ref().unwrap(),
            "refined profiles must not race"
        );
    }

    // Warm runs trigger zero retrainings: the same shape of batch over new
    // sessions reuses every cached model.
    let trainings_after_first = engine.stats().fcm_trainings;
    assert!(engine.stats().lda_trainings <= 1, "one LDA training total");
    let mut second = Vec::new();
    for j in 0..scripts[0].len() {
        for s in 0..GROUPS {
            second.push(interleaved_script(&engine, 100 + s)[j].clone());
        }
    }
    let responses = engine.serve_commands_batch(second);
    assert!(responses.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(
        engine.stats().fcm_trainings,
        trainings_after_first,
        "warm interactive batches must not retrain FCM"
    );
    assert_eq!(engine.stats().lda_trainings, 1, "LDA is never retrained");
}

/// Two engines with identical configurations and the same training
/// thread count produce identical packages — the acceptance bar for
/// deterministic parallel training, checked end to end through the
/// registry (block-Gibbs LDA), the clustering cache (parallel FCM), and
/// the batch fan-out, at T ∈ {2, 8}.
#[test]
fn parallel_training_is_reproducible_at_the_same_thread_count() {
    use grouptravel_topics::{LdaConfig, LdaSampler};

    let serve = |train_threads: usize| {
        let engine = Engine::new(EngineConfig {
            worker_threads: 2,
            train_threads,
            lda: LdaConfig {
                iterations: 30,
                sampler: LdaSampler::BlockGibbsV1,
                ..LdaConfig::default()
            },
            ..EngineConfig::fast()
        });
        engine.register_catalog(paris(43)).unwrap();
        let requests: Vec<PackageRequest> = (0..4u64)
            .map(|i| PackageRequest {
                session_id: i,
                city: "Paris".to_string(),
                profile: profile_for(&engine, "Paris", 900 + i),
                query: GroupQuery::paper_default(),
                config: BuildConfig {
                    seed: 7 + i,
                    ..BuildConfig::default()
                },
            })
            .collect();
        let responses = engine.serve_batch(requests);
        assert!(responses.iter().all(|r| r.outcome.is_ok()));
        assert!(engine.stats().fcm_trainings >= 1);
        assert_eq!(engine.stats().train_threads, train_threads);
        responses
            .into_iter()
            .map(|r| r.outcome.unwrap())
            .collect::<Vec<_>>()
    };

    for train_threads in [2usize, 8] {
        let first = serve(train_threads);
        let second = serve(train_threads);
        assert_eq!(
            first, second,
            "identical runs at T={train_threads} must produce identical packages"
        );
    }
    // And across thread counts: parallel training is width-independent.
    assert_eq!(serve(2), serve(8), "T=2 and T=8 must agree");
}
