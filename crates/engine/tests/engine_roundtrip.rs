//! Round-trip guarantees of the serving engine against the one-shot
//! pipeline: an exhaustive engine is bit-identical to
//! `GroupTravelSession::build_package`, and the default (grid-bounded)
//! engine always serves valid packages while reusing cached models.

use grouptravel::prelude::*;
use grouptravel::{GroupTravelSession, SessionConfig};
use grouptravel_engine::{Engine, EngineConfig, PackageRequest};
use proptest::prelude::*;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn profile_for(engine: &Engine, city: &str, seed: u64) -> GroupProfile {
    let schema = engine.profile_schema(city).unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For random profiles, k and seeds, the exhaustive engine reproduces
    /// the one-shot session exactly — the serving layer adds caching and
    /// concurrency, never different answers.
    #[test]
    fn exhaustive_engine_round_trips_the_session(
        profile_seed in 0u64..1000,
        k in 2usize..7,
        fcm_seed in 0u64..1000,
    ) {
        let engine = Engine::new(EngineConfig::exhaustive());
        engine.register_catalog(paris(17)).unwrap();
        let config = BuildConfig {
            k,
            seed: fcm_seed,
            ..BuildConfig::default()
        };
        let request = PackageRequest {
            session_id: profile_seed,
            city: "Paris".to_string(),
            profile: profile_for(&engine, "Paris", profile_seed),
            query: GroupQuery::paper_default(),
            config,
        };
        let served = engine.serve(&request).outcome.unwrap();

        let session = GroupTravelSession::new(
            paris(17),
            SessionConfig {
                lda: engine.config().lda,
                metric: engine.config().metric,
            },
        )
        .unwrap();
        let direct = session
            .build_package(&request.profile, &request.query, &config)
            .unwrap();
        prop_assert_eq!(&served, &direct);
    }
}

#[test]
fn warm_batches_never_retrain_and_stay_valid() {
    // worker_threads > 1 exercises the scoped-thread fan-out even on
    // single-core CI machines.
    let engine = Engine::new(EngineConfig {
        worker_threads: 3,
        ..EngineConfig::fast()
    });
    engine.register_catalog(paris(29)).unwrap();

    let make_batch = |salt: u64| -> Vec<PackageRequest> {
        (0..8u64)
            .map(|i| PackageRequest {
                session_id: salt * 100 + i,
                city: "Paris".to_string(),
                profile: profile_for(&engine, "Paris", salt * 37 + i),
                query: GroupQuery::paper_default(),
                config: BuildConfig::default(),
            })
            .collect()
    };

    let cold = engine.serve_batch(make_batch(1));
    assert!(cold.iter().all(|r| r.outcome.is_ok()));
    let trainings_after_cold = engine.stats().fcm_trainings;
    assert!(trainings_after_cold >= 1);

    let warm = engine.serve_batch(make_batch(2));
    let entry = engine.registry().get("Paris").unwrap();
    for response in &warm {
        assert!(
            response.clustering_cache_hit,
            "warm batch must hit the cache"
        );
        let package = response.package().unwrap();
        assert_eq!(package.len(), 5);
        assert!(package.is_valid(entry.catalog(), &GroupQuery::paper_default()));
    }
    assert_eq!(
        engine.stats().fcm_trainings,
        trainings_after_cold,
        "no retraining may happen once the cache is warm"
    );
    assert_eq!(
        engine.stats().lda_trainings,
        1,
        "one vectorizer training total"
    );
}
