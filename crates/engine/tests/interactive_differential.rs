//! Differential suite: an engine-driven interactive session must be
//! **bit-identical** to replaying the same steps through the one-shot
//! `GroupTravelSession` (`apply` + `refine_batch`/`refine_individual` +
//! `build_package`).
//!
//! The engine adds caching, spatial candidate pruning and concurrency —
//! never different answers. Since the grid k-NN refactor the engine runs
//! its **default (non-exhaustive) grid configuration** here: builds and
//! `GENERATE` are served from `GridCandidates`, `REPLACE` suggestions and
//! `ADD` candidates from the catalog's ring-bounded exact k-NN. Parity is
//! structural, not luck: k-NN answers are provably exact (ties by catalog
//! position), and the default `min_candidate_pool` (64) covers every
//! category of the suite's catalogs (≤ 40 POIs each), at which point the
//! grid pool *is* the brute-force pool in brute-force order. On catalogs
//! whose categories exceed the floor, builds become a bounded-pool
//! approximation — the large-catalog test below pins down what stays exact
//! there (REPLACE, ADD) regardless of pool size.
//!
//! Scripts are randomized but the vendored proptest derives its RNG seed
//! from the test name, so every run (locally and in CI) replays the exact
//! same scripts: any nondeterminism between the two paths fails
//! deterministically.

use grouptravel::prelude::*;
use grouptravel::{
    record_member_log, refine_batch, refine_individual, GroupTravelSession, SessionConfig,
};
use grouptravel_engine::{CommandOutcome, CommandRequest, Engine, EngineConfig, SessionCommand};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const SESSION: u64 = 1;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

/// The one-shot replica of the engine session's state machine.
struct Reference {
    session: GroupTravelSession,
    group: Group,
    consensus: ConsensusMethod,
    profile: GroupProfile,
    package: TravelPackage,
    interactions: Vec<MemberInteractions>,
    query: GroupQuery,
    config: BuildConfig,
}

impl Reference {
    fn pending(&self) -> usize {
        self.interactions.iter().map(|m| m.log.len()).sum()
    }
}

/// One interpreted step of a script.
enum Step {
    Op(CustomizationOp),
    Refine(RefinementStrategy),
    Rebuild,
    Suggest { ci_index: usize, poi: PoiId },
}

/// Maps one raw `(kind, a, b)` tuple onto a step that is *mostly* valid for
/// the current package. The interpretation only reads state both paths
/// provably share (the current package and the catalog), so engine and
/// replay execute the same step sequence.
fn interpret(kind: u8, a: usize, b: usize, package: &TravelPackage, catalog: &PoiCatalog) -> Step {
    let ci_index = a % package.len().max(1);
    let ci_poi = |idx: usize| {
        package
            .get(ci_index)
            .filter(|ci| !ci.is_empty())
            .map(|ci| ci.poi_ids()[idx % ci.len()])
    };
    let any_poi = catalog.pois()[b % catalog.len()].id;
    match kind {
        0..=2 => match ci_poi(b) {
            Some(poi) => Step::Op(CustomizationOp::Remove { ci_index, poi }),
            None => Step::Op(CustomizationOp::Add {
                ci_index,
                poi: any_poi,
            }),
        },
        3 | 4 => Step::Op(CustomizationOp::Add {
            ci_index,
            poi: any_poi,
        }),
        5..=7 => match ci_poi(b) {
            Some(poi) => Step::Op(CustomizationOp::Replace { ci_index, poi }),
            None => Step::Op(CustomizationOp::Add {
                ci_index,
                poi: any_poi,
            }),
        },
        8 | 9 => {
            let bbox = catalog.bounding_box().expect("non-empty catalog");
            let fx = (a % 5) as f64 / 8.0;
            let fy = (b % 5) as f64 / 8.0;
            Step::Op(CustomizationOp::Generate {
                rectangle: Rectangle::new(
                    bbox.min_lon + bbox.lon_span() * fx,
                    bbox.max_lat - bbox.lat_span() * fy,
                    bbox.lon_span() * 0.4,
                    bbox.lat_span() * 0.4,
                ),
            })
        }
        10 => {
            if package.len() > 1 {
                Step::Op(CustomizationOp::DeleteCi { ci_index })
            } else {
                Step::Op(CustomizationOp::Add {
                    ci_index,
                    poi: any_poi,
                })
            }
        }
        11 | 12 => Step::Refine(RefinementStrategy::Batch),
        13 => Step::Refine(RefinementStrategy::Individual),
        14 | 15 => Step::Rebuild,
        16 => match ci_poi(b) {
            Some(poi) => Step::Suggest { ci_index, poi },
            None => Step::Rebuild,
        },
        _ => match ci_poi(a.wrapping_add(b)) {
            Some(poi) => Step::Op(CustomizationOp::Remove { ci_index, poi }),
            None => Step::Op(CustomizationOp::Add {
                ci_index,
                poi: any_poi,
            }),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// For arbitrary command scripts, every step of an engine interactive
    /// session matches a one-shot replay: same packages (bit-identical),
    /// same refined profiles, same suggestions, same failures — and the
    /// engine never retrains FCM/LDA after the cold start.
    #[test]
    fn engine_interactive_sessions_replay_the_one_shot_session(
        group_seed in 0u64..500,
        script in prop::collection::vec((0u8..20, 0usize..64, 0usize..64), 0..10),
    ) {
        let engine = Engine::new(EngineConfig::fast());
        engine.register_catalog(paris(17)).unwrap();
        let schema = engine.profile_schema("Paris").unwrap();
        let group = SyntheticGroupGenerator::new(schema, group_seed)
            .group(GroupSize::Small, Uniformity::NonUniform);
        let consensus = ConsensusMethod::pairwise_disagreement();
        let query = GroupQuery::paper_default();
        let config = BuildConfig::default();

        // The one-shot replica trains its own substrate from the same
        // inputs — bit-identical by construction, as PR 1's round-trip
        // suite already proves for plain builds.
        let session = GroupTravelSession::new(
            paris(17),
            SessionConfig { lda: engine.config().lda, metric: engine.config().metric },
        )
        .unwrap();
        let profile = group.profile(consensus);
        let initial = session.build_package(&profile, &query, &config).unwrap();

        let built = engine.serve_command(&CommandRequest::new(
            SESSION,
            SessionCommand::build_for_group("Paris", group.clone(), consensus, query, config),
        ));
        prop_assert_eq!(built.package().expect("engine build succeeds"), &initial);

        let mut reference = Reference {
            session,
            group,
            consensus,
            profile,
            package: initial,
            interactions: Vec::new(),
            query,
            config,
        };

        let mut replay_failures = 0u64;
        for (case, &(kind, a, b)) in script.iter().enumerate() {
            let member = reference.group.members()[b % reference.group.size()].user_id;
            match interpret(kind, a, b, &reference.package, reference.session.catalog()) {
                Step::Op(op) => {
                    let response = engine.serve_command(&CommandRequest::from_member(
                        SESSION,
                        member,
                        SessionCommand::Customize(op),
                    ));
                    let replayed = reference.session.apply(
                        &mut reference.package,
                        &op,
                        &reference.profile,
                        &reference.query,
                        &reference.config.weights,
                    );
                    match replayed {
                        Ok(log) => {
                            record_member_log(&mut reference.interactions, member, &log);
                            prop_assert_eq!(
                                response.package().expect("replay succeeded, engine must too"),
                                &reference.package,
                                "step {}: packages diverged", case
                            );
                        }
                        Err(_) => {
                            replay_failures += 1;
                            prop_assert!(
                                response.outcome.is_err(),
                                "step {}: replay failed, engine succeeded", case
                            );
                        }
                    }
                }
                Step::Refine(strategy) => {
                    let response = engine.serve_command(&CommandRequest::new(
                        SESSION,
                        SessionCommand::Refine(strategy),
                    ));
                    let refined = match strategy {
                        RefinementStrategy::Batch => refine_batch(
                            &reference.profile,
                            &reference.interactions,
                            reference.session.catalog(),
                            reference.session.vectorizer(),
                        ),
                        RefinementStrategy::Individual => {
                            let (refined_group, refined_profile) = refine_individual(
                                &reference.group,
                                reference.consensus,
                                &reference.interactions,
                                reference.session.catalog(),
                                reference.session.vectorizer(),
                            );
                            reference.group = refined_group;
                            refined_profile
                        }
                    };
                    reference.interactions.clear();
                    reference.profile = refined.clone();
                    prop_assert_eq!(
                        response.refined_profile().expect("refine succeeds"),
                        &refined,
                        "step {}: refined profiles diverged", case
                    );
                }
                Step::Rebuild => {
                    let response = engine.serve_command(&CommandRequest::new(
                        SESSION,
                        SessionCommand::rebuild("Paris", reference.query, reference.config),
                    ));
                    prop_assert!(
                        response.clustering_cache_hit,
                        "step {}: interactive rebuild must be warm", case
                    );
                    reference.package = reference
                        .session
                        .build_package(&reference.profile, &reference.query, &reference.config)
                        .unwrap();
                    prop_assert_eq!(
                        response.package().expect("rebuild succeeds"),
                        &reference.package,
                        "step {}: rebuilt packages diverged", case
                    );
                }
                Step::Suggest { ci_index, poi } => {
                    let response = engine.serve_command(&CommandRequest::new(
                        SESSION,
                        SessionCommand::SuggestReplacement { ci_index, poi },
                    ));
                    let expected = reference
                        .session
                        .suggest_replacement(&reference.package, ci_index, poi)
                        .cloned();
                    match response.outcome {
                        Ok(CommandOutcome::Suggestion(actual)) => {
                            prop_assert_eq!(actual, expected, "step {}: suggestions diverged", case);
                        }
                        other => {
                            return Err(TestCaseError::fail(format!(
                                "step {case}: expected a suggestion, got {other:?}"
                            )));
                        }
                    }
                }
            }

            // The authoritative state tracks the replica exactly.
            let state = engine.sessions().snapshot(SESSION).unwrap();
            prop_assert_eq!(
                state.last_package.as_ref(),
                Some(&reference.package),
                "step {}: stored package diverged", case
            );
            prop_assert_eq!(
                state.pending_interactions(),
                reference.pending(),
                "step {}: pooled interactions diverged", case
            );
        }

        // Warm guarantee: one cold FCM fit and one LDA training total, no
        // matter what the script did.
        let stats = engine.stats();
        prop_assert_eq!(stats.fcm_trainings, 1, "interactive steps must never retrain FCM");
        prop_assert_eq!(stats.lda_trainings, 1, "interactive steps must never retrain LDA");
        prop_assert_eq!(
            stats.commands.failures, replay_failures,
            "engine and replay must fail on exactly the same steps"
        );
    }
}

/// On a catalog whose categories exceed the default candidate pool, engine
/// builds run on genuinely *bounded* grid pools — and the operators whose
/// answers do not depend on pool size at all (`REPLACE` suggestions, `ADD`
/// candidates) must still be exact: equal to an independent hand-rolled
/// linear scan, not merely to another call of the same code path.
#[test]
fn bounded_grid_pools_keep_replace_and_add_exact_on_large_catalogs() {
    let large = SyntheticCityConfig {
        counts: [40, 30, 150, 150],
        seed: 29,
        ..SyntheticCityConfig::default()
    };
    let catalog = SyntheticCityGenerator::new(CitySpec::paris(), large).generate();
    let engine = Engine::new(EngineConfig::fast());
    assert!(
        engine.config().min_candidate_pool < 150,
        "the restaurant/attraction categories must exceed the pool floor"
    );
    engine.register_catalog(catalog).unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 3).group(GroupSize::Small, Uniformity::Uniform);
    let consensus = ConsensusMethod::pairwise_disagreement();
    let query = GroupQuery::paper_default();

    let built = engine.serve_command(&CommandRequest::new(
        9,
        SessionCommand::build_for_group("Paris", group, consensus, query, BuildConfig::default()),
    ));
    let package = built
        .package()
        .expect("bounded-pool build succeeds")
        .clone();
    let entry = engine.registry().get("Paris").unwrap();
    assert!(
        package.is_valid(entry.catalog(), &query),
        "bounded pools must still produce a valid package"
    );

    // Every POI of the package gets a REPLACE suggestion; each must equal
    // the linear-scan nearest same-category POI outside the composite item
    // (ties to the lower catalog position).
    let catalog = entry.catalog();
    for (ci_index, ci) in package.composite_items().iter().enumerate() {
        for &victim in ci.poi_ids() {
            let response = engine.serve_command(&CommandRequest::new(
                9,
                SessionCommand::SuggestReplacement {
                    ci_index,
                    poi: victim,
                },
            ));
            let Ok(CommandOutcome::Suggestion(suggested)) = response.outcome else {
                panic!("expected a suggestion outcome");
            };
            let current = catalog.get(victim).unwrap();
            let brute = catalog
                .pois()
                .iter()
                .filter(|p| p.category == current.category && p.id != victim && !ci.contains(p.id))
                .map(|p| {
                    (
                        engine
                            .config()
                            .metric
                            .distance_km(&current.location, &p.location),
                        p.id,
                    )
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .map(|(_, id)| id);
            assert_eq!(
                suggested.map(|p| p.id),
                brute,
                "suggestion diverged from the linear scan for {victim:?}"
            );
        }
    }
}

/// The final profile after a whole interactive session matches the one-shot
/// replay — a fixed, human-readable script touching every command kind,
/// independent of the randomized suite above.
#[test]
fn fixed_script_round_trips_end_to_end() {
    let engine = Engine::new(EngineConfig::fast());
    engine.register_catalog(paris(23)).unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 9).group(GroupSize::Large, Uniformity::NonUniform);
    let consensus = ConsensusMethod::disagreement_variance();
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();

    let session = GroupTravelSession::new(
        paris(23),
        SessionConfig {
            lda: engine.config().lda,
            metric: engine.config().metric,
        },
    )
    .unwrap();
    let mut profile = group.profile(consensus);
    let mut package = session.build_package(&profile, &query, &config).unwrap();

    let built = engine.serve_command(&CommandRequest::new(
        2,
        SessionCommand::build_for_group("Paris", group.clone(), consensus, query, config),
    ));
    assert_eq!(built.package().unwrap(), &package);

    // Two members interact: a removal and a replacement.
    let mut interactions: Vec<MemberInteractions> = Vec::new();
    let removed = package.get(0).unwrap().poi_ids()[0];
    let ops = [
        (
            group.members()[0].user_id,
            CustomizationOp::Remove {
                ci_index: 0,
                poi: removed,
            },
        ),
        (
            group.members()[1].user_id,
            CustomizationOp::Replace {
                ci_index: 1,
                poi: package.get(1).unwrap().poi_ids()[1],
            },
        ),
    ];
    for (member, op) in ops {
        let response = engine.serve_command(&CommandRequest::from_member(
            2,
            member,
            SessionCommand::Customize(op),
        ));
        let log = session
            .apply(&mut package, &op, &profile, &query, &config.weights)
            .unwrap();
        record_member_log(&mut interactions, member, &log);
        assert_eq!(response.package().unwrap(), &package);
    }

    // Batch refinement, then a warm rebuild with the refined profile.
    let refined = engine.serve_command(&CommandRequest::new(
        2,
        SessionCommand::Refine(RefinementStrategy::Batch),
    ));
    profile = refine_batch(
        &profile,
        &interactions,
        session.catalog(),
        session.vectorizer(),
    );
    assert_eq!(refined.refined_profile().unwrap(), &profile);

    let rebuilt = engine.serve_command(&CommandRequest::new(
        2,
        SessionCommand::rebuild("Paris", query, config),
    ));
    package = session.build_package(&profile, &query, &config).unwrap();
    assert_eq!(rebuilt.package().unwrap(), &package);
    assert!(rebuilt.clustering_cache_hit);
    assert_eq!(engine.stats().fcm_trainings, 1);
}
