//! Observability suite: the metrics spine as seen from outside the engine.
//!
//! Three surfaces must agree after any scripted workload:
//! - the Prometheus exposition (`MetricsRegistry::render_prometheus`),
//! - the stats surface (`EngineStats`), and
//! - per-request traces (`EngineRequest::Trace`).
//!
//! The invariants pinned here are the ones the scrape surface promises in
//! `observe.rs`: clustering `hit + coalesced_wait` equals
//! `clustering_cache_hits`, cache `miss` equals trainings, and latency
//! summaries cover exactly the requests served.

use grouptravel::prelude::*;
use grouptravel_engine::{
    Engine, EngineConfig, EngineRequest, EngineResponse, PackageRequest, SlowEntry,
};
use std::time::Duration;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn engine_with(config: EngineConfig) -> Engine {
    let engine = Engine::new(config);
    engine.register_catalog(paris(11)).unwrap();
    engine
}

fn package_request(engine: &Engine, session_id: u64, seed: u64) -> PackageRequest {
    let schema = engine.profile_schema("Paris").unwrap();
    let profile = SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile,
        query: GroupQuery::paper_default(),
        config: BuildConfig::with_k(3),
    }
}

/// The value of one exposition series, by its exact sample name (including
/// any `{label="…"}` set). Panics when the series is absent.
fn series_value(exposition: &str, series: &str) -> f64 {
    let line = exposition
        .lines()
        .find(|line| {
            line.strip_prefix(series)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .unwrap_or_else(|| panic!("series `{series}` not in exposition:\n{exposition}"));
    line.rsplit(' ').next().unwrap().parse().unwrap()
}

fn build(engine: &Engine, session_id: u64, seed: u64) {
    let response = engine.dispatch(EngineRequest::Build {
        request: Box::new(package_request(engine, session_id, seed)),
    });
    match response {
        EngineResponse::Package { response } => response.outcome.expect("build succeeds"),
        other => panic!("expected Package, got {}", other.kind()),
    };
}

#[test]
fn a_traced_build_reports_its_stage_timeline() {
    let engine = engine_with(EngineConfig::fast());
    let response = engine.dispatch(EngineRequest::Trace {
        request: Box::new(EngineRequest::Build {
            request: Box::new(package_request(&engine, 1, 5)),
        }),
    });
    let EngineResponse::Traced { response, trace } = response else {
        panic!("expected Traced, got {}", response.kind());
    };
    assert!(
        matches!(*response, EngineResponse::Package { ref response } if response.outcome.is_ok())
    );
    assert_eq!(trace.dropped, 0);

    let names: Vec<&str> = trace.stages.iter().map(|s| s.stage.as_str()).collect();
    // A cold build runs validation, an FCM training, and assembly inside
    // the request, which sits inside the dispatch stage. Stages land in
    // completion order, so the containing stages come last.
    for expected in [
        "build.validate",
        "fcm.train",
        "build.assemble",
        "request.build",
        "dispatch.build",
    ] {
        assert!(
            names.contains(&expected),
            "missing `{expected}` in {names:?}"
        );
    }
    assert_eq!(*names.last().unwrap(), "dispatch.build");

    // Every stage fits inside the dispatch stage's window.
    let dispatch = trace.stages.last().unwrap();
    for stage in &trace.stages {
        assert!(stage.start_ns >= dispatch.start_ns);
        assert!(stage.start_ns + stage.duration_ns <= dispatch.start_ns + dispatch.duration_ns);
    }

    // A warm build of the same profile skips training: no `fcm.train`.
    let response = engine.dispatch(EngineRequest::Trace {
        request: Box::new(EngineRequest::Build {
            request: Box::new(package_request(&engine, 2, 5)),
        }),
    });
    let EngineResponse::Traced { trace, .. } = response else {
        panic!("expected Traced");
    };
    let names: Vec<&str> = trace.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(
        !names.contains(&"fcm.train"),
        "warm build must not retrain: {names:?}"
    );
    assert!(names.contains(&"dispatch.build"));
}

#[test]
fn tracing_a_trace_answers_the_inner_request_untraced() {
    let engine = engine_with(EngineConfig::fast());
    let response = engine.dispatch(EngineRequest::Trace {
        request: Box::new(EngineRequest::Trace {
            request: Box::new(EngineRequest::Stats),
        }),
    });
    let EngineResponse::Traced { response, trace } = response else {
        panic!("expected outer Traced");
    };
    assert!(!trace.stages.is_empty(), "the outer trace collects");
    let EngineResponse::Traced { response, trace } = *response else {
        panic!("expected inner Traced");
    };
    assert!(matches!(*response, EngineResponse::Stats { .. }));
    assert!(
        trace.stages.is_empty(),
        "the nested trace yields an empty timeline, not a second collector"
    );
}

#[test]
fn cache_event_counters_agree_with_engine_stats() {
    let engine = engine_with(EngineConfig::fast());
    // One cold build (trains), two warm builds (hit the clustering cache).
    build(&engine, 1, 5);
    build(&engine, 2, 5);
    build(&engine, 3, 5);

    let stats = engine.stats();
    let text = engine.metrics_registry().render_prometheus();
    let clustering = |event: &str| {
        series_value(
            &text,
            &format!("gt_model_cache_events_total{{cache=\"clustering\",event=\"{event}\"}}"),
        )
    };
    let vectorizer = |event: &str| {
        series_value(
            &text,
            &format!("gt_model_cache_events_total{{cache=\"vectorizer\",event=\"{event}\"}}"),
        )
    };

    // The scrape surface and the stats surface never disagree.
    let hits = clustering("hit") + clustering("coalesced_wait");
    assert_eq!(hits as u64, stats.clustering_cache_hits);
    assert_eq!(clustering("miss") as u64, stats.fcm_trainings);
    assert_eq!(vectorizer("miss") as u64, stats.lda_trainings);
    assert!(stats.fcm_trainings >= 1);
    assert_eq!(stats.clustering_cache_hits, 2);

    // Training cost made it into the histograms.
    assert_eq!(
        series_value(&text, "gt_fcm_train_seconds_count") as u64,
        stats.fcm_trainings
    );
    assert!(series_value(&text, "gt_fcm_sweeps_total") >= 1.0);
    assert_eq!(
        series_value(&text, "gt_lda_train_seconds_count") as u64,
        stats.lda_trainings
    );
    assert!(series_value(&text, "gt_lda_sweeps_total") >= 1.0);
}

#[test]
fn stats_quantile_summaries_cover_the_requests_served() {
    let engine = engine_with(EngineConfig::fast());
    build(&engine, 1, 5);
    build(&engine, 2, 6);

    let stats = engine.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.build_latency.count, 2);
    // Dispatch latency spans every variant; both builds recorded, and the
    // `stats` dispatch that produced this snapshot is itself in flight
    // (its span has not dropped yet), so only the builds are visible.
    assert_eq!(stats.dispatch_latency.count, 2);
    assert_eq!(stats.command_latency.count, 0);

    let s = stats.build_latency;
    assert!(s.p50_ns > 0);
    assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns && s.p999_ns <= s.max_ns);
    assert!(s.mean_ns <= s.max_ns);

    // The per-variant exposition agrees with the merged summary.
    let text = engine.metrics_registry().render_prometheus();
    assert_eq!(
        series_value(&text, "gt_build_latency_seconds_count") as u64,
        stats.build_latency.count
    );
    assert_eq!(
        series_value(
            &text,
            "gt_dispatch_latency_seconds_count{variant=\"build\"}"
        ) as u64,
        2
    );
}

#[test]
fn the_slow_log_records_above_threshold_and_feeds_its_counter() {
    let engine = engine_with(EngineConfig {
        slow_log_threshold: Duration::ZERO,
        ..EngineConfig::fast()
    });
    build(&engine, 1, 5);
    build(&engine, 2, 6);

    assert_eq!(engine.slow_log().total_recorded(), 2);
    let lines = engine.slow_log().json_lines();
    let entries: Vec<SlowEntry> = lines
        .lines()
        .map(|line| serde_json::from_str(line).expect("slow-log lines are JSON"))
        .collect();
    assert_eq!(entries.len(), 2);
    assert!(entries.iter().all(|e| e.kind == "build" && e.ok));
    assert_eq!(entries[0].session_id, 1);
    assert_eq!(entries[1].session_id, 2);
    assert!(entries[0].at_ns <= entries[1].at_ns);

    let text = engine.metrics_registry().render_prometheus();
    assert_eq!(series_value(&text, "gt_slow_requests_total"), 2.0);

    // A generous threshold keeps the log quiet.
    let quiet = engine_with(EngineConfig {
        slow_log_threshold: Duration::from_secs(3600),
        ..EngineConfig::fast()
    });
    build(&quiet, 1, 5);
    assert_eq!(quiet.slow_log().total_recorded(), 0);
    assert_eq!(quiet.slow_log().json_lines(), "");
}

#[test]
fn disabled_metrics_serve_an_empty_exposition_but_traces_still_work() {
    let engine = engine_with(EngineConfig {
        metrics_enabled: false,
        ..EngineConfig::fast()
    });
    build(&engine, 1, 5);

    assert_eq!(engine.metrics_registry().render_prometheus(), "");
    let stats = engine.stats();
    // The legacy counters keep working; the histogram-backed summaries
    // are zeroed, not fabricated.
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.fcm_trainings, 1);
    assert_eq!(stats.build_latency.count, 0);
    assert_eq!(stats.dispatch_latency.count, 0);

    // Tracing is thread-local and does not depend on the registry.
    let response = engine.dispatch(EngineRequest::Trace {
        request: Box::new(EngineRequest::Build {
            request: Box::new(package_request(&engine, 2, 5)),
        }),
    });
    let EngineResponse::Traced { trace, .. } = response else {
        panic!("expected Traced");
    };
    assert!(trace.stages.iter().any(|s| s.stage == "dispatch.build"));
}

#[test]
fn the_exposition_has_no_duplicate_series_and_counts_sessions() {
    let engine = engine_with(EngineConfig::fast());
    build(&engine, 1, 5);

    let text = engine.metrics_registry().render_prometheus();
    let mut samples: Vec<&str> = text
        .lines()
        .filter(|line| !line.starts_with('#') && !line.is_empty())
        .map(|line| line.rsplit_once(' ').unwrap().0)
        .collect();
    let total = samples.len();
    samples.sort_unstable();
    let dups: Vec<String> = samples
        .windows(2)
        .filter(|w| w[0] == w[1])
        .map(|w| w[0].to_string())
        .collect();
    samples.dedup();
    assert_eq!(samples.len(), total, "duplicate series: {dups:?}");

    // The gauge tracks the store exactly (a one-shot build records its
    // session for replay, so one session is open here).
    assert_eq!(
        series_value(&text, "gt_sessions_open") as usize,
        engine.sessions().len()
    );
    assert_eq!(engine.sessions().len(), 1);
}
