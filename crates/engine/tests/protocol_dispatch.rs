//! Dispatch-level guarantees of the unified protocol:
//!
//! * **Coalescing** — N concurrent identical cold builds perform exactly
//!   one FCM training (and one LDA training at registration): the
//!   clustering cache is single-flight, so a stampede trains once and
//!   everyone shares the result.
//! * **Snapshot/resume** — an exported session imported into another
//!   engine (or the same one after eviction) continues **bit-identically**,
//!   and the import re-primes the catalog's spatial index so the resumed
//!   session's first command runs the grid path. Grid-vs-brute parity
//!   after resume is pinned by running the same continuation on a
//!   default-grid engine and an exhaustive (brute-force-equivalent) one.

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineError, EngineRequest, EngineResponse,
    PackageRequest, SessionCommand, SessionSnapshot, SNAPSHOT_VERSION,
};

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn engine_with_paris(config: EngineConfig) -> Engine {
    let engine = Engine::new(config);
    engine.register_catalog(paris(11)).unwrap();
    engine
}

fn profile_for(engine: &Engine, seed: u64) -> GroupProfile {
    let schema = engine.profile_schema("Paris").unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

#[test]
fn concurrent_identical_cold_builds_train_exactly_once() {
    // Force real fan-out even on single-core CI, and make every request
    // identical in its model key: same city, same build configuration.
    let engine = engine_with_paris(EngineConfig {
        worker_threads: 8,
        ..EngineConfig::fast()
    });
    let profile = profile_for(&engine, 1);
    let requests: Vec<PackageRequest> = (0..16u64)
        .map(|session_id| PackageRequest {
            session_id,
            city: "Paris".to_string(),
            profile: profile.clone(),
            query: GroupQuery::paper_default(),
            config: BuildConfig::default(),
        })
        .collect();

    let responses = match engine.dispatch(EngineRequest::Batch { requests }) {
        EngineResponse::Batch { responses } => responses,
        other => panic!("expected Batch, got {}", other.kind()),
    };
    assert_eq!(responses.len(), 16);
    let first = responses[0].package().expect("builds succeed");
    for response in &responses {
        assert_eq!(
            response.package().expect("builds succeed"),
            first,
            "identical requests must produce identical packages"
        );
    }

    let stats = engine.stats();
    assert_eq!(stats.requests, 16);
    assert_eq!(
        stats.fcm_trainings, 1,
        "16 concurrent cold misses must coalesce onto ONE FCM training"
    );
    assert_eq!(stats.lda_trainings, 1, "registration trained LDA once");
    assert_eq!(
        stats.clustering_cache_hits, 15,
        "everyone but the trainer consumed the coalesced model"
    );
}

#[test]
fn concurrent_identical_registrations_train_lda_once() {
    let engine = Engine::new(EngineConfig::fast());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            scope.spawn(move || {
                engine.register_catalog(paris(29)).unwrap();
            });
        }
    });
    assert_eq!(
        engine.stats().lda_trainings,
        1,
        "identical concurrent registrations must coalesce onto one LDA training"
    );
}

/// The continuation script both engines replay after the snapshot point.
fn continuation(package: &TravelPackage) -> Vec<CommandRequest> {
    let remove_victim = package.get(1).unwrap().poi_ids()[0];
    let suggest_poi = package.get(2).unwrap().poi_ids()[0];
    vec![
        CommandRequest::from_member(
            7,
            1,
            SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: 1,
                poi: remove_victim,
            }),
        ),
        CommandRequest::new(
            7,
            SessionCommand::SuggestReplacement {
                ci_index: 2,
                poi: suggest_poi,
            },
        ),
        CommandRequest::new(7, SessionCommand::Refine(RefinementStrategy::Batch)),
        CommandRequest::new(
            7,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ),
    ]
}

/// Runs the continuation and returns the step outcomes (latency and step
/// counters aside — those legitimately differ across engines).
fn run_continuation(engine: &Engine, script: &[CommandRequest]) -> Vec<String> {
    script
        .iter()
        .map(|request| {
            let response = engine.serve_command(request);
            format!("{:?}", response.outcome)
        })
        .collect()
}

#[test]
fn resumed_sessions_continue_bit_identically_on_grid_and_brute_paths() {
    // The original engine: build, customize once, snapshot mid-session.
    let origin = engine_with_paris(EngineConfig::fast());
    let built = origin.serve_command(&CommandRequest::new(
        7,
        SessionCommand::build(
            "Paris",
            profile_for(&origin, 3),
            GroupQuery::paper_default(),
            BuildConfig::default(),
        ),
    ));
    let package = built.package().expect("build succeeds").clone();
    let victim = package.get(0).unwrap().poi_ids()[0];
    origin.serve_command(&CommandRequest::from_member(
        7,
        2,
        SessionCommand::Customize(CustomizationOp::Remove {
            ci_index: 0,
            poi: victim,
        }),
    ));
    let snapshot = origin.export_session(7).expect("session exists");
    assert_eq!(snapshot.v, SNAPSHOT_VERSION);
    let package_at_snapshot = snapshot
        .state
        .last_package
        .clone()
        .expect("snapshot carries the current package");

    // Exporting is a read: the origin continues unaffected.
    let script = continuation(&package_at_snapshot);
    let origin_outcomes = run_continuation(&origin, &script);

    // Resume on a fresh default-grid engine: the catalog's spatial index
    // must be primed by the import itself, before any command runs.
    let grid = engine_with_paris(EngineConfig::fast());
    let info = grid
        .import_session(snapshot.clone())
        .expect("import succeeds");
    assert_eq!(info.session_id, 7);
    assert_eq!(info.city, "Paris");
    assert!(!info.replaced);
    assert!(
        grid.registry()
            .get("Paris")
            .unwrap()
            .catalog()
            .spatial_primed(),
        "import must leave the catalog's spatial index primed"
    );
    assert_eq!(
        grid.sessions().snapshot(7).unwrap().last_package.as_ref(),
        Some(&package_at_snapshot),
        "the resumed session sees the snapshotted package"
    );
    let grid_outcomes = run_continuation(&grid, &script);

    // And on an exhaustive engine (provably bit-identical to brute force):
    // grid-vs-brute parity must survive the snapshot/resume boundary.
    let brute = engine_with_paris(EngineConfig::exhaustive());
    brute.import_session(snapshot).expect("import succeeds");
    let brute_outcomes = run_continuation(&brute, &script);

    assert_eq!(
        origin_outcomes, grid_outcomes,
        "a resumed session must continue exactly as the original would"
    );
    assert_eq!(
        grid_outcomes, brute_outcomes,
        "grid-served continuation must be bit-identical to brute force after resume"
    );
    // The resumed rebuild really did serve a package (not vacuous parity).
    assert!(grid_outcomes.last().unwrap().contains("Package"));
}

#[test]
fn eviction_then_import_resumes_instead_of_unknown_session() {
    let engine = Engine::new(EngineConfig {
        max_sessions: 2,
        ..EngineConfig::fast()
    });
    engine.register_catalog(paris(11)).unwrap();

    let built = engine.serve_command(&CommandRequest::new(
        1,
        SessionCommand::build(
            "Paris",
            profile_for(&engine, 1),
            GroupQuery::paper_default(),
            BuildConfig::default(),
        ),
    ));
    let package = built.package().expect("build succeeds").clone();
    let snapshot = engine.export_session(1).unwrap();

    // Flood the tiny store so session 1 is evicted.
    for session in 2..=4u64 {
        engine.serve_command(&CommandRequest::new(
            session,
            SessionCommand::build(
                "Paris",
                profile_for(&engine, session),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ));
    }
    let victim = package.get(0).unwrap().poi_ids()[0];
    let customize = CommandRequest::new(
        1,
        SessionCommand::Customize(CustomizationOp::Remove {
            ci_index: 0,
            poi: victim,
        }),
    );
    let lost = engine.serve_command(&customize);
    assert_eq!(lost.outcome.unwrap_err(), EngineError::UnknownSession(1));

    // Import brings the session back; the same command now succeeds
    // against the snapshotted package.
    engine.import_session(snapshot).expect("import succeeds");
    let resumed = engine.serve_command(&customize);
    let resumed_package = resumed.package().expect("customize succeeds");
    assert!(!resumed_package.get(0).unwrap().contains(victim));
}

#[test]
fn import_rejects_unknown_cities_and_foreign_versions() {
    let engine = engine_with_paris(EngineConfig::fast());
    engine.serve_command(&CommandRequest::new(
        5,
        SessionCommand::build(
            "Paris",
            profile_for(&engine, 5),
            GroupQuery::paper_default(),
            BuildConfig::default(),
        ),
    ));
    let snapshot = engine.export_session(5).unwrap();

    // A version this engine does not speak.
    let foreign = SessionSnapshot {
        v: SNAPSHOT_VERSION + 1,
        ..snapshot.clone()
    };
    assert!(matches!(
        engine.import_session(foreign),
        Err(EngineError::InvalidCommand(_))
    ));

    // An engine that never registered the session's city.
    let elsewhere = Engine::new(EngineConfig::fast());
    assert_eq!(
        elsewhere.import_session(snapshot.clone()).unwrap_err(),
        EngineError::UnknownCity("Paris".to_string())
    );

    // Importing over a live session replaces it.
    let info = engine.import_session(snapshot).unwrap();
    assert!(info.replaced);
}

#[test]
fn legacy_wrappers_and_dispatch_share_one_accounting_path() {
    let engine = engine_with_paris(EngineConfig::fast());
    let request = PackageRequest {
        session_id: 1,
        city: "Paris".to_string(),
        profile: profile_for(&engine, 1),
        query: GroupQuery::paper_default(),
        config: BuildConfig::default(),
    };
    // One request through each route: the wrapper and the protocol count
    // identically (no double accounting in either).
    let via_wrapper = engine.serve(&request);
    assert!(via_wrapper.outcome.is_ok());
    assert_eq!(engine.stats().requests, 1);

    let via_dispatch = engine.dispatch(EngineRequest::Build {
        request: Box::new(request.clone()),
    });
    assert!(matches!(via_dispatch, EngineResponse::Package { .. }));
    assert_eq!(engine.stats().requests, 2);

    let via_batch = engine.serve_batch(vec![request]);
    assert!(via_batch[0].outcome.is_ok());
    assert_eq!(engine.stats().requests, 3);

    let ended = engine.serve_command(&CommandRequest::new(1, SessionCommand::End));
    assert!(ended.outcome.is_ok());
    assert_eq!(engine.stats().commands.ended, 1);
    assert_eq!(engine.stats().commands.total(), 1);
}
