//! Wire-protocol round-trip suite: every [`EngineRequest`] and
//! [`EngineResponse`] variant must survive JSON encode → decode
//! **bit-identically** — floats by shortest round-trip formatting,
//! durations as exact `{secs, nanos}` pairs, errors with their full typed
//! payload. A response relayed through any number of JSON hops must be the
//! response the engine produced.
//!
//! Requests are randomized (vendored proptest: seeds derive from the test
//! name, so CI replays the same cases); responses are the engine's *real*
//! answers — every variant is produced by an actual `dispatch` call, then
//! round-tripped.

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineError, EngineRequest, EngineResponse,
    PackageRequest, ProtocolError, RequestEnvelope, ResponseEnvelope, SessionCommand,
    SessionSnapshot, PROTOCOL_VERSION,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

/// One engine, registered once, shared by every case: profile generation
/// needs its schema and the response tests need its real answers.
fn engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        let engine = Engine::new(EngineConfig::fast());
        engine.register_catalog(paris(11)).unwrap();
        engine
    })
}

fn profile_for(seed: u64) -> GroupProfile {
    let schema = engine().profile_schema("Paris").unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

fn package_request(session_id: u64, seed: u64, k: usize, budget: Option<f64>) -> PackageRequest {
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile: profile_for(seed),
        query: GroupQuery::new([1, 1, 2, 2], budget),
        config: BuildConfig::with_k(k.max(1)),
    }
}

fn roundtrip_request(request: &EngineRequest) -> EngineRequest {
    let json = serde_json::to_string(request).expect("requests serialize");
    serde_json::from_str(&json).expect("requests deserialize")
}

fn roundtrip_response(response: &EngineResponse) -> EngineResponse {
    let json = serde_json::to_string(response).expect("responses serialize");
    serde_json::from_str(&json).expect("responses deserialize")
}

/// Dispatches, round-trips the response, and asserts bit-identity.
fn dispatch_and_roundtrip(request: EngineRequest) -> EngineResponse {
    let response = engine().dispatch(request);
    assert_eq!(
        roundtrip_response(&response),
        response,
        "response must round-trip bit-identically"
    );
    response
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn build_and_batch_requests_roundtrip(
        session in 0u64..1000,
        seed in 0u64..50,
        k in 1usize..5,
        budget_kind in 0u8..3,
        n in 1usize..4,
    ) {
        let budget = match budget_kind {
            0 => None,
            1 => Some(250.0),
            _ => Some(333.33 + seed as f64 * 0.1),
        };
        let single = EngineRequest::Build {
            request: Box::new(package_request(session, seed, k, budget)),
        };
        prop_assert_eq!(roundtrip_request(&single), single);

        let batch = EngineRequest::Batch {
            requests: (0..n)
                .map(|i| package_request(session + i as u64, seed + i as u64, k, budget))
                .collect(),
        };
        prop_assert_eq!(roundtrip_request(&batch), batch);
    }

    #[test]
    fn command_requests_roundtrip(
        session in 0u64..1000,
        seed in 0u64..50,
        kind in 0u8..8,
        a in 0usize..10,
        b in 0u64..100,
        member in 0u64..4,
    ) {
        let command = match kind {
            0 => SessionCommand::build(
                "Paris",
                profile_for(seed),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
            1 => {
                let schema = engine().profile_schema("Paris").unwrap();
                let group = SyntheticGroupGenerator::new(schema, seed)
                    .group(GroupSize::Medium, Uniformity::Uniform);
                SessionCommand::build_for_group(
                    "Paris",
                    group,
                    ConsensusMethod::pairwise_disagreement(),
                    GroupQuery::new([2, 1, 1, 1], Some(100.0 + b as f64)),
                    BuildConfig::with_k(3),
                )
            }
            2 => SessionCommand::rebuild(
                "Paris",
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
            3 => SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: a,
                poi: PoiId(b),
            }),
            4 => SessionCommand::Customize(CustomizationOp::Generate {
                rectangle: Rectangle::new(
                    2.35 - b as f64 * 0.001,
                    48.85 + a as f64 * 0.001,
                    0.01,
                    0.01,
                ),
            }),
            5 => SessionCommand::Refine(if a % 2 == 0 {
                RefinementStrategy::Batch
            } else {
                RefinementStrategy::Individual
            }),
            6 => SessionCommand::SuggestReplacement {
                ci_index: a,
                poi: PoiId(b),
            },
            _ => SessionCommand::End,
        };
        let request = EngineRequest::Command {
            request: if member == 0 {
                CommandRequest::new(session, command)
            } else {
                CommandRequest::from_member(session, member, command)
            },
        };
        prop_assert_eq!(roundtrip_request(&request), request);

        let batch = EngineRequest::CommandBatch {
            requests: vec![
                CommandRequest::new(session, SessionCommand::End),
                CommandRequest::from_member(
                    session + 1,
                    member,
                    SessionCommand::Refine(RefinementStrategy::Batch),
                ),
            ],
        };
        prop_assert_eq!(roundtrip_request(&batch), batch);
    }

    #[test]
    fn synthetic_error_responses_roundtrip(
        session in 0u64..1000,
        code_pick in 0u8..5,
        micros in 0u64..5_000_000,
    ) {
        use std::time::Duration;
        let error = match code_pick {
            0 => EngineError::UnknownCity(format!("city-{session}")),
            1 => EngineError::UnknownSession(session),
            2 => EngineError::InvalidCommand("no package yet".to_string()),
            3 => EngineError::Build(grouptravel::GroupTravelError::ZeroCompositeItems),
            _ => EngineError::Build(grouptravel::GroupTravelError::InsufficientCategory {
                category: Category::Restaurant,
                required: 5,
                available: 2,
            }),
        };
        let response = EngineResponse::Package {
            response: grouptravel_engine::PackageResponse {
                session_id: session,
                city: "Paris".to_string(),
                outcome: Err(error),
                latency: Duration::from_micros(micros) + Duration::from_nanos(session % 1000),
                clustering_cache_hit: session % 2 == 0,
            },
        };
        prop_assert_eq!(roundtrip_response(&response), response);
    }
}

#[test]
fn every_request_variant_roundtrips() {
    let requests = [
        EngineRequest::Build {
            request: Box::new(package_request(1, 1, 5, None)),
        },
        EngineRequest::Batch {
            requests: vec![package_request(1, 1, 5, Some(400.0))],
        },
        EngineRequest::Command {
            request: CommandRequest::new(1, SessionCommand::End),
        },
        EngineRequest::CommandBatch {
            requests: vec![CommandRequest::new(1, SessionCommand::End)],
        },
        EngineRequest::RegisterCatalog {
            catalog: Box::new(paris(17)),
        },
        EngineRequest::ExportSession { session_id: 42 },
        EngineRequest::ImportSession {
            snapshot: Box::new(SessionSnapshot {
                v: 1,
                session_id: 42,
                state: sample_session_state(),
            }),
        },
        EngineRequest::Stats,
        EngineRequest::Trace {
            request: Box::new(EngineRequest::Build {
                request: Box::new(package_request(2, 2, 4, Some(150.0))),
            }),
        },
    ];
    for request in requests {
        assert_eq!(
            roundtrip_request(&request),
            request,
            "request kind `{}` must round-trip",
            request.kind()
        );
    }
}

/// A session state with every optional field populated, produced by a real
/// interactive session.
fn sample_session_state() -> grouptravel_engine::SessionState {
    let engine = Engine::new(EngineConfig::fast());
    engine.register_catalog(paris(11)).unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 3).group(GroupSize::Small, Uniformity::Uniform);
    let built = engine.serve_command(&CommandRequest::new(
        9,
        SessionCommand::build_for_group(
            "Paris",
            group.clone(),
            ConsensusMethod::pairwise_disagreement(),
            GroupQuery::paper_default(),
            BuildConfig::default(),
        ),
    ));
    let package = built.package().expect("build succeeds").clone();
    let victim = package.get(0).unwrap().poi_ids()[0];
    engine.serve_command(&CommandRequest::from_member(
        9,
        group.members()[0].user_id,
        SessionCommand::Customize(CustomizationOp::Remove {
            ci_index: 0,
            poi: victim,
        }),
    ));
    engine.sessions().snapshot(9).expect("session exists")
}

#[test]
fn every_response_variant_roundtrips_from_real_dispatches() {
    // Ordered so the engine accumulates state: build → commands → export →
    // import → stats. Each dispatch's response round-trips bit-identically.
    let ok = dispatch_and_roundtrip(EngineRequest::Build {
        request: Box::new(package_request(501, 5, 5, None)),
    });
    assert!(matches!(ok, EngineResponse::Package { ref response } if response.outcome.is_ok()));

    // A failing build (unknown city) — the typed error rides the response.
    let failed = dispatch_and_roundtrip(EngineRequest::Build {
        request: Box::new(PackageRequest {
            city: "Atlantis".to_string(),
            ..package_request(502, 5, 5, None)
        }),
    });
    match failed {
        EngineResponse::Package { response } => {
            assert_eq!(
                response.outcome.unwrap_err(),
                EngineError::UnknownCity("Atlantis".to_string())
            );
        }
        other => panic!("expected Package, got {}", other.kind()),
    }

    dispatch_and_roundtrip(EngineRequest::Batch {
        requests: vec![
            package_request(503, 6, 4, Some(500.0)),
            package_request(504, 7, 3, None),
        ],
    });

    // Interactive command variants: build, customize, suggest, refine, end.
    let built = dispatch_and_roundtrip(EngineRequest::Command {
        request: CommandRequest::new(
            600,
            SessionCommand::build(
                "Paris",
                profile_for(8),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ),
    });
    let package = match built {
        EngineResponse::Command { response } => response.package().unwrap().clone(),
        other => panic!("expected Command, got {}", other.kind()),
    };
    let victim = package.get(0).unwrap().poi_ids()[0];
    dispatch_and_roundtrip(EngineRequest::CommandBatch {
        requests: vec![
            CommandRequest::from_member(
                600,
                1,
                SessionCommand::Customize(CustomizationOp::Remove {
                    ci_index: 0,
                    poi: victim,
                }),
            ),
            CommandRequest::new(
                600,
                SessionCommand::SuggestReplacement {
                    ci_index: 1,
                    poi: package.get(1).unwrap().poi_ids()[0],
                },
            ),
            CommandRequest::new(600, SessionCommand::Refine(RefinementStrategy::Batch)),
        ],
    });

    // Export the live session, end it, and re-import the snapshot.
    let exported = dispatch_and_roundtrip(EngineRequest::ExportSession { session_id: 600 });
    let snapshot = match exported {
        EngineResponse::Session { outcome } => outcome.unwrap(),
        other => panic!("expected Session, got {}", other.kind()),
    };
    dispatch_and_roundtrip(EngineRequest::Command {
        request: CommandRequest::new(600, SessionCommand::End),
    });
    let imported = dispatch_and_roundtrip(EngineRequest::ImportSession { snapshot });
    match imported {
        EngineResponse::Imported { outcome } => {
            let info = outcome.unwrap();
            assert_eq!(info.session_id, 600);
            assert_eq!(info.city, "Paris");
            assert!(!info.replaced, "End freed the slot before the import");
        }
        other => panic!("expected Imported, got {}", other.kind()),
    }

    // Export of a session that never existed: the typed error round-trips.
    let missing = dispatch_and_roundtrip(EngineRequest::ExportSession { session_id: 9999 });
    match missing {
        EngineResponse::Session { outcome } => {
            assert_eq!(outcome.unwrap_err(), EngineError::UnknownSession(9999));
        }
        other => panic!("expected Session, got {}", other.kind()),
    }

    // Catalog registration over the wire (serde-cold catalog). A city the
    // shared engine does not serve elsewhere: tests in this binary run
    // concurrently, and replacing Paris mid-run would yank the catalog out
    // from under them.
    let registered = dispatch_and_roundtrip(EngineRequest::RegisterCatalog {
        catalog: Box::new(
            SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::small(23))
                .generate(),
        ),
    });
    match registered {
        EngineResponse::Registered { outcome } => {
            let info = outcome.unwrap();
            assert_eq!(info.city, "Barcelona");
        }
        other => panic!("expected Registered, got {}", other.kind()),
    }

    dispatch_and_roundtrip(EngineRequest::Stats);

    // A traced dispatch: the inner response rides inside `Traced` next to
    // the stage timeline, and the whole thing round-trips bit-identically.
    let traced = dispatch_and_roundtrip(EngineRequest::Trace {
        request: Box::new(EngineRequest::Build {
            request: Box::new(package_request(505, 9, 4, None)),
        }),
    });
    match traced {
        EngineResponse::Traced { response, trace } => {
            assert!(
                matches!(*response, EngineResponse::Package { ref response } if response.outcome.is_ok())
            );
            assert!(
                trace.stages.iter().any(|s| s.stage == "dispatch.build"),
                "trace must include the dispatch stage, got {:?}",
                trace.stages
            );
        }
        other => panic!("expected Traced, got {}", other.kind()),
    }

    // The protocol-level error variant.
    let error = EngineResponse::Error {
        error: ProtocolError::unsupported_version(99),
    };
    assert_eq!(roundtrip_response(&error), error);
}

#[test]
fn envelopes_roundtrip_and_version_is_enforced() {
    let envelope = RequestEnvelope::new(EngineRequest::Stats);
    let json = serde_json::to_string(&envelope).unwrap();
    let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
    assert_eq!(back, envelope);

    let answered = engine().dispatch_envelope(back);
    assert_eq!(answered.v, PROTOCOL_VERSION);
    assert!(matches!(answered.response, EngineResponse::Stats { .. }));
    let json = serde_json::to_string(&answered).unwrap();
    let back: ResponseEnvelope = serde_json::from_str(&json).unwrap();
    assert_eq!(back, answered);

    // A wrong version never reaches dispatch.
    let rejected = engine().dispatch_envelope(RequestEnvelope {
        v: PROTOCOL_VERSION + 1,
        request: EngineRequest::Stats,
    });
    let error = rejected
        .response
        .protocol_error()
        .expect("wrong versions are protocol errors");
    assert_eq!(error.code, ProtocolError::UNSUPPORTED_VERSION);
}
