//! Design-choice ablations.
//!
//! DESIGN.md calls out three design choices for ablation:
//!
//! * the equirectangular distance approximation (§3.2 claims a 30× speed-up
//!   at only 0.1% precision loss — the speed half is measured by the
//!   `ablation_distance` Criterion bench, the precision half here);
//! * the consensus weight `w1` (how much preference vs. agreement matters);
//! * the number of composite items `k` and the fuzzifier (sensitivity of
//!   representativity / cohesiveness).

use crate::common::SyntheticWorld;
use crate::report::render_table;
use grouptravel::prelude::*;
use grouptravel::ObjectiveWeights;
use grouptravel_geo::{equirectangular_km, haversine_km};
use grouptravel_profile::consensus::{DisagreementFunction, PreferenceFunction};
use serde::{Deserialize, Serialize};

/// Precision of the equirectangular approximation over a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistancePrecision {
    /// Number of POI pairs compared.
    pub pairs: usize,
    /// Mean relative error against Haversine.
    pub mean_relative_error: f64,
    /// Maximum relative error against Haversine.
    pub max_relative_error: f64,
}

/// Measures the equirectangular-vs-Haversine precision over every POI pair of
/// the world's catalog (the paper claims ≤ 0.1% loss within a city).
#[must_use]
pub fn distance_precision(world: &SyntheticWorld) -> DistancePrecision {
    let locations = world.session.catalog().locations();
    let mut pairs = 0usize;
    let mut total_err = 0.0f64;
    let mut max_err = 0.0f64;
    for (i, a) in locations.iter().enumerate() {
        for b in &locations[i + 1..] {
            let h = haversine_km(a, b);
            if h < 1e-6 {
                continue;
            }
            let e = equirectangular_km(a, b);
            let rel = (h - e).abs() / h;
            total_err += rel;
            if rel > max_err {
                max_err = rel;
            }
            pairs += 1;
        }
    }
    DistancePrecision {
        pairs,
        mean_relative_error: if pairs == 0 {
            0.0
        } else {
            total_err / pairs as f64
        },
        max_relative_error: max_err,
    }
}

/// One point of the consensus-weight sweep: the personalization achieved by a
/// package built from a profile aggregated with weight `w1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeightSweepPoint {
    /// The preference weight `w1` (so `w2 = 1 − w1` weighs agreement).
    pub w1: f64,
    /// Personalization (Eq. 4) of the resulting package.
    pub personalization: f64,
    /// Cohesiveness (Eq. 3) of the resulting package.
    pub cohesiveness: f64,
}

/// Sweeps the consensus weight `w1` from 0 to 1 for a non-uniform group and
/// reports how the built package's personalization and cohesiveness respond.
#[must_use]
pub fn consensus_weight_sweep(world: &SyntheticWorld, steps: usize) -> Vec<WeightSweepPoint> {
    let mut generator = world.group_generator(0xab1a);
    let group = generator.group(GroupSize::Medium, Uniformity::NonUniform);
    let query = GroupQuery::paper_default();
    let config = world.build_config(world.scale.seed ^ 0xab1a);

    (0..=steps)
        .map(|step| {
            let w1 = step as f64 / steps.max(1) as f64;
            let method = ConsensusMethod::custom(
                PreferenceFunction::Average,
                Some(DisagreementFunction::AveragePairwise),
                w1,
            );
            let profile = group.profile(method);
            let package = world
                .session
                .build_package(&profile, &query, &config)
                .expect("sweep package");
            let dims = world.session.measure(&package, &profile);
            WeightSweepPoint {
                w1,
                personalization: dims.personalization,
                cohesiveness: dims.cohesiveness,
            }
        })
        .collect()
}

/// One point of the `k` sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KSweepPoint {
    /// Number of composite items.
    pub k: usize,
    /// Representativity (Eq. 2) of the resulting package.
    pub representativity: f64,
    /// Cohesiveness (Eq. 3) of the resulting package.
    pub cohesiveness: f64,
}

/// Sweeps the number of composite items `k` and reports representativity and
/// cohesiveness (more composite items cover the city better but each day gets
/// looser as clusters shrink in separation).
#[must_use]
pub fn k_sweep(world: &SyntheticWorld, ks: &[usize]) -> Vec<KSweepPoint> {
    let mut generator = world.group_generator(0x6b);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());
    let query = GroupQuery::paper_default();

    ks.iter()
        .map(|&k| {
            let config = BuildConfig {
                k,
                weights: ObjectiveWeights::default(),
                seed: world.scale.seed ^ 0x6b,
                ..BuildConfig::default()
            };
            let package = world
                .session
                .build_package(&profile, &query, &config)
                .expect("k-sweep package");
            let dims = world.session.measure(&package, &profile);
            KSweepPoint {
                k,
                representativity: dims.representativity,
                cohesiveness: dims.cohesiveness,
            }
        })
        .collect()
}

/// Renders all ablations as text.
#[must_use]
pub fn render(world: &SyntheticWorld) -> String {
    let precision = distance_precision(world);
    let mut out = format!(
        "Distance approximation over {} POI pairs: mean relative error {:.5}%, max {:.5}%\n\n",
        precision.pairs,
        precision.mean_relative_error * 100.0,
        precision.max_relative_error * 100.0
    );

    let sweep = consensus_weight_sweep(world, 5);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.w1),
                format!("{:.3}", p.personalization),
                format!("{:.2}", p.cohesiveness),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Consensus weight sweep (non-uniform medium group)",
        &["w1", "personalization", "cohesiveness"],
        &rows,
    ));
    out.push('\n');

    let ks = k_sweep(world, &[2, 3, 5, 7, 10]);
    let rows: Vec<Vec<String>> = ks
        .iter()
        .map(|p| {
            vec![
                p.k.to_string(),
                format!("{:.2}", p.representativity),
                format!("{:.2}", p.cohesiveness),
            ]
        })
        .collect();
    out.push_str(&render_table(
        "Number of composite items (k) sweep",
        &["k", "representativity", "cohesiveness"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn equirectangular_precision_is_within_the_papers_claim() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let precision = distance_precision(&world);
        assert!(precision.pairs > 100);
        assert!(
            precision.max_relative_error < 0.001,
            "max relative error {} exceeds 0.1%",
            precision.max_relative_error
        );
    }

    #[test]
    fn weight_sweep_spans_zero_to_one() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let sweep = consensus_weight_sweep(&world, 4);
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep.first().unwrap().w1, 0.0);
        assert_eq!(sweep.last().unwrap().w1, 1.0);
        for p in &sweep {
            assert!(p.personalization >= 0.0);
        }
    }

    #[test]
    fn representativity_grows_with_k() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let points = k_sweep(&world, &[2, 8]);
        assert!(points[1].representativity > points[0].representativity);
    }

    #[test]
    fn render_mentions_every_ablation() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let out = render(&world);
        assert!(out.contains("Distance approximation"));
        assert!(out.contains("Consensus weight sweep"));
        assert!(out.contains("(k) sweep"));
    }
}
