//! §4.3 — statistical validation: ANOVA significance and Pearson
//! correlations.
//!
//! The paper validates every synthetic-experiment observation with one-way
//! ANOVA (`F = MSB/MSE`, `p = 0.05`) and reports Pearson correlation
//! coefficients between group size and the optimization dimensions for
//! uniform groups: cohesiveness correlates positively with size (+0.98,
//! +0.73, +0.73, +0.99 across methods) and personalization negatively
//! (−0.99, −0.99, −0.89, −0.89).

use crate::common::SyntheticWorld;
use crate::report::render_table;
use crate::table2::{collect_records, dimension_scalers, normalize_dims, GroupRecord};
use grouptravel::prelude::*;
use grouptravel_stats::{one_way_anova, pearson_correlation, AnovaResult};
use serde::{Deserialize, Serialize};

/// ANOVA over one optimization dimension, grouping observations by consensus
/// method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionAnova {
    /// Dimension name ("representativity", "cohesiveness",
    /// "personalization").
    pub dimension: String,
    /// The ANOVA result (None if the data was degenerate).
    pub result: Option<AnovaResult>,
}

/// PCC between group size and one dimension, for uniform groups, per method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeCorrelation {
    /// Consensus method name.
    pub method: String,
    /// Dimension name.
    pub dimension: String,
    /// Pearson correlation coefficient (None if undefined).
    pub pcc: Option<f64>,
}

/// The full analysis report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// One ANOVA per dimension (grouped by consensus method).
    pub anovas: Vec<DimensionAnova>,
    /// PCC of size vs cohesiveness / personalization for uniform groups.
    pub correlations: Vec<SizeCorrelation>,
}

impl Analysis {
    /// The ANOVA for one dimension.
    #[must_use]
    pub fn anova(&self, dimension: &str) -> Option<&AnovaResult> {
        self.anovas
            .iter()
            .find(|a| a.dimension == dimension)
            .and_then(|a| a.result.as_ref())
    }

    /// The PCC for one (method, dimension) pair.
    #[must_use]
    pub fn pcc(&self, method: &str, dimension: &str) -> Option<f64> {
        self.correlations
            .iter()
            .find(|c| c.method == method && c.dimension == dimension)
            .and_then(|c| c.pcc)
    }

    /// Renders the analysis as two small tables.
    #[must_use]
    pub fn render(&self) -> String {
        let anova_rows: Vec<Vec<String>> = self
            .anovas
            .iter()
            .map(|a| {
                vec![
                    a.dimension.clone(),
                    a.result.map_or("n/a".to_string(), |r| r.paper_notation()),
                    a.result.map_or("-".to_string(), |r| {
                        if r.is_significant(0.05) {
                            "significant (p < 0.05)".to_string()
                        } else {
                            "not significant".to_string()
                        }
                    }),
                ]
            })
            .collect();
        let mut out = render_table(
            "One-way ANOVA across consensus methods (per optimization dimension)",
            &["dimension", "F(dfB, dfW)", "verdict"],
            &anova_rows,
        );
        out.push('\n');
        let pcc_rows: Vec<Vec<String>> = self
            .correlations
            .iter()
            .map(|c| {
                vec![
                    c.method.clone(),
                    c.dimension.clone(),
                    c.pcc.map_or("n/a".to_string(), |v| format!("{v:+.2}")),
                ]
            })
            .collect();
        out.push_str(&render_table(
            "Pearson correlation between group size and dimension (uniform groups)",
            &["method", "dimension", "PCC"],
            &pcc_rows,
        ));
        out
    }
}

/// Builds the analysis from pre-collected records.
#[must_use]
pub fn from_records(records: &[GroupRecord]) -> Analysis {
    let scalers = dimension_scalers(records);
    let dims = ["representativity", "cohesiveness", "personalization"];

    // ANOVA: group normalized observations by consensus method.
    let mut anovas = Vec::new();
    for (dim_idx, dim_name) in dims.iter().enumerate() {
        let groups: Vec<Vec<f64>> = ConsensusMethod::paper_variants()
            .iter()
            .map(|method| {
                records
                    .iter()
                    .filter(|r| r.method == method.name())
                    .map(|r| normalize_dims(&r.dims, &scalers)[dim_idx])
                    .collect()
            })
            .collect();
        anovas.push(DimensionAnova {
            dimension: (*dim_name).to_string(),
            result: one_way_anova(&groups),
        });
    }

    // PCC between group size and cohesiveness / personalization, uniform
    // groups only, per method (the paper's §4.3.3 numbers).
    let mut correlations = Vec::new();
    for method in ConsensusMethod::paper_variants() {
        for (dim_idx, dim_name) in dims.iter().enumerate().skip(1) {
            let matching: Vec<&GroupRecord> = records
                .iter()
                .filter(|r| r.uniformity == Uniformity::Uniform && r.method == method.name())
                .collect();
            let sizes: Vec<f64> = matching
                .iter()
                .map(|r| r.size.member_count() as f64)
                .collect();
            let values: Vec<f64> = matching
                .iter()
                .map(|r| normalize_dims(&r.dims, &scalers)[dim_idx])
                .collect();
            correlations.push(SizeCorrelation {
                method: method.name().to_string(),
                dimension: (*dim_name).to_string(),
                pcc: pearson_correlation(&sizes, &values),
            });
        }
    }

    Analysis {
        anovas,
        correlations,
    }
}

/// Runs the whole analysis (collecting fresh records).
#[must_use]
pub fn run(world: &SyntheticWorld) -> Analysis {
    from_records(&collect_records(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn analysis_produces_anovas_and_correlations() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let records = collect_records(&world);
        let analysis = from_records(&records);
        assert_eq!(analysis.anovas.len(), 3);
        assert_eq!(analysis.correlations.len(), 4 * 2);
        for c in &analysis.correlations {
            if let Some(pcc) = c.pcc {
                assert!((-1.0..=1.0).contains(&pcc));
            }
        }
        let out = analysis.render();
        assert!(out.contains("ANOVA"));
        assert!(out.contains("Pearson"));
        // Accessors work.
        assert!(analysis.pcc("average preference", "cohesiveness").is_some());
    }
}
