//! Runs the design-choice ablations (distance precision, consensus weight,
//! number of composite items).
//!
//! Usage: `ablation [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{ablation, common::SyntheticWorld, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = SyntheticWorld::build(scale);
    println!("{}", ablation::render(&world));
}
