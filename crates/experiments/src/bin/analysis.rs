//! Runs the §4.3 statistical analysis (ANOVA + Pearson correlations).
//!
//! Usage: `analysis [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{analysis, common::SyntheticWorld, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = SyntheticWorld::build(scale);
    let report = analysis::run(&world);
    println!("{}", report.render());
}
