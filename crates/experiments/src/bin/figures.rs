//! Re-renders Figures 1-3 as text.
//!
//! Usage: `figures [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::SyntheticWorld, figures, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = SyntheticWorld::build(scale);
    println!("{}\n", figures::figure1(&world));
    println!("{}\n", figures::figure2(&world));
    println!("{}", figures::figure3(&world));
}
