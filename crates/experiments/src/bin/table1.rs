//! Prints Table 1 (sample POIs in Paris).

fn main() {
    println!("{}", grouptravel_experiments::table1::render());
}
