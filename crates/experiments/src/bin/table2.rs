//! Reproduces Table 2 (synthetic experiment, optimization dimensions).
//!
//! Usage: `table2 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::SyntheticWorld, table2, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = SyntheticWorld::build(scale);
    let table = table2::run(&world);
    println!("{}", table.render());
}
