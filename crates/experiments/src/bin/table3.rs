//! Reproduces Table 3 (median-user agreement).
//!
//! Usage: `table3 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::SyntheticWorld, table3, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = SyntheticWorld::build(scale);
    let table = table3::run(&world);
    println!("{}", table.render());
}
