//! Reproduces Table 4 (user study, independent evaluation).
//!
//! Usage: `table4 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::UserStudyWorld, table4, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = UserStudyWorld::build(scale);
    let table = table4::run(&world);
    println!("{}", table.render());
    println!(
        "participants filtered by the attention check: {}",
        table.filtered_out
    );
}
