//! Reproduces Table 5 (user study, comparative evaluation).
//!
//! Usage: `table5 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::UserStudyWorld, table5, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = UserStudyWorld::build(scale);
    let table = table5::run(&world);
    println!("{}", table.render());
    println!(
        "participants filtered by the attention check: {}",
        table.filtered_out
    );
}
