//! Reproduces Table 6 (customized packages, independent evaluation).
//!
//! Usage: `table6 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::UserStudyWorld, table6, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = UserStudyWorld::build(scale);
    let table = table6::run(&world);
    println!("{}", table.render());
}
