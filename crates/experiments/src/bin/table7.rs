//! Reproduces Table 7 (customized packages, comparative evaluation).
//!
//! Usage: `table7 [paper|quick|smoke]` (default: quick).

use grouptravel_experiments::{common::UserStudyWorld, table7, ExperimentScale};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .map_or_else(ExperimentScale::quick, |s| ExperimentScale::from_name(&s));
    let world = UserStudyWorld::build(scale);
    let table = table7::run(&world);
    println!("{}", table.render());
}
