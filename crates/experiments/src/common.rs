//! Shared experiment infrastructure: scales, sessions, and worlds.

use grouptravel::prelude::*;
use grouptravel_study::{CrowdPlatform, RecruitmentConfig, StudyPopulation};
use grouptravel_topics::LdaConfig;
use serde::{Deserialize, Serialize};

/// How big to run an experiment. The paper's full scale is expensive but
/// feasible on a laptop; the smaller scales keep tests and CI fast while
/// preserving every qualitative claim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Synthetic experiment: groups generated per (uniformity, size) cell
    /// (100 in the paper).
    pub groups_per_cell: usize,
    /// POIs per category in the synthetic city.
    pub poi_counts: [usize; 4],
    /// Gibbs sweeps for the LDA topic models.
    pub lda_iterations: usize,
    /// How many members of a large group provide ratings (30 in the paper).
    pub large_group_sample: usize,
    /// Crowd recruits per platform for the user study (2000/1000 in the
    /// paper), expressed as (Figure-Eight, Mechanical Turk).
    pub recruits: (usize, usize),
    /// User-study groups generated per (uniformity, size) cell (5 uniform /
    /// 3 non-uniform in the paper; a single count keeps the harness simple).
    pub study_groups_per_cell: usize,
    /// Master randomness seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The paper's scale.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            groups_per_cell: 100,
            poi_counts: [120, 80, 200, 200],
            lda_iterations: 120,
            large_group_sample: 30,
            recruits: (2000, 1000),
            study_groups_per_cell: 5,
            seed: 42,
        }
    }

    /// A scale that finishes in a few seconds; used by the benches and the
    /// example binaries.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            groups_per_cell: 10,
            poi_counts: [40, 30, 80, 80],
            lda_iterations: 50,
            large_group_sample: 10,
            recruits: (120, 60),
            study_groups_per_cell: 2,
            seed: 42,
        }
    }

    /// The smallest useful scale; used by unit and integration tests.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            groups_per_cell: 3,
            poi_counts: [20, 15, 40, 40],
            lda_iterations: 30,
            large_group_sample: 5,
            recruits: (40, 20),
            study_groups_per_cell: 1,
            seed: 42,
        }
    }

    /// Resolves a scale name from a CLI argument (`paper`, `quick`, `smoke`);
    /// unknown names fall back to `quick`.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        match name {
            "paper" | "full" => Self::paper(),
            "smoke" | "test" => Self::smoke(),
            _ => Self::quick(),
        }
    }

    /// The synthetic-city configuration induced by this scale.
    #[must_use]
    pub fn city_config(&self) -> SyntheticCityConfig {
        SyntheticCityConfig {
            counts: self.poi_counts,
            seed: self.seed,
            ..SyntheticCityConfig::default()
        }
    }

    /// The session configuration induced by this scale.
    #[must_use]
    pub fn session_config(&self) -> SessionConfig {
        SessionConfig {
            lda: LdaConfig {
                iterations: self.lda_iterations,
                seed: self.seed,
                ..LdaConfig::default()
            },
            ..SessionConfig::default()
        }
    }
}

impl Default for ExperimentScale {
    fn default() -> Self {
        Self::quick()
    }
}

/// Everything the synthetic experiments (Tables 2–3, analysis, ablations)
/// need: a Paris session and a group generator.
pub struct SyntheticWorld {
    /// The Paris session.
    pub session: GroupTravelSession,
    /// The scale this world was built at.
    pub scale: ExperimentScale,
}

impl SyntheticWorld {
    /// Builds the world: generates the synthetic Paris catalog and trains the
    /// topic models.
    #[must_use]
    pub fn build(scale: ExperimentScale) -> Self {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), scale.city_config()).generate();
        let session = GroupTravelSession::new(catalog, scale.session_config())
            .expect("the synthetic Paris catalog is never empty");
        Self { session, scale }
    }

    /// A fresh group generator seeded from the scale.
    #[must_use]
    pub fn group_generator(&self, salt: u64) -> SyntheticGroupGenerator {
        SyntheticGroupGenerator::new(self.session.profile_schema(), self.scale.seed ^ salt)
    }

    /// The default build configuration for this world (k = 5 composite
    /// items, the paper's synthetic objective weights).
    #[must_use]
    pub fn build_config(&self, seed: u64) -> BuildConfig {
        BuildConfig {
            weights: ObjectiveWeights::paper_synthetic(seed),
            seed,
            ..BuildConfig::default()
        }
    }
}

/// Everything the user-study experiments (Tables 4–7) need: the Paris and
/// Barcelona sessions (sharing one item vectorizer so profiles transfer), and
/// the recruited worker population.
pub struct UserStudyWorld {
    /// The Paris session (packages are built and customized here).
    pub paris: GroupTravelSession,
    /// The Barcelona session (refined profiles are tested here).
    pub barcelona: GroupTravelSession,
    /// The recruited, pruned worker population.
    pub population: StudyPopulation,
    /// The crowd platform (for forming further groups).
    pub platform: CrowdPlatform,
    /// The scale this world was built at.
    pub scale: ExperimentScale,
}

impl UserStudyWorld {
    /// Builds the world: both cities, the shared vectorizer, and the
    /// recruited population.
    #[must_use]
    pub fn build(scale: ExperimentScale) -> Self {
        let paris_catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), scale.city_config()).generate();
        let paris = GroupTravelSession::new(paris_catalog, scale.session_config())
            .expect("the synthetic Paris catalog is never empty");

        let barcelona_catalog =
            SyntheticCityGenerator::new(CitySpec::barcelona(), scale.city_config()).generate();
        let barcelona = GroupTravelSession::with_vectorizer(
            barcelona_catalog,
            paris.vectorizer().clone(),
            paris.metric(),
        )
        .expect("the synthetic Barcelona catalog is never empty");

        let platform = CrowdPlatform::new(
            paris.profile_schema(),
            RecruitmentConfig {
                figure_eight: scale.recruits.0,
                mechanical_turk: scale.recruits.1,
                seed: scale.seed,
                ..RecruitmentConfig::default()
            },
        );
        let population = platform.recruit();

        Self {
            paris,
            barcelona,
            population,
            platform,
            scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        let paper = ExperimentScale::paper();
        let quick = ExperimentScale::quick();
        let smoke = ExperimentScale::smoke();
        assert!(paper.groups_per_cell > quick.groups_per_cell);
        assert!(quick.groups_per_cell > smoke.groups_per_cell);
        assert!(paper.recruits.0 > quick.recruits.0);
    }

    #[test]
    fn scale_resolution_from_names() {
        assert_eq!(
            ExperimentScale::from_name("paper"),
            ExperimentScale::paper()
        );
        assert_eq!(
            ExperimentScale::from_name("smoke"),
            ExperimentScale::smoke()
        );
        assert_eq!(
            ExperimentScale::from_name("anything"),
            ExperimentScale::quick()
        );
    }

    #[test]
    fn synthetic_world_builds_and_produces_packages() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let mut gen = world.group_generator(1);
        let group = gen.group(GroupSize::Small, Uniformity::Uniform);
        let profile = group.profile(ConsensusMethod::average_preference());
        let package = world
            .session
            .build_package(
                &profile,
                &GroupQuery::paper_default(),
                &world.build_config(1),
            )
            .unwrap();
        assert_eq!(package.len(), 5);
    }

    #[test]
    fn user_study_world_shares_the_profile_schema_across_cities() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        assert_eq!(
            world.paris.profile_schema(),
            world.barcelona.profile_schema()
        );
        assert!(world.population.len() > 20);
        assert_eq!(world.barcelona.catalog().city(), "Barcelona");
    }
}
