//! Figures 1–3 — the paper's illustrative figures, re-rendered as text.
//!
//! * **Figure 1** shows a 5-day Paris package for the query
//!   ⟨1 acco, 1 trans, 1 rest, 3 attr, $100⟩.
//! * **Figure 2** shows the framework flow: individual profiles → consensus →
//!   group profile → package → customization → refined profile.
//! * **Figure 3** shows the customization operators on the Paris map.

use crate::common::SyntheticWorld;
use grouptravel::prelude::*;
use grouptravel::{
    refine_batch, CustomizationOp, MemberInteractions, ObjectiveWeights, TravelPackage,
};
use grouptravel_dataset::Category;

/// Renders one package as a day-by-day listing (the textual equivalent of the
/// map in Figure 1).
#[must_use]
pub fn render_package(package: &TravelPackage, catalog: &PoiCatalog) -> String {
    let mut out = String::new();
    for (day, ci) in package.composite_items().iter().enumerate() {
        out.push_str(&format!(
            "DAY {} (cost {:.2})\n",
            day + 1,
            ci.total_cost(catalog)
        ));
        for poi in ci.resolve(catalog) {
            let marker = match poi.category {
                Category::Accommodation => 'A',
                Category::Transportation => 'T',
                Category::Restaurant => 'R',
                Category::Attraction => 'H',
            };
            out.push_str(&format!(
                "  [{marker}] {} ({}, {})\n",
                poi.name, poi.poi_type, poi.location
            ));
        }
    }
    out
}

/// Figure 1: builds and renders the 5-day Paris package of the introduction.
#[must_use]
pub fn figure1(world: &SyntheticWorld) -> String {
    let mut generator = world.group_generator(0xf1);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());
    // The introduction's example query carries a $100 daily budget; the
    // synthetic cost scale (log check-ins) tops out around 10 per POI, so the
    // budget is satisfiable exactly as in the paper's example.
    let query = GroupQuery::figure1();
    let package = world
        .session
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("figure 1 package");
    format!(
        "Figure 1: A 5-day travel package in Paris for the query {query}\n\n{}",
        render_package(&package, world.session.catalog())
    )
}

/// Figure 2: walks the full framework flow once and narrates each step.
#[must_use]
pub fn figure2(world: &SyntheticWorld) -> String {
    let mut out = String::from("Figure 2: GroupTravel framework flow\n");
    let mut generator = world.group_generator(0xf2);
    let group = generator.group(GroupSize::Small, Uniformity::NonUniform);
    out.push_str(&format!(
        "1. travel group of {} members (uniformity {:.2})\n",
        group.size(),
        group.uniformity()
    ));
    let method = ConsensusMethod::disagreement_variance();
    let profile = group.profile(method);
    out.push_str(&format!("2. group profile via consensus '{method}'\n"));
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();
    let mut package = world
        .session
        .build_package(&profile, &query, &config)
        .expect("figure 2 package");
    out.push_str(&format!(
        "3. generated travel package with {} composite items for query {query}\n",
        package.len()
    ));

    // 4. the group customizes the package…
    let victim = package.get(0).expect("k >= 1").poi_ids()[0];
    let weights = ObjectiveWeights::default();
    let log = world
        .session
        .apply(
            &mut package,
            &CustomizationOp::Replace {
                ci_index: 0,
                poi: victim,
            },
            &profile,
            &query,
            &weights,
        )
        .expect("figure 2 replace");
    out.push_str(&format!(
        "4. customization: replaced {} with {}\n",
        victim,
        log.added
            .first()
            .map_or("nothing".to_string(), ToString::to_string)
    ));

    // 5. …and the interactions refine the group profile.
    let member = MemberInteractions::with_log(group.members()[0].user_id, log);
    let refined = refine_batch(
        &profile,
        &[member],
        world.session.catalog(),
        world.session.vectorizer(),
    );
    let moved = Category::ALL
        .iter()
        .any(|&c| refined.vector(c) != profile.vector(c));
    out.push_str(&format!(
        "5. refined group profile (changed: {moved}) feeds the next package\n"
    ));
    out
}

/// Figure 3: applies each customization operator once and narrates the
/// effect.
#[must_use]
pub fn figure3(world: &SyntheticWorld) -> String {
    let mut out = String::from("Figure 3: customization operators\n");
    let mut generator = world.group_generator(0xf3);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let profile = group.profile(ConsensusMethod::average_preference());
    let query = GroupQuery::paper_default();
    let weights = ObjectiveWeights::default();
    let mut package = world
        .session
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("figure 3 package");

    // REMOVE
    let remove_target = package.get(0).unwrap().poi_ids()[0];
    world
        .session
        .apply(
            &mut package,
            &CustomizationOp::Remove {
                ci_index: 0,
                poi: remove_target,
            },
            &profile,
            &query,
            &weights,
        )
        .expect("remove");
    out.push_str(&format!("  remove({remove_target}, CI 1)\n"));

    // ADD
    if let Some(candidate) = world
        .session
        .add_candidates(&package, 0, Category::Attraction, None, 1)
        .first()
    {
        let id = candidate.id;
        let name = candidate.name.clone();
        world
            .session
            .apply(
                &mut package,
                &CustomizationOp::Add {
                    ci_index: 0,
                    poi: id,
                },
                &profile,
                &query,
                &weights,
            )
            .expect("add");
        out.push_str(&format!("  add(\"{name}\", CI 1)\n"));
    }

    // REPLACE
    let replace_target = package.get(1).unwrap().poi_ids()[0];
    let log = world
        .session
        .apply(
            &mut package,
            &CustomizationOp::Replace {
                ci_index: 1,
                poi: replace_target,
            },
            &profile,
            &query,
            &weights,
        )
        .expect("replace");
    let replacement = log.added.first().copied();
    out.push_str(&format!(
        "  replace({replace_target}, CI 2) -> the system suggests {}\n",
        replacement.map_or("nothing".to_string(), |p| {
            world
                .session
                .catalog()
                .get(p)
                .map_or(p.to_string(), |poi| poi.name.clone())
        })
    ));

    // GENERATE
    let bbox = world.session.catalog().bounding_box().unwrap();
    let rect = Rectangle::new(
        bbox.min_lon + bbox.lon_span() * 0.25,
        bbox.max_lat - bbox.lat_span() * 0.25,
        bbox.lon_span() * 0.5,
        bbox.lat_span() * 0.5,
    );
    let before = package.len();
    world
        .session
        .apply(
            &mut package,
            &CustomizationOp::Generate { rectangle: rect },
            &profile,
            &query,
            &weights,
        )
        .expect("generate");
    out.push_str(&format!(
        "  generate(rectangle({:.3}, {:.3}, {:.3}, {:.3})) -> new CI {} with {} POIs\n",
        rect.x,
        rect.y,
        rect.w,
        rect.h,
        before + 1,
        package
            .get(before)
            .map_or(0, grouptravel::CompositeItem::len)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn figures_render_without_panicking_and_mention_their_subjects() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let f1 = figure1(&world);
        assert!(f1.contains("DAY 1"));
        assert!(f1.contains("DAY 5"));
        let f2 = figure2(&world);
        assert!(f2.contains("group profile"));
        assert!(f2.contains("refined group profile"));
        let f3 = figure3(&world);
        assert!(f3.contains("remove("));
        assert!(f3.contains("add("));
        assert!(f3.contains("replace("));
        assert!(f3.contains("generate("));
    }

    #[test]
    fn figure1_respects_the_100_dollar_budget() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let mut generator = world.group_generator(0xf1);
        let group = generator.group(GroupSize::Small, Uniformity::Uniform);
        let profile = group.profile(ConsensusMethod::pairwise_disagreement());
        let package = world
            .session
            .build_package(&profile, &GroupQuery::figure1(), &BuildConfig::default())
            .unwrap();
        for ci in package.composite_items() {
            assert!(ci.total_cost(world.session.catalog()) <= 100.0);
        }
    }
}
