//! Experiment drivers reproducing every table and figure of the GroupTravel
//! paper.
//!
//! Each module corresponds to one artefact of the evaluation section and
//! produces a structured result that (a) the binary of the same name renders
//! as the paper renders it, (b) the integration tests assert qualitative
//! claims against, and (c) the Criterion benches in `crates/bench` time.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — sample POIs in Paris |
//! | [`table2`] | Table 2 — synthetic experiment, optimization dimensions |
//! | [`table3`] | Table 3 — agreement between median users and groups |
//! | [`table4`] | Table 4 — user study, independent evaluation |
//! | [`table5`] | Table 5 — user study, comparative evaluation |
//! | [`table6`] | Table 6 — customized packages, independent evaluation |
//! | [`table7`] | Table 7 — customized packages, comparative evaluation |
//! | [`analysis`] | §4.3 — ANOVA significance and PCC correlations |
//! | [`ablation`] | §3.2 / §5 — distance approximation and design ablations |
//! | [`figures`] | Figures 1–3 — example package, framework flow, operators |
//!
//! The [`common::ExperimentScale`] knob switches between the paper's full
//! scale (100 groups per cell, 3000 simulated workers) and scaled-down
//! configurations for tests and quick runs.

pub mod ablation;
pub mod analysis;
pub mod common;
pub mod figures;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

pub use common::{ExperimentScale, SyntheticWorld, UserStudyWorld};
