//! Plain-text table rendering shared by the experiment binaries.

/// Renders a table with a header row and aligned columns, the way the paper's
/// tables read in a terminal.
#[must_use]
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (idx, cell) in row.iter().enumerate() {
            if idx >= widths.len() {
                widths.push(cell.len());
            } else if cell.len() > widths[idx] {
                widths[idx] = cell.len();
            }
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("| ");
        for (idx, cell) in cells.iter().enumerate() {
            let width = widths.get(idx).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<width$} | "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&render_row(&separator, &widths));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as the paper prints it: a percentage with no decimals
/// (e.g. `0.97` → `"97%"`).
#[must_use]
pub fn percent(value: f64) -> String {
    format!("{:.0}%", (value * 100.0).round())
}

/// Formats a 1–5 rating with two decimals, as in Tables 4 and 6.
#[must_use]
pub fn rating(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns_and_includes_every_row() {
        let out = render_table(
            "Table X",
            &["method", "R", "C"],
            &[
                vec!["average preference".into(), "100%".into(), "69%".into()],
                vec!["least misery".into(), "38%".into(), "0%".into()],
            ],
        );
        assert!(out.starts_with("Table X\n"));
        assert!(out.contains("average preference"));
        assert!(out.contains("least misery"));
        // Header separator present.
        assert!(out.contains("---"));
        // Five lines: title, header, separator, two rows.
        assert_eq!(out.trim_end().lines().count(), 5);
    }

    #[test]
    fn percent_and_rating_formatting() {
        assert_eq!(percent(0.974), "97%");
        assert_eq!(percent(0.0), "0%");
        assert_eq!(percent(1.0), "100%");
        assert_eq!(rating(3.456), "3.46");
    }
}
