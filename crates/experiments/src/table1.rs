//! Table 1 — sample Points Of Interest in Paris.
//!
//! The paper's Table 1 shows four example POIs (one per category) with their
//! full attribute set. This module renders the same rows from
//! [`grouptravel_dataset::sample::table1_pois`].

use crate::report::render_table;
use grouptravel_dataset::sample::table1_pois;
use grouptravel_dataset::Poi;

/// The rows of Table 1.
#[must_use]
pub fn rows() -> Vec<Poi> {
    table1_pois()
}

/// Renders Table 1 the way the paper prints it.
#[must_use]
pub fn render() -> String {
    let rows: Vec<Vec<String>> = rows()
        .iter()
        .map(|p| {
            vec![
                p.id.0.to_string(),
                p.name.clone(),
                p.category.to_string(),
                format!("({:.4}, {:.4})", p.location.lat, p.location.lon),
                p.poi_type.clone(),
                p.tags.join(" "),
                format!("{:.2}", p.cost),
            ]
        })
        .collect();
    render_table(
        "Table 1: Sample Points Of Interest in Paris",
        &["id", "name", "cat", "coordinates", "type", "tags", "cost"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_all_four_rows_and_costs() {
        let out = render();
        assert!(out.contains("Le Burgundy"));
        assert!(out.contains("The Bicycle Store"));
        assert!(out.contains("Les Arts Decoratifs"));
        assert!(out.contains("3.86"));
        assert!(out.contains("museum"));
    }

    #[test]
    fn rows_match_the_dataset_sample() {
        assert_eq!(rows().len(), 4);
    }
}
