//! Table 2 — synthetic experiment: optimization dimensions per group
//! characteristic and consensus method.
//!
//! §4.3: for every combination of group uniformity (uniform / non-uniform)
//! and size (small / medium / large), 100 random groups are generated; each
//! group's profile is computed with the four consensus methods; a 5-CI travel
//! package is built for every profile (default query, infinite budget,
//! γ = 1, α and β random); and representativity, cohesiveness and
//! personalization are measured, min–max-normalized over all observations,
//! and averaged per cell.
//!
//! The paper's headline observations, asserted by the integration tests:
//! disagreement-based consensus dominates all three dimensions, least misery
//! is the weakest, non-uniform groups yield more cohesive packages, and for
//! uniform groups cohesiveness rises (and personalization falls) with group
//! size.

use crate::common::SyntheticWorld;
use crate::report::{percent, render_table};
use grouptravel::prelude::*;
use grouptravel::OptimizationDimensions;
use grouptravel_stats::MinMaxScaler;
use serde::{Deserialize, Serialize};

/// One observation of the synthetic experiment: a (group, consensus method)
/// pair together with the measured raw dimensions of its package and of the
/// package built for the group's median user (used by Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupRecord {
    /// Uniformity class of the group.
    pub uniformity: Uniformity,
    /// Size class of the group.
    pub size: GroupSize,
    /// Consensus method name (one of the four paper variants).
    pub method: String,
    /// Group identifier.
    pub group_id: u64,
    /// Measured group uniformity (average pairwise cosine).
    pub measured_uniformity: f64,
    /// Raw (un-normalized) dimensions of the group's package.
    pub dims: OptimizationDimensions,
    /// Raw dimensions of the package built for the group's median user.
    pub median_dims: OptimizationDimensions,
}

/// One cell of Table 2: averaged normalized dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Cell {
    /// Uniformity class.
    pub uniformity: Uniformity,
    /// Size class.
    pub size: GroupSize,
    /// Consensus method name.
    pub method: String,
    /// Average normalized representativity.
    pub representativity: f64,
    /// Average normalized cohesiveness.
    pub cohesiveness: f64,
    /// Average normalized personalization.
    pub personalization: f64,
}

/// The full Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// One cell per (uniformity, size, method).
    pub cells: Vec<Table2Cell>,
}

impl Table2 {
    /// Looks a cell up.
    #[must_use]
    pub fn cell(
        &self,
        uniformity: Uniformity,
        size: GroupSize,
        method: &str,
    ) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .find(|c| c.uniformity == uniformity && c.size == size && c.method == method)
    }

    /// Average of one dimension over every cell of a method (used by the
    /// qualitative assertions: "disagreement-based methods perform best in
    /// terms of all optimization dimensions").
    #[must_use]
    pub fn method_average(&self, method: &str) -> OptimizationDimensions {
        let cells: Vec<&Table2Cell> = self.cells.iter().filter(|c| c.method == method).collect();
        if cells.is_empty() {
            return OptimizationDimensions::default();
        }
        let n = cells.len() as f64;
        OptimizationDimensions {
            representativity: cells.iter().map(|c| c.representativity).sum::<f64>() / n,
            cohesiveness: cells.iter().map(|c| c.cohesiveness).sum::<f64>() / n,
            personalization: cells.iter().map(|c| c.personalization).sum::<f64>() / n,
        }
    }

    /// Renders Table 2 the way the paper prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                let mut row = vec![uniformity.name().to_string(), size.name().to_string()];
                for method in ConsensusMethod::paper_variants() {
                    if let Some(cell) = self.cell(uniformity, size, method.name()) {
                        row.push(percent(cell.representativity));
                        row.push(percent(cell.cohesiveness));
                        row.push(percent(cell.personalization));
                    } else {
                        row.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
                    }
                }
                rows.push(row);
            }
        }
        render_table(
            "Table 2: Synthetic experiment for travel groups (R/C/P per consensus method)",
            &[
                "groups", "size", "AV R", "AV C", "AV P", "LM R", "LM C", "LM P", "AD R", "AD C",
                "AD P", "DV R", "DV C", "DV P",
            ],
            &rows,
        )
    }
}

/// Generates the groups, builds the packages, and measures the raw
/// dimensions — the expensive part shared by Tables 2, 3 and the statistical
/// analysis.
#[must_use]
pub fn collect_records(world: &SyntheticWorld) -> Vec<GroupRecord> {
    let query = GroupQuery::paper_default();
    let mut records = Vec::new();
    let mut generator = world.group_generator(0x7ab1e2);

    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            for idx in 0..world.scale.groups_per_cell {
                let group = generator.group(size, uniformity);
                let build_seed = world.scale.seed ^ (group.group_id << 8) ^ idx as u64;
                let config = world.build_config(build_seed);

                // The median user's package is independent of the consensus
                // method (a singleton group aggregates to itself).
                let median_dims = group
                    .median_user()
                    .map(|median| {
                        let median_group = Group::new(group.group_id, vec![median.clone()]);
                        let median_profile =
                            median_group.profile(ConsensusMethod::average_preference());
                        let package = world
                            .session
                            .build_package(&median_profile, &query, &config)
                            .expect("median package build");
                        world.session.measure(&package, &median_profile)
                    })
                    .unwrap_or_default();

                for method in ConsensusMethod::paper_variants() {
                    let profile = group.profile(method);
                    let package = world
                        .session
                        .build_package(&profile, &query, &config)
                        .expect("group package build");
                    let dims = world.session.measure(&package, &profile);
                    records.push(GroupRecord {
                        uniformity,
                        size,
                        method: method.name().to_string(),
                        group_id: group.group_id,
                        measured_uniformity: group.uniformity(),
                        dims,
                        median_dims,
                    });
                }
            }
        }
    }
    records
}

/// Normalizes the raw records and averages them per cell.
#[must_use]
pub fn from_records(records: &[GroupRecord]) -> Table2 {
    let scalers = dimension_scalers(records);
    let mut cells = Vec::new();
    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            for method in ConsensusMethod::paper_variants() {
                let matching: Vec<&GroupRecord> = records
                    .iter()
                    .filter(|r| {
                        r.uniformity == uniformity && r.size == size && r.method == method.name()
                    })
                    .collect();
                if matching.is_empty() {
                    continue;
                }
                let n = matching.len() as f64;
                let sum = matching.iter().fold([0.0f64; 3], |mut acc, r| {
                    let norm = normalize_dims(&r.dims, &scalers);
                    acc[0] += norm[0];
                    acc[1] += norm[1];
                    acc[2] += norm[2];
                    acc
                });
                cells.push(Table2Cell {
                    uniformity,
                    size,
                    method: method.name().to_string(),
                    representativity: sum[0] / n,
                    cohesiveness: sum[1] / n,
                    personalization: sum[2] / n,
                });
            }
        }
    }
    Table2 { cells }
}

/// Runs the whole experiment.
#[must_use]
pub fn run(world: &SyntheticWorld) -> Table2 {
    from_records(&collect_records(world))
}

/// Min–max scalers for the three dimensions, fitted over the *group* package
/// observations (the paper normalizes over all obtained values).
#[must_use]
pub fn dimension_scalers(records: &[GroupRecord]) -> [MinMaxScaler; 3] {
    let collect = |pick: fn(&OptimizationDimensions) -> f64| -> MinMaxScaler {
        let values: Vec<f64> = records
            .iter()
            .flat_map(|r| [pick(&r.dims), pick(&r.median_dims)])
            .collect();
        MinMaxScaler::fit(&values).unwrap_or(MinMaxScaler::with_range(0.0, 1.0))
    };
    [
        collect(|d| d.representativity),
        collect(|d| d.cohesiveness),
        collect(|d| d.personalization),
    ]
}

/// Normalizes one set of dimensions with the fitted scalers.
#[must_use]
pub fn normalize_dims(dims: &OptimizationDimensions, scalers: &[MinMaxScaler; 3]) -> [f64; 3] {
    [
        scalers[0].transform(dims.representativity),
        scalers[1].transform(dims.cohesiveness),
        scalers[2].transform(dims.personalization),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    fn smoke_table() -> (Vec<GroupRecord>, Table2) {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let records = collect_records(&world);
        let table = from_records(&records);
        (records, table)
    }

    #[test]
    fn produces_a_cell_for_every_combination() {
        let (records, table) = smoke_table();
        assert_eq!(
            records.len(),
            ExperimentScale::smoke().groups_per_cell * 2 * 3 * 4
        );
        assert_eq!(table.cells.len(), 2 * 3 * 4);
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                for method in ConsensusMethod::paper_variants() {
                    assert!(table.cell(uniformity, size, method.name()).is_some());
                }
            }
        }
    }

    #[test]
    fn normalized_values_are_in_the_unit_interval() {
        let (_, table) = smoke_table();
        for cell in &table.cells {
            assert!((0.0..=1.0).contains(&cell.representativity));
            assert!((0.0..=1.0).contains(&cell.cohesiveness));
            assert!((0.0..=1.0).contains(&cell.personalization));
        }
    }

    #[test]
    fn groups_respect_their_uniformity_class() {
        let (records, _) = smoke_table();
        for r in &records {
            match r.uniformity {
                Uniformity::Uniform => assert!(r.measured_uniformity > 0.85),
                Uniformity::NonUniform => assert!(r.measured_uniformity < 0.20),
            }
        }
    }

    #[test]
    fn render_includes_every_size_and_uniformity() {
        let (_, table) = smoke_table();
        let out = table.render();
        assert!(out.contains("uniform"));
        assert!(out.contains("non-uniform"));
        assert!(out.contains("small"));
        assert!(out.contains("large"));
    }

    #[test]
    fn method_average_aggregates_cells() {
        let (_, table) = smoke_table();
        let avg = table.method_average("average preference");
        assert!((0.0..=1.0).contains(&avg.representativity));
        let missing = table.method_average("not a method");
        assert_eq!(missing.personalization, 0.0);
    }
}
