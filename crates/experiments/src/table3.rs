//! Table 3 — agreement between median users and their groups.
//!
//! §4.3.3: for every generated group the *median user* (the member whose
//! summed profile similarity to the others is highest) gets their own travel
//! package; the table reports how similar the optimization dimensions of the
//! group's package are to the median user's package — i.e. how much the
//! median individual sacrifices by traveling with the group. 100% means the
//! group's package is exactly as good for the median user's dimensions as
//! their personal package.

use crate::common::SyntheticWorld;
use crate::report::{percent, render_table};
use crate::table2::{collect_records, dimension_scalers, normalize_dims, GroupRecord};
use grouptravel::prelude::*;
use serde::{Deserialize, Serialize};

/// One cell of Table 3: per-dimension agreement between the group package
/// and the median user's package, averaged over the cell's groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Cell {
    /// Uniformity class.
    pub uniformity: Uniformity,
    /// Size class.
    pub size: GroupSize,
    /// Consensus method name.
    pub method: String,
    /// Representativity agreement in `[0, 1]`.
    pub representativity: f64,
    /// Cohesiveness agreement in `[0, 1]`.
    pub cohesiveness: f64,
    /// Personalization agreement in `[0, 1]`.
    pub personalization: f64,
}

/// The full Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// One cell per (uniformity, size, method).
    pub cells: Vec<Table3Cell>,
}

impl Table3 {
    /// Looks a cell up.
    #[must_use]
    pub fn cell(
        &self,
        uniformity: Uniformity,
        size: GroupSize,
        method: &str,
    ) -> Option<&Table3Cell> {
        self.cells
            .iter()
            .find(|c| c.uniformity == uniformity && c.size == size && c.method == method)
    }

    /// Average agreement (mean of the three dimensions) for one method within
    /// one uniformity class, across sizes. Used for the qualitative claims
    /// ("least misery is more successful at satisfying the median user in
    /// non-uniform groups").
    #[must_use]
    pub fn average_agreement(&self, uniformity: Uniformity, method: &str) -> f64 {
        let cells: Vec<&Table3Cell> = self
            .cells
            .iter()
            .filter(|c| c.uniformity == uniformity && c.method == method)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells
            .iter()
            .map(|c| (c.representativity + c.cohesiveness + c.personalization) / 3.0)
            .sum::<f64>()
            / cells.len() as f64
    }

    /// Renders Table 3 the way the paper prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                let mut row = vec![uniformity.name().to_string(), size.name().to_string()];
                for method in ConsensusMethod::paper_variants() {
                    if let Some(cell) = self.cell(uniformity, size, method.name()) {
                        row.push(percent(cell.representativity));
                        row.push(percent(cell.cohesiveness));
                        row.push(percent(cell.personalization));
                    } else {
                        row.extend(["-".to_string(), "-".to_string(), "-".to_string()]);
                    }
                }
                rows.push(row);
            }
        }
        render_table(
            "Table 3: Agreement between median users and groups (100% = full agreement)",
            &[
                "groups", "size", "AV R", "AV C", "AV P", "LM R", "LM C", "LM P", "AD R", "AD C",
                "AD P", "DV R", "DV C", "DV P",
            ],
            &rows,
        )
    }
}

/// Builds Table 3 from the records collected by the synthetic run: the
/// agreement per dimension is `1 − |normalized(group) − normalized(median)|`.
#[must_use]
pub fn from_records(records: &[GroupRecord]) -> Table3 {
    let scalers = dimension_scalers(records);
    let mut cells = Vec::new();
    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            for method in ConsensusMethod::paper_variants() {
                let matching: Vec<&GroupRecord> = records
                    .iter()
                    .filter(|r| {
                        r.uniformity == uniformity && r.size == size && r.method == method.name()
                    })
                    .collect();
                if matching.is_empty() {
                    continue;
                }
                let n = matching.len() as f64;
                let sum = matching.iter().fold([0.0f64; 3], |mut acc, r| {
                    let group = normalize_dims(&r.dims, &scalers);
                    let median = normalize_dims(&r.median_dims, &scalers);
                    for d in 0..3 {
                        acc[d] += 1.0 - (group[d] - median[d]).abs();
                    }
                    acc
                });
                cells.push(Table3Cell {
                    uniformity,
                    size,
                    method: method.name().to_string(),
                    representativity: sum[0] / n,
                    cohesiveness: sum[1] / n,
                    personalization: sum[2] / n,
                });
            }
        }
    }
    Table3 { cells }
}

/// Runs the whole experiment (collecting fresh records).
#[must_use]
pub fn run(world: &SyntheticWorld) -> Table3 {
    from_records(&collect_records(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn agreement_values_are_percentages() {
        let world = SyntheticWorld::build(ExperimentScale::smoke());
        let records = collect_records(&world);
        let table = from_records(&records);
        assert_eq!(table.cells.len(), 2 * 3 * 4);
        for cell in &table.cells {
            assert!((0.0..=1.0).contains(&cell.representativity));
            assert!((0.0..=1.0).contains(&cell.cohesiveness));
            assert!((0.0..=1.0).contains(&cell.personalization));
        }
        let out = table.render();
        assert!(out.contains("Agreement"));
        assert!(table.average_agreement(Uniformity::Uniform, "average preference") > 0.0);
    }
}
