//! Table 4 — user study, independent evaluation of personalization.
//!
//! §4.4.3: for groups of every size and uniformity class, six travel packages
//! are built in Paris — a random one (attention check), a non-personalized
//! one, and one per consensus method — and every group member rates each
//! package from 1 to 5. Participants who prefer the injected random package
//! are discarded. The paper's claims, asserted by the integration tests:
//! personalized packages are rated above the random and non-personalized
//! baselines, and scores for non-uniform groups decay as groups grow.

use crate::common::UserStudyWorld;
use crate::report::{rating, render_table};
use grouptravel::prelude::*;
use grouptravel::TravelPackage;
use grouptravel_study::{RatingModel, RatingModelConfig, SimulatedWorker};
use serde::{Deserialize, Serialize};

/// The six package kinds evaluated in the study, in the paper's column
/// order.
pub const PACKAGE_KINDS: [&str; 6] = [
    "random",
    "non-personalized",
    "average preference",
    "least misery",
    "pair-wise disagreement",
    "disagreement variance",
];

/// One cell of Table 4: the average rating of one package kind by one group
/// class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Cell {
    /// Uniformity class of the rating groups.
    pub uniformity: Uniformity,
    /// Size class of the rating groups.
    pub size: GroupSize,
    /// Package kind (one of [`PACKAGE_KINDS`]).
    pub kind: String,
    /// Average 1–5 rating over retained raters.
    pub rating: f64,
    /// Number of ratings that went into the average.
    pub raters: usize,
}

/// The full Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// One cell per (uniformity, size, kind).
    pub cells: Vec<Table4Cell>,
    /// Participants discarded by the attention check.
    pub filtered_out: usize,
}

impl Table4 {
    /// Looks a cell up.
    #[must_use]
    pub fn cell(&self, uniformity: Uniformity, size: GroupSize, kind: &str) -> Option<&Table4Cell> {
        self.cells
            .iter()
            .find(|c| c.uniformity == uniformity && c.size == size && c.kind == kind)
    }

    /// Average rating of one package kind over every cell.
    #[must_use]
    pub fn kind_average(&self, kind: &str) -> f64 {
        let cells: Vec<&Table4Cell> = self.cells.iter().filter(|c| c.kind == kind).collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|c| c.rating).sum::<f64>() / cells.len() as f64
    }

    /// Renders Table 4 the way the paper prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                let mut row = vec![uniformity.name().to_string(), size.name().to_string()];
                for kind in PACKAGE_KINDS {
                    match self.cell(uniformity, size, kind) {
                        Some(cell) => row.push(rating(cell.rating)),
                        None => row.push("-".to_string()),
                    }
                }
                rows.push(row);
            }
        }
        render_table(
            "Table 4: Independent evaluation of the user study (average 1-5 interest)",
            &[
                "groups",
                "size",
                "random",
                "non-pers.",
                "avg pref",
                "least misery",
                "pair-wise dis.",
                "dis. variance",
            ],
            &rows,
        )
    }
}

/// Builds the six study packages for one group in Paris.
#[must_use]
pub fn build_study_packages(
    world: &UserStudyWorld,
    group: &Group,
    seed: u64,
) -> Vec<(String, TravelPackage)> {
    let query = GroupQuery::paper_default();
    let config = BuildConfig {
        seed,
        ..BuildConfig::default()
    };
    let base_profile = group.profile(ConsensusMethod::average_preference());

    let mut packages = Vec::with_capacity(PACKAGE_KINDS.len());
    packages.push((
        "random".to_string(),
        world
            .paris
            .build_random(&query, config.k, seed ^ 0xbad)
            .expect("random package"),
    ));
    packages.push((
        "non-personalized".to_string(),
        world
            .paris
            .build_non_personalized(&base_profile, &query, &config)
            .expect("non-personalized package"),
    ));
    for method in ConsensusMethod::paper_variants() {
        let profile = group.profile(method);
        packages.push((
            method.name().to_string(),
            world
                .paris
                .build_package(&profile, &query, &config)
                .expect("personalized package"),
        ));
    }
    packages
}

/// The group members' simulated workers, sampled down to `sample` raters for
/// large groups (the paper gathers 19–30 assessments for large groups).
#[must_use]
pub fn raters_for_group<'a>(
    world: &'a UserStudyWorld,
    group: &Group,
    sample: usize,
) -> Vec<&'a SimulatedWorker> {
    let mut raters: Vec<&SimulatedWorker> = group
        .members()
        .iter()
        .filter_map(|member| {
            world
                .population
                .workers()
                .iter()
                .find(|w| w.worker_id == member.user_id)
        })
        .collect();
    if raters.len() > sample {
        raters.truncate(sample);
    }
    raters
}

/// Runs the independent evaluation.
#[must_use]
pub fn run(world: &UserStudyWorld) -> Table4 {
    let query = GroupQuery::paper_default();
    let mut model = RatingModel::new(RatingModelConfig {
        seed: world.scale.seed,
        ..RatingModelConfig::default()
    });
    let mut cells = Vec::new();
    let mut filtered_out = 0usize;
    let mut group_counter = 0u64;

    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            // rating sums / counts per package kind for this cell.
            let mut sums = vec![0.0f64; PACKAGE_KINDS.len()];
            let mut counts = vec![0usize; PACKAGE_KINDS.len()];

            for g in 0..world.scale.study_groups_per_cell {
                group_counter += 1;
                let Some(group) = world.platform.form_group(
                    &world.population,
                    size,
                    uniformity,
                    group_counter * 131 + g as u64,
                ) else {
                    continue;
                };
                let packages =
                    build_study_packages(world, &group, world.scale.seed ^ group_counter);
                let raters = raters_for_group(world, &group, world.scale.large_group_sample);

                for worker in raters {
                    let ratings: Vec<f64> = packages
                        .iter()
                        .map(|(_, package)| {
                            model.rate(
                                worker,
                                package,
                                world.paris.catalog(),
                                world.paris.vectorizer(),
                                &query,
                            )
                        })
                        .collect();
                    // Attention check: discard raters whose highest rating
                    // went to the injected random package.
                    let random_rating = ratings[0];
                    let best_other = ratings[1..]
                        .iter()
                        .copied()
                        .fold(f64::NEG_INFINITY, f64::max);
                    if random_rating > best_other {
                        filtered_out += 1;
                        continue;
                    }
                    for (idx, r) in ratings.iter().enumerate() {
                        sums[idx] += r;
                        counts[idx] += 1;
                    }
                }
            }

            for (idx, kind) in PACKAGE_KINDS.iter().enumerate() {
                if counts[idx] == 0 {
                    continue;
                }
                cells.push(Table4Cell {
                    uniformity,
                    size,
                    kind: (*kind).to_string(),
                    rating: sums[idx] / counts[idx] as f64,
                    raters: counts[idx],
                });
            }
        }
    }

    Table4 {
        cells,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn independent_evaluation_produces_ratings_for_every_kind() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        let table = run(&world);
        assert!(!table.cells.is_empty());
        for cell in &table.cells {
            assert!((1.0..=5.0).contains(&cell.rating), "rating {}", cell.rating);
            assert!(cell.raters > 0);
        }
        // Every kind appears somewhere.
        for kind in PACKAGE_KINDS {
            assert!(
                table.cells.iter().any(|c| c.kind == kind),
                "kind {kind} missing"
            );
        }
        let out = table.render();
        assert!(out.contains("Independent evaluation"));
    }

    #[test]
    fn study_packages_cover_the_six_kinds_and_the_random_one_is_invalid() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        let group = world
            .platform
            .form_group(&world.population, GroupSize::Small, Uniformity::Uniform, 1)
            .unwrap();
        let packages = build_study_packages(&world, &group, 7);
        assert_eq!(packages.len(), 6);
        let query = GroupQuery::paper_default();
        assert!(!packages[0].1.is_valid(world.paris.catalog(), &query));
        for (kind, package) in &packages[1..] {
            assert!(
                package.is_valid(world.paris.catalog(), &query),
                "{kind} package should be valid"
            );
        }
    }
}
