//! Table 5 — user study, comparative evaluation of personalization.
//!
//! §4.4.3: participants are shown pairs of travel packages (the four
//! consensus-personalized ones plus the non-personalized baseline) and pick
//! the one they prefer. The table reports, for every pair, the percentage of
//! comparisons won by the first package of the pair. The paper's claims:
//! average preference / least misery win for uniform groups, while the
//! disagreement-based packages win for non-uniform groups.

use crate::common::UserStudyWorld;
use crate::report::{percent, render_table};
use crate::table4::{build_study_packages, raters_for_group};
use grouptravel::prelude::*;
use grouptravel_study::{RatingModel, RatingModelConfig};
use serde::{Deserialize, Serialize};

/// Short names of the five compared packages, in the paper's order.
pub const COMPARED: [&str; 5] = ["AVTP", "LMTP", "ADTP", "DVTP", "NPTP"];

/// Maps the short package names of the paper (AVTP, …, NPTP) to the package
/// kinds produced by [`build_study_packages`].
#[must_use]
pub fn kind_of(short: &str) -> &'static str {
    match short {
        "AVTP" => "average preference",
        "LMTP" => "least misery",
        "ADTP" => "pair-wise disagreement",
        "DVTP" => "disagreement variance",
        _ => "non-personalized",
    }
}

/// One pairwise comparison cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Cell {
    /// Uniformity class.
    pub uniformity: Uniformity,
    /// Size class.
    pub size: GroupSize,
    /// First package of the pair (its win rate is reported).
    pub first: String,
    /// Second package of the pair.
    pub second: String,
    /// Fraction of comparisons won by `first`.
    pub first_wins: f64,
    /// Number of comparisons.
    pub comparisons: usize,
}

/// The full Table 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// One cell per (uniformity, size, pair).
    pub cells: Vec<Table5Cell>,
    /// Participants discarded by the attention check.
    pub filtered_out: usize,
}

impl Table5 {
    /// Looks up the win rate of `first` against `second` for one group class.
    #[must_use]
    pub fn win_rate(
        &self,
        uniformity: Uniformity,
        size: GroupSize,
        first: &str,
        second: &str,
    ) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| {
                c.uniformity == uniformity
                    && c.size == size
                    && c.first == first
                    && c.second == second
            })
            .map(|c| c.first_wins)
    }

    /// Average win rate of one package against every other across sizes for
    /// one uniformity class (the quantity behind "AVTP and LMTP are winners
    /// for uniform groups").
    #[must_use]
    pub fn average_win_rate(&self, uniformity: Uniformity, name: &str) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for cell in &self.cells {
            if cell.uniformity != uniformity {
                continue;
            }
            if cell.first == name {
                total += cell.first_wins;
                count += 1;
            } else if cell.second == name {
                total += 1.0 - cell.first_wins;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Renders Table 5 the way the paper prints it (one column per pair).
    #[must_use]
    pub fn render(&self) -> String {
        let pairs = all_pairs();
        let mut header: Vec<String> = vec!["groups".into(), "size".into()];
        header.extend(pairs.iter().map(|(a, b)| format!("{a} vs {b}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

        let mut rows = Vec::new();
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                let mut row = vec![uniformity.name().to_string(), size.name().to_string()];
                for (a, b) in &pairs {
                    match self.win_rate(uniformity, size, a, b) {
                        Some(rate) => row.push(percent(rate)),
                        None => row.push("-".to_string()),
                    }
                }
                rows.push(row);
            }
        }
        render_table(
            "Table 5: Comparative evaluation of the user study (% preferring the first package)",
            &header_refs,
            &rows,
        )
    }
}

/// The ten ordered pairs of Table 5 (every unordered pair once, first name
/// reported).
#[must_use]
pub fn all_pairs() -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    for (i, a) in COMPARED.iter().enumerate() {
        for b in &COMPARED[i + 1..] {
            pairs.push(((*a).to_string(), (*b).to_string()));
        }
    }
    pairs
}

/// Runs the comparative evaluation.
#[must_use]
pub fn run(world: &UserStudyWorld) -> Table5 {
    let query = GroupQuery::paper_default();
    let mut model = RatingModel::new(RatingModelConfig {
        seed: world.scale.seed ^ 0x5a5a,
        ..RatingModelConfig::default()
    });
    let pairs = all_pairs();
    let mut cells = Vec::new();
    let mut filtered_out = 0usize;
    let mut group_counter = 0u64;

    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            let mut wins = vec![0usize; pairs.len()];
            let mut totals = vec![0usize; pairs.len()];

            for g in 0..world.scale.study_groups_per_cell {
                group_counter += 1;
                let Some(group) = world.platform.form_group(
                    &world.population,
                    size,
                    uniformity,
                    group_counter * 977 + g as u64,
                ) else {
                    continue;
                };
                let packages =
                    build_study_packages(world, &group, world.scale.seed ^ (group_counter << 4));
                let find = |kind: &str| {
                    packages
                        .iter()
                        .find(|(k, _)| k == kind)
                        .map(|(_, p)| p)
                        .expect("every study package kind is built")
                };
                let random_package = find("random");
                let raters = raters_for_group(world, &group, world.scale.large_group_sample);

                for worker in raters {
                    // Attention check: a worker who prefers the invalid
                    // random package over the average-preference package is
                    // discarded.
                    let avtp = find(kind_of("AVTP"));
                    if model.prefers_first(
                        worker,
                        random_package,
                        avtp,
                        world.paris.catalog(),
                        world.paris.vectorizer(),
                        &query,
                    ) {
                        filtered_out += 1;
                        continue;
                    }
                    for (idx, (a, b)) in pairs.iter().enumerate() {
                        let first = find(kind_of(a));
                        let second = find(kind_of(b));
                        totals[idx] += 1;
                        if model.prefers_first(
                            worker,
                            first,
                            second,
                            world.paris.catalog(),
                            world.paris.vectorizer(),
                            &query,
                        ) {
                            wins[idx] += 1;
                        }
                    }
                }
            }

            for (idx, (a, b)) in pairs.iter().enumerate() {
                if totals[idx] == 0 {
                    continue;
                }
                cells.push(Table5Cell {
                    uniformity,
                    size,
                    first: a.clone(),
                    second: b.clone(),
                    first_wins: wins[idx] as f64 / totals[idx] as f64,
                    comparisons: totals[idx],
                });
            }
        }
    }

    Table5 {
        cells,
        filtered_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn there_are_ten_pairs() {
        let pairs = all_pairs();
        assert_eq!(pairs.len(), 10);
        assert!(pairs.contains(&("AVTP".to_string(), "NPTP".to_string())));
    }

    #[test]
    fn kind_mapping_covers_all_short_names() {
        assert_eq!(kind_of("AVTP"), "average preference");
        assert_eq!(kind_of("DVTP"), "disagreement variance");
        assert_eq!(kind_of("NPTP"), "non-personalized");
    }

    #[test]
    fn comparative_evaluation_produces_win_rates_in_range() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        let table = run(&world);
        assert!(!table.cells.is_empty());
        for cell in &table.cells {
            assert!((0.0..=1.0).contains(&cell.first_wins));
            assert!(cell.comparisons > 0);
        }
        let avg = table.average_win_rate(Uniformity::Uniform, "AVTP");
        assert!((0.0..=1.0).contains(&avg));
        let out = table.render();
        assert!(out.contains("AVTP vs LMTP"));
    }
}
