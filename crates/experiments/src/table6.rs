//! Table 6 — customized travel packages, independent evaluation.
//!
//! §4.4.4: one uniform group (11 members) and one non-uniform group
//! (7 members) are formed from workers with an approval rate above 90%. A
//! personalized package is built in Paris; the members interact with it
//! (add / remove / replace POIs); their interactions refine the group profile
//! with the *individual* and *batch* strategies; and a new package is built
//! in Barcelona with each refined profile (plus the non-personalized
//! baseline). Members then rate the three Barcelona packages from 1 to 5.

use crate::common::UserStudyWorld;
use crate::report::{rating, render_table};
use grouptravel::prelude::*;
use grouptravel::{refine_batch, refine_individual, MemberInteractions, TravelPackage};
use grouptravel_profile::cosine_similarity;
use grouptravel_study::{RatingModel, RatingModelConfig, SimulatedWorker};
use serde::{Deserialize, Serialize};

/// The three Barcelona packages of the customization study, in the paper's
/// row order.
pub const STRATEGIES: [&str; 3] = ["individual", "batch", "non-personalized"];

/// Everything the customization study computes for one group; shared by
/// Tables 6 and 7.
pub struct GroupStudy {
    /// The group's uniformity class.
    pub uniformity: Uniformity,
    /// The group itself.
    pub group: Group,
    /// The simulated interactions of every member with the Paris package.
    pub interactions: Vec<MemberInteractions>,
    /// The three Barcelona packages keyed by strategy name.
    pub barcelona_packages: Vec<(String, TravelPackage)>,
}

/// The full customization study (both groups).
pub struct CustomizationStudy {
    /// Per-group results (uniform first, then non-uniform).
    pub groups: Vec<GroupStudy>,
}

/// One cell of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Cell {
    /// Uniformity class of the group.
    pub uniformity: Uniformity,
    /// Strategy (individual / batch / non-personalized).
    pub strategy: String,
    /// Average 1–5 rating of the Barcelona package.
    pub rating: f64,
    /// Number of retained raters.
    pub raters: usize,
}

/// The full Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// One cell per (uniformity, strategy).
    pub cells: Vec<Table6Cell>,
    /// Raters discarded by the attention check.
    pub filtered_out: usize,
}

impl Table6 {
    /// Looks a cell up.
    #[must_use]
    pub fn cell(&self, uniformity: Uniformity, strategy: &str) -> Option<&Table6Cell> {
        self.cells
            .iter()
            .find(|c| c.uniformity == uniformity && c.strategy == strategy)
    }

    /// Renders Table 6 the way the paper prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let mut rows = Vec::new();
        for strategy in STRATEGIES {
            let mut row = vec![strategy.to_string()];
            for uniformity in Uniformity::ALL {
                match self.cell(uniformity, strategy) {
                    Some(cell) => row.push(rating(cell.rating)),
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
        }
        render_table(
            "Table 6: Independent evaluation of customized travel packages (Barcelona, 1-5)",
            &["TP type", "uniform", "non-uniform"],
            &rows,
        )
    }
}

/// Simulates how one member interacts with the Paris package: the member
/// removes the POI of the package they like least, asks the system to
/// replace the second-least-liked POI, and adds the candidate POI they like
/// most near the first composite item. This mirrors the paper's GUI flow
/// (Figure 3) with preferences standing in for clicks.
fn simulate_member_interactions(
    world: &UserStudyWorld,
    worker: &SimulatedWorker,
    package: &TravelPackage,
    profile: &GroupProfile,
    query: &GroupQuery,
) -> MemberInteractions {
    let mut record = MemberInteractions::new(worker.worker_id);
    let weights = ObjectiveWeights::default();
    let catalog = world.paris.catalog();
    let vectorizer = world.paris.vectorizer();

    // Rank every (ci, poi) of the package by the member's own affinity.
    let mut scored: Vec<(usize, grouptravel_dataset::PoiId, f64)> = Vec::new();
    for (ci_idx, ci) in package.composite_items().iter().enumerate() {
        for poi in ci.resolve(catalog) {
            let affinity = cosine_similarity(
                worker.profile.vector(poi.category),
                &vectorizer.item_vector(poi),
            );
            scored.push((ci_idx, poi.id, affinity));
        }
    }
    scored.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

    let mut working = package.clone();

    // REMOVE the least-liked POI.
    if let Some(&(ci_idx, poi, _)) = scored.first() {
        if let Ok(log) = world.paris.apply(
            &mut working,
            &grouptravel::CustomizationOp::Remove {
                ci_index: ci_idx,
                poi,
            },
            profile,
            query,
            &weights,
        ) {
            record.log.merge(&log);
        }
    }
    // REPLACE the second-least-liked POI with the system's suggestion.
    if let Some(&(ci_idx, poi, _)) = scored.get(1) {
        if let Ok(log) = world.paris.apply(
            &mut working,
            &grouptravel::CustomizationOp::Replace {
                ci_index: ci_idx,
                poi,
            },
            profile,
            query,
            &weights,
        ) {
            record.log.merge(&log);
        }
    }
    // ADD the best candidate attraction near the first composite item.
    let candidates = world
        .paris
        .add_candidates(&working, 0, Category::Attraction, None, 10);
    let best = candidates.into_iter().max_by(|a, b| {
        let sa = cosine_similarity(
            worker.profile.vector(a.category),
            &vectorizer.item_vector(a),
        );
        let sb = cosine_similarity(
            worker.profile.vector(b.category),
            &vectorizer.item_vector(b),
        );
        sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(poi) = best {
        if let Ok(log) = world.paris.apply(
            &mut working,
            &grouptravel::CustomizationOp::Add {
                ci_index: 0,
                poi: poi.id,
            },
            profile,
            query,
            &weights,
        ) {
            record.log.merge(&log);
        }
    }
    record
}

/// Runs the customization study for both groups, producing the Barcelona
/// packages that Tables 6 and 7 evaluate.
#[must_use]
pub fn run_study(world: &UserStudyWorld) -> CustomizationStudy {
    let query = GroupQuery::paper_default();
    let consensus = ConsensusMethod::pairwise_disagreement();
    let mut groups = Vec::new();

    for (uniformity, size, salt) in [
        (Uniformity::Uniform, 11usize, 0x61u64),
        (Uniformity::NonUniform, 7usize, 0x62u64),
    ] {
        let Some(group) =
            world
                .platform
                .form_group_sized(&world.population, size, uniformity, salt)
        else {
            continue;
        };
        let profile = group.profile(consensus);
        let paris_config = BuildConfig {
            seed: world.scale.seed ^ salt,
            ..BuildConfig::default()
        };
        let paris_package = world
            .paris
            .build_package(&profile, &query, &paris_config)
            .expect("paris package");

        // Every member interacts with the Paris package.
        let interactions: Vec<MemberInteractions> = group
            .members()
            .iter()
            .filter_map(|member| {
                world
                    .population
                    .workers()
                    .iter()
                    .find(|w| w.worker_id == member.user_id)
            })
            .map(|worker| {
                simulate_member_interactions(world, worker, &paris_package, &profile, &query)
            })
            .collect();

        // Refine with both strategies.
        let batch_profile = refine_batch(
            &profile,
            &interactions,
            world.paris.catalog(),
            world.paris.vectorizer(),
        );
        let (_, individual_profile) = refine_individual(
            &group,
            consensus,
            &interactions,
            world.paris.catalog(),
            world.paris.vectorizer(),
        );

        // Build the three Barcelona packages.
        let barcelona_config = BuildConfig {
            seed: world.scale.seed ^ salt ^ 0xbcba,
            ..BuildConfig::default()
        };
        let barcelona_packages = vec![
            (
                "individual".to_string(),
                world
                    .barcelona
                    .build_package(&individual_profile, &query, &barcelona_config)
                    .expect("barcelona individual package"),
            ),
            (
                "batch".to_string(),
                world
                    .barcelona
                    .build_package(&batch_profile, &query, &barcelona_config)
                    .expect("barcelona batch package"),
            ),
            (
                "non-personalized".to_string(),
                world
                    .barcelona
                    .build_non_personalized(&profile, &query, &barcelona_config)
                    .expect("barcelona non-personalized package"),
            ),
        ];

        groups.push(GroupStudy {
            uniformity,
            group,
            interactions,
            barcelona_packages,
        });
    }

    CustomizationStudy { groups }
}

/// Builds Table 6 from a customization study.
#[must_use]
pub fn from_study(world: &UserStudyWorld, study: &CustomizationStudy) -> Table6 {
    let query = GroupQuery::paper_default();
    let mut model = RatingModel::new(RatingModelConfig {
        seed: world.scale.seed ^ 0x66,
        ..RatingModelConfig::default()
    });
    let mut cells = Vec::new();
    let mut filtered_out = 0usize;

    for group_study in &study.groups {
        let raters: Vec<&SimulatedWorker> = group_study
            .group
            .members()
            .iter()
            .filter_map(|member| {
                world
                    .population
                    .workers()
                    .iter()
                    .find(|w| w.worker_id == member.user_id)
            })
            .collect();
        let random_package = world
            .barcelona
            .build_random(&query, 5, world.scale.seed ^ 0x77)
            .expect("random barcelona package");

        let mut sums = vec![0.0f64; group_study.barcelona_packages.len()];
        let mut counts = vec![0usize; group_study.barcelona_packages.len()];
        for worker in raters {
            let random_rating = model.rate(
                worker,
                &random_package,
                world.barcelona.catalog(),
                world.barcelona.vectorizer(),
                &query,
            );
            let ratings: Vec<f64> = group_study
                .barcelona_packages
                .iter()
                .map(|(_, p)| {
                    model.rate(
                        worker,
                        p,
                        world.barcelona.catalog(),
                        world.barcelona.vectorizer(),
                        &query,
                    )
                })
                .collect();
            let best = ratings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if random_rating > best {
                filtered_out += 1;
                continue;
            }
            for (idx, r) in ratings.iter().enumerate() {
                sums[idx] += r;
                counts[idx] += 1;
            }
        }
        for (idx, (strategy, _)) in group_study.barcelona_packages.iter().enumerate() {
            if counts[idx] == 0 {
                continue;
            }
            cells.push(Table6Cell {
                uniformity: group_study.uniformity,
                strategy: strategy.clone(),
                rating: sums[idx] / counts[idx] as f64,
                raters: counts[idx],
            });
        }
    }

    Table6 {
        cells,
        filtered_out,
    }
}

/// Runs the whole Table 6 experiment.
#[must_use]
pub fn run(world: &UserStudyWorld) -> Table6 {
    from_study(world, &run_study(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn customization_study_builds_both_groups_and_all_strategies() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        let study = run_study(&world);
        assert_eq!(study.groups.len(), 2);
        assert_eq!(study.groups[0].uniformity, Uniformity::Uniform);
        assert_eq!(study.groups[0].group.size(), 11);
        assert_eq!(study.groups[1].group.size(), 7);
        for g in &study.groups {
            assert_eq!(g.barcelona_packages.len(), 3);
            assert!(!g.interactions.is_empty());
            assert!(g.interactions.iter().any(|i| !i.log.is_empty()));
            for (_, p) in &g.barcelona_packages {
                assert_eq!(p.len(), 5);
            }
        }
        let table = from_study(&world, &study);
        assert_eq!(table.cells.len(), 6);
        for cell in &table.cells {
            assert!((1.0..=5.0).contains(&cell.rating));
        }
        let out = table.render();
        assert!(out.contains("batch"));
        assert!(out.contains("individual"));
    }
}
