//! Table 7 — customized travel packages, comparative evaluation.
//!
//! §4.4.4: the members of the two customization-study groups are shown pairs
//! of Barcelona packages (batch-refined, individual-refined,
//! non-personalized) and pick the one they prefer. The paper reports the
//! batch strategy as the clear winner.

use crate::common::UserStudyWorld;
use crate::report::{percent, render_table};
use crate::table6::{run_study, CustomizationStudy};
use grouptravel::prelude::*;
use grouptravel_study::{RatingModel, RatingModelConfig, SimulatedWorker};
use serde::{Deserialize, Serialize};

/// The three ordered pairs of Table 7.
#[must_use]
pub fn pairs() -> Vec<(String, String)> {
    vec![
        ("batch".to_string(), "individual".to_string()),
        ("batch".to_string(), "non-personalized".to_string()),
        ("individual".to_string(), "non-personalized".to_string()),
    ]
}

/// One cell of Table 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table7Cell {
    /// Uniformity class of the group.
    pub uniformity: Uniformity,
    /// First strategy of the pair (its win rate is reported).
    pub first: String,
    /// Second strategy of the pair.
    pub second: String,
    /// Fraction of comparisons won by `first`.
    pub first_wins: f64,
    /// Number of comparisons.
    pub comparisons: usize,
}

/// The full Table 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table7 {
    /// One cell per (uniformity, pair).
    pub cells: Vec<Table7Cell>,
}

impl Table7 {
    /// Looks up the win rate of `first` against `second` for one group class.
    #[must_use]
    pub fn win_rate(&self, uniformity: Uniformity, first: &str, second: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.uniformity == uniformity && c.first == first && c.second == second)
            .map(|c| c.first_wins)
    }

    /// Renders Table 7 the way the paper prints it.
    #[must_use]
    pub fn render(&self) -> String {
        let pair_list = pairs();
        let mut header: Vec<String> = vec!["groups".into()];
        header.extend(pair_list.iter().map(|(a, b)| format!("{a} vs {b}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for uniformity in Uniformity::ALL {
            let mut row = vec![uniformity.name().to_string()];
            for (a, b) in &pair_list {
                match self.win_rate(uniformity, a, b) {
                    Some(rate) => row.push(percent(rate)),
                    None => row.push("-".to_string()),
                }
            }
            rows.push(row);
        }
        render_table(
            "Table 7: Comparative evaluation of customized travel packages (% preferring the first)",
            &header_refs,
            &rows,
        )
    }
}

/// Builds Table 7 from an existing customization study.
#[must_use]
pub fn from_study(world: &UserStudyWorld, study: &CustomizationStudy) -> Table7 {
    let query = GroupQuery::paper_default();
    let mut model = RatingModel::new(RatingModelConfig {
        seed: world.scale.seed ^ 0x777,
        ..RatingModelConfig::default()
    });
    let pair_list = pairs();
    let mut cells = Vec::new();

    for group_study in &study.groups {
        let raters: Vec<&SimulatedWorker> = group_study
            .group
            .members()
            .iter()
            .filter_map(|member| {
                world
                    .population
                    .workers()
                    .iter()
                    .find(|w| w.worker_id == member.user_id)
            })
            .collect();
        let find = |strategy: &str| {
            group_study
                .barcelona_packages
                .iter()
                .find(|(s, _)| s == strategy)
                .map(|(_, p)| p)
                .expect("every strategy package is built")
        };

        for (a, b) in &pair_list {
            let first = find(a);
            let second = find(b);
            let mut wins = 0usize;
            let mut total = 0usize;
            for worker in &raters {
                total += 1;
                if model.prefers_first(
                    worker,
                    first,
                    second,
                    world.barcelona.catalog(),
                    world.barcelona.vectorizer(),
                    &query,
                ) {
                    wins += 1;
                }
            }
            if total == 0 {
                continue;
            }
            cells.push(Table7Cell {
                uniformity: group_study.uniformity,
                first: a.clone(),
                second: b.clone(),
                first_wins: wins as f64 / total as f64,
                comparisons: total,
            });
        }
    }

    Table7 { cells }
}

/// Runs the whole Table 7 experiment.
#[must_use]
pub fn run(world: &UserStudyWorld) -> Table7 {
    from_study(world, &run_study(world))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ExperimentScale;

    #[test]
    fn comparative_customization_covers_both_groups_and_all_pairs() {
        let world = UserStudyWorld::build(ExperimentScale::smoke());
        let study = run_study(&world);
        let table = from_study(&world, &study);
        assert_eq!(table.cells.len(), 2 * 3);
        for cell in &table.cells {
            assert!((0.0..=1.0).contains(&cell.first_wins));
            assert!(cell.comparisons > 0);
        }
        assert!(table
            .win_rate(Uniformity::Uniform, "batch", "individual")
            .is_some());
        let out = table.render();
        assert!(out.contains("batch vs individual"));
    }
}
