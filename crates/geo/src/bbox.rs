//! Bounding boxes and rectangles.
//!
//! Two related shapes are needed by GroupTravel:
//!
//! * [`BoundingBox`] — an axis-aligned lat/lon box, used to delimit a city in
//!   the synthetic dataset generator and to clip centroids during clustering.
//! * [`Rectangle`] — the screen-style rectangle from the
//!   `GENERATE(RECTANGLE(x, y, w, h))` customization operator (§3.3), whose
//!   upper-left corner is `(x, y)` with width `w` (longitude span) and height
//!   `h` (latitude span).

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// Axis-aligned geographic bounding box.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southernmost latitude.
    pub min_lat: f64,
    /// Northernmost latitude.
    pub max_lat: f64,
    /// Westernmost longitude.
    pub min_lon: f64,
    /// Easternmost longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// Creates a bounding box, swapping bounds if given in the wrong order.
    #[must_use]
    pub fn new(min_lat: f64, max_lat: f64, min_lon: f64, max_lon: f64) -> Self {
        let (min_lat, max_lat) = if min_lat <= max_lat {
            (min_lat, max_lat)
        } else {
            (max_lat, min_lat)
        };
        let (min_lon, max_lon) = if min_lon <= max_lon {
            (min_lon, max_lon)
        } else {
            (max_lon, min_lon)
        };
        Self {
            min_lat,
            max_lat,
            min_lon,
            max_lon,
        }
    }

    /// The smallest box containing every point in `points`.
    ///
    /// Returns `None` for an empty slice.
    #[must_use]
    pub fn from_points(points: &[GeoPoint]) -> Option<Self> {
        Self::from_points_iter(points.iter().copied())
    }

    /// The smallest box containing every yielded point, computed in one
    /// streaming pass (no intermediate collection).
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points_iter(points: impl IntoIterator<Item = GeoPoint>) -> Option<Self> {
        let mut points = points.into_iter();
        let first = points.next()?;
        let mut bb = Self::new(first.lat, first.lat, first.lon, first.lon);
        for p in points {
            bb.min_lat = bb.min_lat.min(p.lat);
            bb.max_lat = bb.max_lat.max(p.lat);
            bb.min_lon = bb.min_lon.min(p.lon);
            bb.max_lon = bb.max_lon.max(p.lon);
        }
        Some(bb)
    }

    /// Whether `p` lies inside the box (inclusive on all edges).
    #[must_use]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        (self.min_lat..=self.max_lat).contains(&p.lat)
            && (self.min_lon..=self.max_lon).contains(&p.lon)
    }

    /// Geometric centre of the box.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        GeoPoint::new_unchecked(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )
    }

    /// Clamps a point to the box.
    #[must_use]
    pub fn clamp(&self, p: &GeoPoint) -> GeoPoint {
        GeoPoint::new_unchecked(
            p.lat.clamp(self.min_lat, self.max_lat),
            p.lon.clamp(self.min_lon, self.max_lon),
        )
    }

    /// Latitude span in degrees.
    #[must_use]
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude span in degrees.
    #[must_use]
    pub fn lon_span(&self) -> f64 {
        self.max_lon - self.min_lon
    }

    /// Expands the box by `margin` degrees in every direction.
    #[must_use]
    pub fn expanded(&self, margin: f64) -> Self {
        Self::new(
            self.min_lat - margin,
            self.max_lat + margin,
            self.min_lon - margin,
            self.max_lon + margin,
        )
    }
}

/// Rectangle as selected on an interactive map: upper-left corner `(x, y)`
/// where `x` is longitude and `y` is latitude, width `w` in degrees of
/// longitude (towards the east), and height `h` in degrees of latitude
/// (towards the south).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rectangle {
    /// Longitude of the upper-left corner.
    pub x: f64,
    /// Latitude of the upper-left corner.
    pub y: f64,
    /// Width (longitude span), non-negative.
    pub w: f64,
    /// Height (latitude span), non-negative.
    pub h: f64,
}

impl Rectangle {
    /// Creates a rectangle; negative spans are clamped to zero.
    #[must_use]
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        Self {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Converts the rectangle to a [`BoundingBox`].
    #[must_use]
    pub fn to_bbox(&self) -> BoundingBox {
        BoundingBox::new(self.y - self.h, self.y, self.x, self.x + self.w)
    }

    /// Centre of the rectangle.
    #[must_use]
    pub fn center(&self) -> GeoPoint {
        self.to_bbox().center()
    }

    /// Whether the rectangle contains the point.
    #[must_use]
    pub fn contains(&self, p: &GeoPoint) -> bool {
        self.to_bbox().contains(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_swaps_reversed_bounds() {
        let bb = BoundingBox::new(49.0, 48.0, 3.0, 2.0);
        assert_eq!(bb.min_lat, 48.0);
        assert_eq!(bb.max_lat, 49.0);
        assert_eq!(bb.min_lon, 2.0);
        assert_eq!(bb.max_lon, 3.0);
    }

    #[test]
    fn from_points_covers_all_points() {
        let pts = vec![
            GeoPoint::new_unchecked(48.8, 2.3),
            GeoPoint::new_unchecked(48.9, 2.2),
            GeoPoint::new_unchecked(48.85, 2.4),
        ];
        let bb = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.min_lat, 48.8);
        assert_eq!(bb.max_lon, 2.4);
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_is_inclusive_on_edges() {
        let bb = BoundingBox::new(48.0, 49.0, 2.0, 3.0);
        assert!(bb.contains(&GeoPoint::new_unchecked(48.0, 2.0)));
        assert!(bb.contains(&GeoPoint::new_unchecked(49.0, 3.0)));
        assert!(!bb.contains(&GeoPoint::new_unchecked(47.999, 2.5)));
    }

    #[test]
    fn center_and_spans() {
        let bb = BoundingBox::new(48.0, 49.0, 2.0, 3.0);
        let c = bb.center();
        assert!((c.lat - 48.5).abs() < 1e-12);
        assert!((c.lon - 2.5).abs() < 1e-12);
        assert!((bb.lat_span() - 1.0).abs() < 1e-12);
        assert!((bb.lon_span() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_moves_outside_points_onto_boundary() {
        let bb = BoundingBox::new(48.0, 49.0, 2.0, 3.0);
        let clamped = bb.clamp(&GeoPoint::new_unchecked(50.0, 1.0));
        assert_eq!(clamped, GeoPoint::new_unchecked(49.0, 2.0));
        let inside = GeoPoint::new_unchecked(48.5, 2.5);
        assert_eq!(bb.clamp(&inside), inside);
    }

    #[test]
    fn expanded_grows_every_side() {
        let bb = BoundingBox::new(48.0, 49.0, 2.0, 3.0).expanded(0.5);
        assert_eq!(bb.min_lat, 47.5);
        assert_eq!(bb.max_lat, 49.5);
        assert_eq!(bb.min_lon, 1.5);
        assert_eq!(bb.max_lon, 3.5);
    }

    #[test]
    fn rectangle_to_bbox_extends_south_and_east() {
        // Upper-left at (lon=2.0, lat=49.0), 0.5 wide, 0.25 tall.
        let r = Rectangle::new(2.0, 49.0, 0.5, 0.25);
        let bb = r.to_bbox();
        assert_eq!(bb.max_lat, 49.0);
        assert_eq!(bb.min_lat, 48.75);
        assert_eq!(bb.min_lon, 2.0);
        assert_eq!(bb.max_lon, 2.5);
        assert!(r.contains(&GeoPoint::new_unchecked(48.9, 2.2)));
        assert!(!r.contains(&GeoPoint::new_unchecked(49.1, 2.2)));
    }

    #[test]
    fn rectangle_negative_spans_are_clamped() {
        let r = Rectangle::new(2.0, 49.0, -1.0, -1.0);
        assert_eq!(r.w, 0.0);
        assert_eq!(r.h, 0.0);
        assert_eq!(r.center(), GeoPoint::new_unchecked(49.0, 2.0));
    }
}
