//! Centroid math over (optionally weighted) point sets.
//!
//! Fuzzy c-means repeatedly recomputes cluster centroids as the
//! membership-weighted mean of all points; this module provides that
//! primitive plus a plain arithmetic centroid used by the metrics module and
//! the `GENERATE` customization operator.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// A cluster centroid: a geographic position with helpers to update it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Centroid {
    /// The centroid position.
    pub position: GeoPoint,
}

impl Centroid {
    /// Creates a centroid at `position`.
    #[must_use]
    pub fn new(position: GeoPoint) -> Self {
        Self { position }
    }

    /// Unweighted centroid (arithmetic mean of coordinates).
    ///
    /// Returns `None` for an empty slice. The arithmetic mean of lat/lon is a
    /// valid approximation of the geographic centroid at city scale, which is
    /// all GroupTravel needs.
    #[must_use]
    pub fn mean(points: &[GeoPoint]) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        let n = points.len() as f64;
        let lat = points.iter().map(|p| p.lat).sum::<f64>() / n;
        let lon = points.iter().map(|p| p.lon).sum::<f64>() / n;
        Some(Self::new(GeoPoint::new_unchecked(lat, lon)))
    }
}

/// Weighted centroid of `points` with non-negative `weights`.
///
/// Returns `None` when the slices are empty, have mismatched lengths, or the
/// total weight is (numerically) zero.
#[must_use]
pub fn weighted_centroid(points: &[GeoPoint], weights: &[f64]) -> Option<GeoPoint> {
    if points.is_empty() || points.len() != weights.len() {
        return None;
    }
    let total: f64 = weights.iter().sum();
    if total <= f64::EPSILON {
        return None;
    }
    let mut lat = 0.0;
    let mut lon = 0.0;
    for (p, w) in points.iter().zip(weights) {
        lat += p.lat * w;
        lon += p.lon * w;
    }
    Some(GeoPoint::new_unchecked(lat / total, lon / total))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert!(Centroid::mean(&[]).is_none());
    }

    #[test]
    fn mean_of_single_point_is_that_point() {
        let p = GeoPoint::new_unchecked(48.86, 2.33);
        assert_eq!(Centroid::mean(&[p]).unwrap().position, p);
    }

    #[test]
    fn mean_of_symmetric_points_is_the_middle() {
        let pts = vec![
            GeoPoint::new_unchecked(48.0, 2.0),
            GeoPoint::new_unchecked(50.0, 4.0),
        ];
        let c = Centroid::mean(&pts).unwrap().position;
        assert!((c.lat - 49.0).abs() < 1e-12);
        assert!((c.lon - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_respects_weights() {
        let pts = vec![
            GeoPoint::new_unchecked(48.0, 2.0),
            GeoPoint::new_unchecked(50.0, 4.0),
        ];
        let c = weighted_centroid(&pts, &[3.0, 1.0]).unwrap();
        assert!((c.lat - 48.5).abs() < 1e-12);
        assert!((c.lon - 2.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_equal_weights_matches_mean() {
        let pts = vec![
            GeoPoint::new_unchecked(48.0, 2.0),
            GeoPoint::new_unchecked(50.0, 4.0),
            GeoPoint::new_unchecked(49.0, 3.0),
        ];
        let w = vec![1.0; pts.len()];
        let a = weighted_centroid(&pts, &w).unwrap();
        let b = Centroid::mean(&pts).unwrap().position;
        assert!((a.lat - b.lat).abs() < 1e-12);
        assert!((a.lon - b.lon).abs() < 1e-12);
    }

    #[test]
    fn weighted_centroid_rejects_bad_inputs() {
        let pts = vec![GeoPoint::new_unchecked(48.0, 2.0)];
        assert!(weighted_centroid(&pts, &[]).is_none());
        assert!(weighted_centroid(&[], &[]).is_none());
        assert!(weighted_centroid(&pts, &[0.0]).is_none());
    }
}
