//! Geographic distance functions.
//!
//! The paper approximates Haversine distances with equirectangular
//! calculations "to gain performance", reporting a 30× speed-up with only
//! 0.1% precision loss for intra-city distances (§3.2). Both are implemented
//! here so the ablation benchmark (`ablation_distance`) can reproduce that
//! claim, and so the property tests can bound the approximation error.

use crate::point::GeoPoint;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG value).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Which distance function to use when evaluating the objective function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Exact great-circle distance.
    Haversine,
    /// Equirectangular approximation (the paper's default).
    #[default]
    Equirectangular,
}

impl DistanceMetric {
    /// Distance between two points in kilometres under this metric.
    #[must_use]
    pub fn distance_km(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        match self {
            DistanceMetric::Haversine => haversine_km(a, b),
            DistanceMetric::Equirectangular => equirectangular_km(a, b),
        }
    }
}

/// Exact great-circle (Haversine) distance in kilometres.
#[must_use]
pub fn haversine_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat_rad(), a.lon_rad());
    let (lat2, lon2) = (b.lat_rad(), b.lon_rad());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let s = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * s.sqrt().asin()
}

/// Equirectangular approximation of the great-circle distance in kilometres.
///
/// Projects the two points onto a plane using the mean latitude as the
/// scaling factor for longitude, then takes the planar Euclidean distance.
/// Accurate to well under 0.1% for the intra-city distances (a few tens of
/// kilometres) GroupTravel works with.
#[must_use]
pub fn equirectangular_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let mean_lat = ((a.lat + b.lat) / 2.0).to_radians();
    let x = (b.lon_rad() - a.lon_rad()) * mean_lat.cos();
    let y = b.lat_rad() - a.lat_rad();
    EARTH_RADIUS_KM * (x * x + y * y).sqrt()
}

/// Squared equirectangular distance (kilometres squared).
///
/// Useful when only distance *comparisons* are needed (e.g. nearest-neighbour
/// lookups inside the clustering loop) because it avoids the square root.
#[must_use]
pub fn equirectangular_km_sq(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let mean_lat = ((a.lat + b.lat) / 2.0).to_radians();
    let x = (b.lon_rad() - a.lon_rad()) * mean_lat.cos();
    let y = b.lat_rad() - a.lat_rad();
    let d = EARTH_RADIUS_KM * EARTH_RADIUS_KM;
    d * (x * x + y * y)
}

/// Rescales raw kilometre distances into `[0, 1]` by dividing by the largest
/// observed distance, exactly as the paper does before plugging distances
/// into the objective function (Eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceNormalizer {
    max_km: f64,
    metric: DistanceMetric,
}

impl DistanceNormalizer {
    /// Builds a normalizer whose scale is the maximum pairwise distance over
    /// `points` under `metric`.
    ///
    /// With fewer than two points (or all points coincident) the scale falls
    /// back to 1 km so that normalization is a no-op rather than a division
    /// by zero.
    #[must_use]
    pub fn from_points(points: &[GeoPoint], metric: DistanceMetric) -> Self {
        let mut max_km: f64 = 0.0;
        for (idx, a) in points.iter().enumerate() {
            for b in &points[idx + 1..] {
                let d = metric.distance_km(a, b);
                if d > max_km {
                    max_km = d;
                }
            }
        }
        Self::with_scale(max_km, metric)
    }

    /// Builds a normalizer with an explicit maximum distance in kilometres.
    #[must_use]
    pub fn with_scale(max_km: f64, metric: DistanceMetric) -> Self {
        let max_km = if max_km > f64::EPSILON { max_km } else { 1.0 };
        Self { max_km, metric }
    }

    /// The scale (largest observed distance) in kilometres.
    #[must_use]
    pub fn scale_km(&self) -> f64 {
        self.max_km
    }

    /// The underlying metric.
    #[must_use]
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// Normalized distance in `[0, 1]` (clamped: points farther apart than the
    /// observed maximum saturate at 1).
    #[must_use]
    pub fn normalized(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        (self.metric.distance_km(a, b) / self.max_km).clamp(0.0, 1.0)
    }

    /// Geographic *similarity* `1 - normalized distance`, the quantity the
    /// objective function actually maximizes.
    #[must_use]
    pub fn similarity(&self, a: &GeoPoint, b: &GeoPoint) -> f64 {
        1.0 - self.normalized(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris_louvre() -> GeoPoint {
        GeoPoint::new_unchecked(48.8606, 2.3376)
    }

    fn paris_eiffel() -> GeoPoint {
        GeoPoint::new_unchecked(48.8584, 2.2945)
    }

    fn barcelona_sagrada() -> GeoPoint {
        GeoPoint::new_unchecked(41.4036, 2.1744)
    }

    #[test]
    fn haversine_zero_for_identical_points() {
        let p = paris_louvre();
        assert!(haversine_km(&p, &p).abs() < 1e-12);
        assert!(equirectangular_km(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn haversine_is_symmetric() {
        let a = paris_louvre();
        let b = barcelona_sagrada();
        assert!((haversine_km(&a, &b) - haversine_km(&b, &a)).abs() < 1e-9);
        assert!((equirectangular_km(&a, &b) - equirectangular_km(&b, &a)).abs() < 1e-9);
    }

    #[test]
    fn louvre_to_eiffel_is_about_three_km() {
        let d = haversine_km(&paris_louvre(), &paris_eiffel());
        assert!((2.9..3.5).contains(&d), "expected ~3.2 km, got {d}");
    }

    #[test]
    fn paris_to_barcelona_is_about_830_km() {
        let d = haversine_km(&paris_louvre(), &barcelona_sagrada());
        assert!((800.0..870.0).contains(&d), "got {d}");
    }

    #[test]
    fn equirectangular_close_to_haversine_within_city() {
        let a = paris_louvre();
        let b = paris_eiffel();
        let h = haversine_km(&a, &b);
        let e = equirectangular_km(&a, &b);
        let rel_err = (h - e).abs() / h;
        assert!(rel_err < 0.001, "relative error {rel_err} exceeds 0.1%");
    }

    #[test]
    fn squared_distance_matches_square_of_distance() {
        let a = paris_louvre();
        let b = paris_eiffel();
        let d = equirectangular_km(&a, &b);
        let d2 = equirectangular_km_sq(&a, &b);
        assert!((d * d - d2).abs() < 1e-9);
    }

    #[test]
    fn metric_dispatch() {
        let a = paris_louvre();
        let b = paris_eiffel();
        assert_eq!(
            DistanceMetric::Haversine.distance_km(&a, &b),
            haversine_km(&a, &b)
        );
        assert_eq!(
            DistanceMetric::Equirectangular.distance_km(&a, &b),
            equirectangular_km(&a, &b)
        );
    }

    #[test]
    fn normalizer_maps_max_pair_to_one() {
        let pts = vec![paris_louvre(), paris_eiffel(), barcelona_sagrada()];
        let norm = DistanceNormalizer::from_points(&pts, DistanceMetric::Equirectangular);
        let d = norm.normalized(&paris_louvre(), &barcelona_sagrada());
        assert!((d - 1.0).abs() < 1e-9);
        assert!(norm.normalized(&paris_louvre(), &paris_eiffel()) < 0.01);
    }

    #[test]
    fn normalizer_similarity_is_one_minus_distance() {
        let pts = vec![paris_louvre(), paris_eiffel(), barcelona_sagrada()];
        let norm = DistanceNormalizer::from_points(&pts, DistanceMetric::Equirectangular);
        let a = paris_louvre();
        let b = paris_eiffel();
        assert!((norm.similarity(&a, &b) - (1.0 - norm.normalized(&a, &b))).abs() < 1e-12);
    }

    #[test]
    fn normalizer_degenerate_inputs_do_not_divide_by_zero() {
        let norm = DistanceNormalizer::from_points(&[], DistanceMetric::Equirectangular);
        assert_eq!(norm.scale_km(), 1.0);
        let single = DistanceNormalizer::from_points(&[paris_louvre()], DistanceMetric::Haversine);
        assert_eq!(single.scale_km(), 1.0);
        let p = paris_louvre();
        assert_eq!(single.normalized(&p, &p), 0.0);
    }

    #[test]
    fn normalizer_clamps_distances_beyond_scale() {
        let norm = DistanceNormalizer::with_scale(1.0, DistanceMetric::Haversine);
        let d = norm.normalized(&paris_louvre(), &barcelona_sagrada());
        assert_eq!(d, 1.0);
    }
}
