//! A uniform spatial grid index over geographic points.
//!
//! The serving engine answers "which POIs are near this centroid / inside
//! this rectangle" for every composite item of every request; the seed's
//! linear scans are O(n) per question. [`GridIndex`] buckets points into an
//! `rows × cols` lattice over their bounding box so a query only visits the
//! cells its search region overlaps — O(cells touched + matches) instead of
//! O(n).
//!
//! All queries are **exact**: the cell lattice is only a prefilter, every
//! candidate is checked against the true predicate before being returned, so
//! results are always identical to a brute-force scan (the property tests in
//! `tests/prop_geo.rs` enforce this for random rectangles, radii, and k-NN
//! queries). Rectangle/radius results come back sorted ascending by index;
//! [`GridIndex::k_nearest`] results by `(distance, index)` — both orders
//! deterministic and identical to the brute-force reference.

use crate::bbox::BoundingBox;
use crate::distance::DistanceMetric;
use crate::point::GeoPoint;
use std::collections::BinaryHeap;

/// Kilometres per degree of latitude (and of longitude at the equator).
const KM_PER_DEG: f64 = crate::distance::EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;

/// A candidate neighbour in the bounded k-NN heap, ordered by
/// `(distance, index)` so the heap's maximum is the *worst* of the current
/// k best and ties always resolve to the lower index.
#[derive(PartialEq)]
struct Neighbor {
    dist_km: f64,
    index: usize,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Distances are finite and non-negative, so total_cmp agrees with
        // the partial order the brute-force comparison uses.
        self.dist_km
            .total_cmp(&other.dist_km)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A uniform grid over a point set, indexing points by cell.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BoundingBox,
    rows: usize,
    cols: usize,
    cell_lat: f64,
    cell_lon: f64,
    /// Row-major cells, each holding indices into `points`.
    cells: Vec<Vec<u32>>,
    points: Vec<GeoPoint>,
}

impl GridIndex {
    /// Builds a grid sized `⌈√n⌉ × ⌈√n⌉` over the points' bounding box — a
    /// good default that keeps expected cell occupancy constant.
    #[must_use]
    pub fn build(points: &[GeoPoint]) -> Self {
        let side = (points.len() as f64).sqrt().ceil().max(1.0) as usize;
        Self::with_resolution(points, side, side)
    }

    /// Builds a grid with an explicit `rows × cols` resolution (both clamped
    /// to at least 1).
    #[must_use]
    pub fn with_resolution(points: &[GeoPoint], rows: usize, cols: usize) -> Self {
        let rows = rows.max(1);
        let cols = cols.max(1);
        let bbox = BoundingBox::from_points(points)
            .unwrap_or_else(|| BoundingBox::new(0.0, 0.0, 0.0, 0.0));
        // Degenerate spans (single point, collinear points) get a tiny
        // positive extent so every point maps to a valid cell.
        let cell_lat = (bbox.lat_span() / rows as f64).max(f64::EPSILON);
        let cell_lon = (bbox.lon_span() / cols as f64).max(f64::EPSILON);
        let mut cells = vec![Vec::new(); rows * cols];
        let mut index = Self {
            bbox,
            rows,
            cols,
            cell_lat,
            cell_lon,
            cells: Vec::new(),
            points: points.to_vec(),
        };
        for (i, p) in points.iter().enumerate() {
            let (r, c) = index.cell_of(p);
            cells[r * cols + c].push(i as u32);
        }
        index.cells = cells;
        index
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The grid resolution as `(rows, cols)`.
    #[must_use]
    pub fn resolution(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The indexed points, in insertion order.
    #[must_use]
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// The bounding box the lattice covers.
    #[must_use]
    pub fn bounding_box(&self) -> BoundingBox {
        self.bbox
    }

    /// The cell coordinates of a point (clamped onto the lattice, so points
    /// on the max edges land in the last row/column).
    fn cell_of(&self, p: &GeoPoint) -> (usize, usize) {
        let r = ((p.lat - self.bbox.min_lat) / self.cell_lat) as usize;
        let c = ((p.lon - self.bbox.min_lon) / self.cell_lon) as usize;
        (r.min(self.rows - 1), c.min(self.cols - 1))
    }

    /// Indices of all points inside `query` (inclusive edges, like
    /// [`BoundingBox::contains`]), sorted ascending.
    ///
    /// Exactly equivalent to filtering all points through
    /// `query.contains(p)`.
    #[must_use]
    pub fn within_bbox(&self, query: &BoundingBox) -> Vec<usize> {
        if self.points.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<usize> = self
            .candidate_cells(query)
            .filter(|&i| query.contains(&self.points[i]))
            .collect();
        out.sort_unstable();
        out
    }

    /// Indices of all points within `radius_km` of `center` under `metric`
    /// (inclusive), sorted ascending.
    ///
    /// Exactly equivalent to filtering all points through
    /// `metric.distance_km(center, p) <= radius_km`.
    #[must_use]
    pub fn within_radius_km(
        &self,
        center: &GeoPoint,
        radius_km: f64,
        metric: DistanceMetric,
    ) -> Vec<usize> {
        if self.points.is_empty() || radius_km < 0.0 {
            return Vec::new();
        }
        let (dlat, dlon) = radius_degrees(center, radius_km);
        // The great-circle distance wraps at the ±180° meridian, so a search
        // band reaching past it must also cover the far side's longitudes.
        // One or two non-wrapping boxes cover every case; the exact per-point
        // filter below makes overlap harmless (dedup at the end).
        let (min_lat, max_lat) = (center.lat - dlat, center.lat + dlat);
        let mut searches = Vec::with_capacity(2);
        if dlon >= 180.0 {
            searches.push(BoundingBox::new(min_lat, max_lat, -180.0, 180.0));
        } else {
            let (lon_lo, lon_hi) = (center.lon - dlon, center.lon + dlon);
            searches.push(BoundingBox::new(
                min_lat,
                max_lat,
                lon_lo.max(-180.0),
                lon_hi.min(180.0),
            ));
            if lon_lo < -180.0 {
                searches.push(BoundingBox::new(min_lat, max_lat, lon_lo + 360.0, 180.0));
            }
            if lon_hi > 180.0 {
                searches.push(BoundingBox::new(min_lat, max_lat, -180.0, lon_hi - 360.0));
            }
        }
        let mut out = Vec::new();
        for search in &searches {
            for i in self.candidate_cells(search) {
                if metric.distance_km(center, &self.points[i]) <= radius_km {
                    out.push(i);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The `k` indexed points nearest to `center` under `metric`, sorted by
    /// `(distance, index)` ascending — **exactly** the first `k` entries of a
    /// brute-force scan sorted the same way (ties always resolve to the
    /// lower index, i.e. insertion/catalog order).
    ///
    /// The search expands square rings of cells outward from the centre
    /// cell, keeps the best `k` seen so far in a bounded max-heap, and stops
    /// as soon as a lower bound on the distance to anything in an unvisited
    /// ring strictly exceeds the current k-th best distance (see
    /// [`GridIndex::ring_lower_bound_km`]); the bound is conservative under
    /// both metrics and across the antimeridian, so early termination never
    /// changes the answer.
    #[must_use]
    pub fn k_nearest(&self, center: &GeoPoint, k: usize, metric: DistanceMetric) -> Vec<usize> {
        self.k_nearest_filtered(center, k, metric, |_| true)
    }

    /// [`GridIndex::k_nearest`] restricted to points accepted by `accept`:
    /// the exact `k` nearest among `{i | accept(i)}`.
    ///
    /// The filter runs before the distance computation, so exclusion sets
    /// and attribute predicates (e.g. "only POIs of this type") keep their
    /// full pruning power — rejected points never occupy heap slots.
    #[must_use]
    pub fn k_nearest_filtered(
        &self,
        center: &GeoPoint,
        k: usize,
        metric: DistanceMetric,
        mut accept: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        if self.points.is_empty() || k == 0 {
            return Vec::new();
        }
        // More than n neighbours can never come back; capping here keeps a
        // huge caller-supplied k (e.g. usize::MAX for "all of them") from
        // over-allocating the heap.
        let k = k.min(self.points.len());
        let clamped = self.bbox.clamp(center);
        let (r0, c0) = self.cell_of(&clamped);
        // Rings beyond this cover no cells of the lattice.
        let last_ring = r0.max(self.rows - 1 - r0).max(c0.max(self.cols - 1 - c0));
        let mut heap: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
        for ring in 0..=last_ring {
            for (r, c) in ring_cells(r0, c0, ring, self.rows, self.cols) {
                for &i in &self.cells[r * self.cols + c] {
                    let index = i as usize;
                    if !accept(index) {
                        continue;
                    }
                    let dist_km = metric.distance_km(center, &self.points[index]);
                    let candidate = Neighbor { dist_km, index };
                    if heap.len() < k {
                        heap.push(candidate);
                    } else if candidate < *heap.peek().expect("heap holds k entries") {
                        heap.pop();
                        heap.push(candidate);
                    }
                }
            }
            // Everything not yet visited sits in a ring beyond `ring`. If
            // even the closest conceivable such point is *strictly* farther
            // than the current k-th best, no future point can enter the heap
            // — not even on a tie, since its distance would exceed the bound
            // and therefore the k-th best too.
            if heap.len() == k {
                let worst = heap.peek().expect("heap holds k entries").dist_km;
                if self.ring_lower_bound_km(center, ring, metric) > worst {
                    break;
                }
            }
        }
        let mut best = heap.into_vec();
        best.sort_unstable();
        best.into_iter().map(|n| n.index).collect()
    }

    /// A lower bound (km) on the distance from `center` to any indexed point
    /// lying in a cell at Chebyshev ring **greater than** `ring` around the
    /// centre cell, valid under `metric`.
    ///
    /// Such a point is at least `ring` whole cells away in latitude *or* in
    /// longitude from `center` (from the clamped centre when `center` is
    /// outside the lattice — the true centre is then even farther out, so
    /// the bound holds a fortiori). Each axis yields a metric-specific
    /// bound, and the minimum of the two is returned:
    ///
    /// * latitude: both metrics satisfy `d ≥ R·|Δlat|` (the central angle is
    ///   at least the latitude difference);
    /// * longitude, equirectangular: `d ≥ R·|Δlon|·cos(mean lat)`, with the
    ///   cosine minimized over the latitudes the lattice can hold (the
    ///   metric does **not** wrap at ±180°, so the raw separation is used);
    /// * longitude, Haversine: the separation is first folded across the
    ///   antimeridian (the wrapped separation is bounded below by
    ///   `min(sep, 360° − max-sep-to-the-lattice)`), then
    ///   `d ≥ 2R·asin(√(cos φ₁ cos φ₂)·sin(Δlon/2))` with the cosines again
    ///   minimized over reachable latitudes.
    ///
    /// The result is shrunk by a relative 1e-9 so floating-point slack in
    /// the bound arithmetic can never make it overtake a true distance.
    fn ring_lower_bound_km(&self, center: &GeoPoint, ring: usize, metric: DistanceMetric) -> f64 {
        let sep_lat = ring as f64 * self.cell_lat;
        let sep_lon = ring as f64 * self.cell_lon;
        let lat_bound = KM_PER_DEG * sep_lat;
        let lon_bound = match metric {
            DistanceMetric::Equirectangular => {
                let lo = ((center.lat + self.bbox.min_lat) / 2.0).to_radians().cos();
                let hi = ((center.lat + self.bbox.max_lat) / 2.0).to_radians().cos();
                KM_PER_DEG * sep_lon * lo.min(hi).max(0.0)
            }
            DistanceMetric::Haversine => {
                let max_sep = (center.lon - self.bbox.min_lon)
                    .abs()
                    .max((center.lon - self.bbox.max_lon).abs());
                let wrapped = sep_lon.min(360.0 - max_sep).max(0.0);
                let band_cos = self
                    .bbox
                    .min_lat
                    .to_radians()
                    .cos()
                    .min(self.bbox.max_lat.to_radians().cos())
                    .max(0.0);
                let cos_term = (center.lat.to_radians().cos().max(0.0) * band_cos).sqrt();
                let sine = (cos_term.min(1.0) * (wrapped.to_radians() / 2.0).sin()).clamp(0.0, 1.0);
                2.0 * crate::distance::EARTH_RADIUS_KM * sine.asin()
            }
        };
        lat_bound.min(lon_bound) * (1.0 - 1e-9)
    }

    /// Iterates point indices in cells overlapping `search` (an unfiltered
    /// superset of any query against that region).
    fn candidate_cells(&self, search: &BoundingBox) -> impl Iterator<Item = usize> + '_ {
        let empty = search.max_lat < self.bbox.min_lat
            || search.min_lat > self.bbox.max_lat
            || search.max_lon < self.bbox.min_lon
            || search.min_lon > self.bbox.max_lon;
        let (lo, hi) = if empty {
            ((1, 1), (0, 0)) // empty iteration
        } else {
            (
                self.cell_of(
                    &self
                        .bbox
                        .clamp(&GeoPoint::new_unchecked(search.min_lat, search.min_lon)),
                ),
                self.cell_of(
                    &self
                        .bbox
                        .clamp(&GeoPoint::new_unchecked(search.max_lat, search.max_lon)),
                ),
            )
        };
        (lo.0..=hi.0)
            .flat_map(move |r| (lo.1..=hi.1).map(move |c| r * self.cols + c))
            .flat_map(|cell| self.cells[cell].iter().map(|&i| i as usize))
    }
}

/// The latitude/longitude half-spans (degrees) of a band guaranteed to
/// contain every point within `radius_km` of `center` under either supported
/// metric (before accounting for longitude wrap-around, which the caller
/// handles by splitting the band at ±180°).
fn radius_degrees(center: &GeoPoint, radius_km: f64) -> (f64, f64) {
    // Margin absorbs the difference between the metrics and floating-point
    // slack; the exact per-point filter discards the excess.
    let margin = 1.0 + 1e-9;
    let dlat = radius_km * margin / KM_PER_DEG;
    // Longitude degrees shrink with cos(lat); use the smallest cosine in the
    // latitude band the radius can reach. Near the poles (or for radii
    // spanning them) fall back to the whole longitude range.
    let band_lo = (center.lat - dlat).max(-90.0).to_radians().cos();
    let band_hi = (center.lat + dlat).min(90.0).to_radians().cos();
    let min_cos = band_lo.min(band_hi);
    let dlon = if min_cos <= 1e-6 {
        360.0
    } else {
        (radius_km * margin / (KM_PER_DEG * min_cos)).min(360.0)
    };
    (dlat, dlon)
}

/// The cells of the square ring at Chebyshev distance `ring` around
/// `(r0, c0)`, clipped to the lattice. Enumerates only the perimeter —
/// top and bottom rows plus the side columns — so each ring costs
/// O(ring) cell-visits, not O(ring²).
fn ring_cells(r0: usize, c0: usize, ring: usize, rows: usize, cols: usize) -> Vec<(usize, usize)> {
    let (r0, c0, ring) = (r0 as i64, c0 as i64, ring as i64);
    let mut cells = Vec::new();
    let push = |r: i64, c: i64, cells: &mut Vec<(usize, usize)>| {
        if r >= 0 && (r as usize) < rows && c >= 0 && (c as usize) < cols {
            cells.push((r as usize, c as usize));
        }
    };
    if ring == 0 {
        push(r0, c0, &mut cells);
        return cells;
    }
    for dc in -ring..=ring {
        push(r0 - ring, c0 + dc, &mut cells); // top edge
        push(r0 + ring, c0 + dc, &mut cells); // bottom edge
    }
    for dr in (-ring + 1)..ring {
        push(r0 + dr, c0 - ring, &mut cells); // left edge (corners excluded)
        push(r0 + dr, c0 + ring, &mut cells); // right edge
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scatter(n: usize) -> Vec<GeoPoint> {
        // A deterministic pseudo-random scatter over a Paris-sized box.
        let mut points = Vec::with_capacity(n);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let lat = 48.80 + (x >> 32) as f64 / u32::MAX as f64 * 0.12;
            let lon = 2.25 + (x & 0xffff_ffff) as f64 / u32::MAX as f64 * 0.20;
            points.push(GeoPoint::new_unchecked(lat, lon));
        }
        points
    }

    fn brute_bbox(points: &[GeoPoint], bbox: &BoundingBox) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| bbox.contains(p))
            .map(|(i, _)| i)
            .collect()
    }

    fn brute_radius(
        points: &[GeoPoint],
        center: &GeoPoint,
        radius_km: f64,
        metric: DistanceMetric,
    ) -> Vec<usize> {
        points
            .iter()
            .enumerate()
            .filter(|(_, p)| metric.distance_km(center, p) <= radius_km)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn bbox_query_matches_brute_force() {
        let points = scatter(500);
        let index = GridIndex::build(&points);
        let query = BoundingBox::new(48.84, 48.88, 2.30, 2.38);
        assert_eq!(index.within_bbox(&query), brute_bbox(&points, &query));
    }

    #[test]
    fn radius_query_matches_brute_force_under_both_metrics() {
        let points = scatter(400);
        let index = GridIndex::build(&points);
        let center = GeoPoint::new_unchecked(48.86, 2.33);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            for radius in [0.0, 0.5, 2.0, 50.0] {
                assert_eq!(
                    index.within_radius_km(&center, radius, metric),
                    brute_radius(&points, &center, radius, metric),
                    "radius {radius} metric {metric:?}"
                );
            }
        }
    }

    #[test]
    fn disjoint_query_is_empty() {
        let points = scatter(100);
        let index = GridIndex::build(&points);
        let far = BoundingBox::new(10.0, 11.0, 10.0, 11.0);
        assert!(index.within_bbox(&far).is_empty());
        assert!(index
            .within_radius_km(
                &GeoPoint::new_unchecked(0.0, 0.0),
                1.0,
                DistanceMetric::Haversine
            )
            .is_empty());
    }

    #[test]
    fn whole_world_query_returns_everything() {
        let points = scatter(200);
        let index = GridIndex::build(&points);
        let world = BoundingBox::new(-90.0, 90.0, -180.0, 180.0);
        assert_eq!(
            index.within_bbox(&world),
            (0..points.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn empty_and_singleton_indexes_work() {
        let empty = GridIndex::build(&[]);
        assert!(empty.is_empty());
        assert!(empty
            .within_bbox(&BoundingBox::new(0.0, 1.0, 0.0, 1.0))
            .is_empty());
        let single = GridIndex::build(&[GeoPoint::new_unchecked(48.86, 2.33)]);
        assert_eq!(single.len(), 1);
        let hit = single.within_radius_km(
            &GeoPoint::new_unchecked(48.86, 2.33),
            0.1,
            DistanceMetric::Haversine,
        );
        assert_eq!(hit, vec![0]);
    }

    #[test]
    fn radius_query_wraps_across_the_antimeridian() {
        // Two points 0.2° of longitude apart but on opposite sides of ±180°:
        // ~22 km by great circle, nearly a full circumference by naive
        // longitude difference.
        let points = vec![
            GeoPoint::new_unchecked(0.0, 179.9),
            GeoPoint::new_unchecked(0.0, -179.9),
            GeoPoint::new_unchecked(0.0, 0.0),
        ];
        let index = GridIndex::build(&points);
        let center = GeoPoint::new_unchecked(0.0, 179.95);
        let hits = index.within_radius_km(&center, 20.0, DistanceMetric::Haversine);
        assert_eq!(
            hits,
            brute_radius(&points, &center, 20.0, DistanceMetric::Haversine)
        );
        assert_eq!(hits, vec![0, 1], "both near-antimeridian points are hits");

        // Mirror case: the centre sits just west of the antimeridian.
        let center = GeoPoint::new_unchecked(0.0, -179.95);
        let hits = index.within_radius_km(&center, 20.0, DistanceMetric::Haversine);
        assert_eq!(
            hits,
            brute_radius(&points, &center, 20.0, DistanceMetric::Haversine)
        );
        assert_eq!(hits, vec![0, 1]);
    }

    fn brute_knn(
        points: &[GeoPoint],
        center: &GeoPoint,
        k: usize,
        metric: DistanceMetric,
    ) -> Vec<usize> {
        let mut scored: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (metric.distance_km(center, p), i))
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn k_nearest_matches_brute_force_under_both_metrics() {
        let points = scatter(400);
        let index = GridIndex::build(&points);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            for center in [
                GeoPoint::new_unchecked(48.86, 2.33), // inside the box
                GeoPoint::new_unchecked(48.70, 2.00), // outside, south-west
                GeoPoint::new_unchecked(50.00, 3.00), // outside, north-east
            ] {
                for k in [1, 2, 7, 50, 399, 400, 1000] {
                    assert_eq!(
                        index.k_nearest(&center, k, metric),
                        brute_knn(&points, &center, k, metric),
                        "k {k} metric {metric:?} center {center:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn k_nearest_breaks_ties_by_index() {
        // Five copies of the same point: ties must come back in index order.
        let p = GeoPoint::new_unchecked(48.86, 2.33);
        let points = vec![p; 5];
        let index = GridIndex::build(&points);
        assert_eq!(
            index.k_nearest(&p, 3, DistanceMetric::Haversine),
            vec![0, 1, 2]
        );
        assert_eq!(
            index.k_nearest(&p, 9, DistanceMetric::Equirectangular),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn k_nearest_degenerate_inputs() {
        let empty = GridIndex::build(&[]);
        assert!(empty
            .k_nearest(
                &GeoPoint::new_unchecked(0.0, 0.0),
                3,
                DistanceMetric::Haversine
            )
            .is_empty());
        let points = scatter(10);
        let index = GridIndex::build(&points);
        assert!(index
            .k_nearest(&points[0], 0, DistanceMetric::Haversine)
            .is_empty());
        // "All of them" via a huge k must return every point, not panic on
        // heap allocation.
        let all = index.k_nearest(&points[0], usize::MAX, DistanceMetric::Haversine);
        assert_eq!(all.len(), points.len());
    }

    #[test]
    fn k_nearest_filtered_skips_rejected_points() {
        let points = scatter(200);
        let index = GridIndex::build(&points);
        let center = GeoPoint::new_unchecked(48.86, 2.33);
        let metric = DistanceMetric::Equirectangular;
        // Only even indices are eligible.
        let got = index.k_nearest_filtered(&center, 10, metric, |i| i % 2 == 0);
        let want: Vec<usize> = brute_knn(&points, &center, points.len(), metric)
            .into_iter()
            .filter(|i| i % 2 == 0)
            .take(10)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn k_nearest_wraps_across_the_antimeridian() {
        // The nearest neighbour of a point just east of ±180° lies just
        // west of it under Haversine; a termination bound using raw
        // longitude separations would stop before reaching it.
        let points = vec![
            GeoPoint::new_unchecked(0.0, -179.9), // ~22 km away (wrapped)
            GeoPoint::new_unchecked(0.0, 170.0),  // ~1100 km away
            GeoPoint::new_unchecked(0.0, 0.0),
        ];
        let index = GridIndex::build(&points);
        let center = GeoPoint::new_unchecked(0.0, 179.95);
        assert_eq!(
            index.k_nearest(&center, 2, DistanceMetric::Haversine),
            brute_knn(&points, &center, 2, DistanceMetric::Haversine)
        );
        assert_eq!(
            index.k_nearest(&center, 2, DistanceMetric::Haversine),
            vec![0, 1]
        );
        // Equirectangular does not wrap: the raw-longitude order holds.
        assert_eq!(
            index.k_nearest(&center, 2, DistanceMetric::Equirectangular),
            brute_knn(&points, &center, 2, DistanceMetric::Equirectangular)
        );
        assert_eq!(
            index.k_nearest(&center, 2, DistanceMetric::Equirectangular),
            vec![1, 2]
        );
    }

    #[test]
    fn coincident_points_all_land_in_one_cell() {
        let p = GeoPoint::new_unchecked(48.86, 2.33);
        let points = vec![p; 9];
        let index = GridIndex::build(&points);
        let hits = index.within_radius_km(&p, 0.001, DistanceMetric::Equirectangular);
        assert_eq!(hits.len(), 9);
    }
}
