//! A minimal FNV-1a streaming hasher.
//!
//! Catalog fingerprints and model-configuration cache keys all need the same
//! thing: a cheap, deterministic, well-mixed 64-bit digest of a byte stream,
//! stable across runs and platforms (unlike `std`'s `DefaultHasher`, which
//! is randomly keyed per process). This lives in the geo crate only because
//! it is the workspace's common root dependency.

/// Streaming FNV-1a over bytes.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Feeds an `f64` by exact bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Feeds a length-prefixed string (prefixing prevents concatenation
    /// collisions between adjacent fields).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64).write(s.as_bytes())
    }

    /// The digest so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") per the reference implementation.
        assert_eq!(Fnv1a::new().write(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_order_and_boundaries_matter() {
        let ab_c = Fnv1a::new().write_str("ab").write_str("c").finish();
        let a_bc = Fnv1a::new().write_str("a").write_str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn floats_hash_by_bits() {
        let zero = Fnv1a::new().write_f64(0.0).finish();
        let neg_zero = Fnv1a::new().write_f64(-0.0).finish();
        assert_ne!(zero, neg_zero);
    }
}
