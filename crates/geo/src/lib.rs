//! Geographic primitives for the GroupTravel reproduction.
//!
//! The paper (§3.2) measures geographic proximity of POIs with an
//! *equirectangular* approximation of the Haversine great-circle distance,
//! normalized by the largest observed distance. This crate provides:
//!
//! * [`GeoPoint`] — a latitude/longitude pair with validation helpers.
//! * [`distance`] — Haversine, equirectangular, and squared planar distances,
//!   plus a [`distance::DistanceNormalizer`] that rescales distances into
//!   `[0, 1]` the way the objective function in Eq. 1 expects.
//! * [`bbox`] — axis-aligned bounding boxes and the screen-style rectangle
//!   used by the `GENERATE(RECTANGLE(x, y, w, h))` customization operator.
//! * [`centroid`] — centroid math over weighted point sets, used by the fuzzy
//!   clustering substrate.
//! * [`grid`] — a uniform spatial grid index with exact rectangle/radius
//!   queries, the candidate-generation substrate of the serving engine.
//! * [`matrix`] — a row-major dense `f64` matrix, the flat storage behind
//!   the model-training hot paths (FCM memberships, LDA θ/φ).
//!
//! All distances are returned in kilometres unless stated otherwise.

pub mod bbox;
pub mod centroid;
pub mod distance;
pub mod grid;
pub mod hash;
pub mod matrix;
pub mod point;

pub use bbox::{BoundingBox, Rectangle};
pub use centroid::{weighted_centroid, Centroid};
pub use distance::{
    equirectangular_km, haversine_km, DistanceMetric, DistanceNormalizer, EARTH_RADIUS_KM,
};
pub use grid::GridIndex;
pub use hash::Fnv1a;
pub use matrix::DenseMatrix;
pub use point::GeoPoint;
