//! A minimal row-major dense matrix over `f64`.
//!
//! The model-training hot paths (fuzzy c-means memberships, LDA θ/φ, group
//! profile concatenations) previously stored `Vec<Vec<f64>>`: one heap
//! allocation per row, rows scattered across the heap, and a pointer chase
//! per access. [`DenseMatrix`] packs the same data into a single contiguous
//! buffer with a fixed stride, so a row is one cache-friendly slice and a
//! full sweep is a linear scan. It is deliberately tiny — just the storage
//! and row-access surface those paths need, not a linear-algebra library.

use serde::{Deserialize, Serialize};

/// A row-major dense `f64` matrix: one contiguous buffer, `cols` stride.
///
/// Invariant: `data.len() == rows * cols`. Degenerate shapes are
/// well-defined: a matrix with zero rows iterates no rows, and a matrix
/// with `rows > 0` but `cols == 0` iterates exactly `rows` empty slices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Iterator over the rows of a [`DenseMatrix`] as slices (including empty
/// slices for a zero-column matrix, which `chunks_exact` could not yield).
pub struct Rows<'a> {
    matrix: &'a DenseMatrix,
    range: std::ops::Range<usize>,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<&'a [f64]> {
        self.range.next().map(|r| self.matrix.row(r))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl DenseMatrix {
    /// A `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from equal-length rows. Returns an empty matrix for
    /// an empty input.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        let n = rows.len();
        for row in &rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: n,
            cols,
            data,
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the row stride).
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The `r`-th row as a slice.
    ///
    /// # Panics
    /// Panics if `r >= nrows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The `r`-th row as a mutable slice.
    ///
    /// # Panics
    /// Panics if `r >= nrows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The `r`-th row, or `None` when out of range (mirrors `slice::get`).
    #[must_use]
    pub fn get_row(&self, r: usize) -> Option<&[f64]> {
        (r < self.rows).then(|| self.row(r))
    }

    /// Iterates over the rows as slices — exactly [`DenseMatrix::nrows`]
    /// of them, even when the matrix has zero columns.
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            matrix: self,
            range: 0..self.rows,
        }
    }

    /// The whole buffer in row-major order.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole buffer in row-major order, mutably. Parallel writers
    /// split this into disjoint row chunks (`chunks_mut(rows * ncols())`)
    /// so each task owns a contiguous block of rows.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copies the matrix out as one `Vec` per row (compatibility helper for
    /// call sites that genuinely need owned rows).
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }
}

impl std::ops::Index<usize> for DenseMatrix {
    type Output = [f64];

    fn index(&self, r: usize) -> &[f64] {
        self.row(r)
    }
}

impl std::ops::IndexMut<usize> for DenseMatrix {
    fn index_mut(&mut self, r: usize) -> &mut [f64] {
        self.row_mut(r)
    }
}

impl<'a> IntoIterator for &'a DenseMatrix {
    type Item = &'a [f64];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_the_right_shape() {
        let m = DenseMatrix::zeros(3, 2);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 2);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = DenseMatrix::from_rows(rows.clone());
        assert_eq!(m.to_rows(), rows);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn empty_matrix_iterates_no_rows() {
        let m = DenseMatrix::from_rows(Vec::new());
        assert!(m.is_empty());
        assert_eq!(m.rows().count(), 0);
        assert_eq!((&m).into_iter().count(), 0);
    }

    #[test]
    fn zero_column_matrix_iterates_all_its_rows() {
        let m = DenseMatrix::zeros(3, 0);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.rows().count(), 3);
        assert!(m.rows().all(<[f64]>::is_empty));
        // from_rows/to_rows round-trips the degenerate shape too.
        let n = DenseMatrix::from_rows(vec![Vec::new(), Vec::new()]);
        assert_eq!(n.nrows(), 2);
        assert_eq!(n.to_rows(), vec![Vec::<f64>::new(), Vec::new()]);
    }

    #[test]
    fn row_mut_and_index_agree() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.row_mut(1)[2] = 7.0;
        assert_eq!(m[1][2], 7.0);
        m[0][0] = 1.0;
        assert_eq!(m.row(0)[0], 1.0);
    }

    #[test]
    fn get_row_bounds_check() {
        let m = DenseMatrix::zeros(2, 2);
        assert!(m.get_row(1).is_some());
        assert!(m.get_row(2).is_none());
    }

    #[test]
    fn rows_iterate_in_order() {
        let m = DenseMatrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]);
        let firsts: Vec<f64> = (&m).into_iter().map(|r| r[0]).collect();
        assert_eq!(firsts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_are_rejected() {
        let _ = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.fill(0.5);
        assert!(m.as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn serde_round_trip() {
        let m = DenseMatrix::from_rows(vec![vec![1.5, -2.0], vec![0.0, 4.25]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: DenseMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
