//! Latitude/longitude points.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point on the Earth's surface expressed as latitude and longitude in
/// decimal degrees.
///
/// Latitude is constrained to `[-90, 90]` and longitude to `[-180, 180]` by
/// [`GeoPoint::new`]; the unchecked constructor [`GeoPoint::new_unchecked`]
/// is available for internal callers that already validated their inputs
/// (e.g. centroid updates that stay inside a city bounding box).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in decimal degrees, positive north.
    pub lat: f64,
    /// Longitude in decimal degrees, positive east.
    pub lon: f64,
}

/// Error returned when constructing a [`GeoPoint`] from out-of-range values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoPointError {
    /// Latitude was outside `[-90, 90]` or not finite.
    InvalidLatitude,
    /// Longitude was outside `[-180, 180]` or not finite.
    InvalidLongitude,
}

impl fmt::Display for GeoPointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoPointError::InvalidLatitude => write!(f, "latitude must be finite and in [-90, 90]"),
            GeoPointError::InvalidLongitude => {
                write!(f, "longitude must be finite and in [-180, 180]")
            }
        }
    }
}

impl std::error::Error for GeoPointError {}

impl GeoPoint {
    /// Creates a validated point.
    ///
    /// # Errors
    /// Returns [`GeoPointError`] if either coordinate is not finite or falls
    /// outside the valid geographic range.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoPointError> {
        if !lat.is_finite() || !(-90.0..=90.0).contains(&lat) {
            return Err(GeoPointError::InvalidLatitude);
        }
        if !lon.is_finite() || !(-180.0..=180.0).contains(&lon) {
            return Err(GeoPointError::InvalidLongitude);
        }
        Ok(Self { lat, lon })
    }

    /// Creates a point without validating the coordinate ranges.
    #[must_use]
    pub fn new_unchecked(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Latitude in radians.
    #[must_use]
    pub fn lat_rad(&self) -> f64 {
        self.lat.to_radians()
    }

    /// Longitude in radians.
    #[must_use]
    pub fn lon_rad(&self) -> f64 {
        self.lon.to_radians()
    }

    /// Linear interpolation between `self` and `other`.
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`. Used by tests and by the
    /// synthetic city generator to lay POIs along streets.
    #[must_use]
    pub fn lerp(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_point_roundtrips() {
        let p = GeoPoint::new(48.8679, 2.3256).unwrap();
        assert!((p.lat - 48.8679).abs() < 1e-12);
        assert!((p.lon - 2.3256).abs() < 1e-12);
    }

    #[test]
    fn latitude_out_of_range_is_rejected() {
        assert_eq!(
            GeoPoint::new(91.0, 0.0).unwrap_err(),
            GeoPointError::InvalidLatitude
        );
        assert_eq!(
            GeoPoint::new(f64::NAN, 0.0).unwrap_err(),
            GeoPointError::InvalidLatitude
        );
    }

    #[test]
    fn longitude_out_of_range_is_rejected() {
        assert_eq!(
            GeoPoint::new(0.0, 180.5).unwrap_err(),
            GeoPointError::InvalidLongitude
        );
        assert_eq!(
            GeoPoint::new(0.0, f64::INFINITY).unwrap_err(),
            GeoPointError::InvalidLongitude
        );
    }

    #[test]
    fn boundary_values_are_accepted() {
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        assert!(GeoPoint::new(-90.0, -180.0).is_ok());
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = GeoPoint::new_unchecked(48.0, 2.0);
        let b = GeoPoint::new_unchecked(50.0, 4.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        let mid = a.lerp(&b, 0.5);
        assert!((mid.lat - 49.0).abs() < 1e-12);
        assert!((mid.lon - 3.0).abs() < 1e-12);
    }

    #[test]
    fn radian_conversion() {
        let p = GeoPoint::new_unchecked(180.0 / std::f64::consts::PI, 0.0);
        assert!((p.lat_rad() - 1.0).abs() < 1e-12);
        assert!((p.lon_rad()).abs() < 1e-12);
    }

    #[test]
    fn display_formats_four_decimals() {
        let p = GeoPoint::new_unchecked(48.86789, 2.32561);
        assert_eq!(format!("{p}"), "(48.8679, 2.3256)");
    }
}
