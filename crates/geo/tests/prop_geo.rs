//! Property-based tests for the geo crate: distance metrics and bounding
//! boxes must satisfy basic metric-space and containment invariants for any
//! city-scale input.

use grouptravel_geo::{
    equirectangular_km, haversine_km, BoundingBox, DistanceMetric, DistanceNormalizer, GeoPoint,
    GridIndex, Rectangle,
};
use proptest::prelude::*;

/// Points constrained to a Paris-sized box so the equirectangular
/// approximation guarantees apply (the paper only uses it within a city).
fn city_point() -> impl Strategy<Value = GeoPoint> {
    (48.80f64..48.92, 2.25f64..2.45).prop_map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon))
}

/// Points anywhere in Western Europe.
fn region_point() -> impl Strategy<Value = GeoPoint> {
    (36.0f64..55.0, -5.0f64..10.0).prop_map(|(lat, lon)| GeoPoint::new_unchecked(lat, lon))
}

/// Points straddling the ±180° antimeridian (Fiji-ish latitudes), where
/// naive longitude arithmetic breaks and Haversine wraps.
fn antimeridian_point() -> impl Strategy<Value = GeoPoint> {
    // Longitudes drawn from (178, 182) and folded into (178, 180] ∪
    // [-180, -178): both sides of the wrap are equally likely.
    (-20.0f64..-15.0, 178.0f64..182.0).prop_map(|(lat, lon)| {
        let lon = if lon >= 180.0 { lon - 360.0 } else { lon };
        GeoPoint::new_unchecked(lat, lon)
    })
}

/// The reference k-NN: full scan, sort by `(distance, index)`, take `k`.
/// Ties resolve to the lower index — the exact contract `GridIndex::k_nearest`
/// promises.
fn brute_knn(
    points: &[GeoPoint],
    center: &GeoPoint,
    k: usize,
    metric: DistanceMetric,
) -> Vec<usize> {
    let mut scored: Vec<(f64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (metric.distance_km(center, p), i))
        .collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    scored.into_iter().take(k).map(|(_, i)| i).collect()
}

proptest! {
    #[test]
    fn haversine_non_negative_and_symmetric(a in region_point(), b in region_point()) {
        let d1 = haversine_km(&a, &b);
        let d2 = haversine_km(&b, &a);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn haversine_identity_of_indiscernibles(a in region_point()) {
        prop_assert!(haversine_km(&a, &a).abs() < 1e-9);
    }

    #[test]
    fn haversine_triangle_inequality(a in region_point(), b in region_point(), c in region_point()) {
        let ab = haversine_km(&a, &b);
        let bc = haversine_km(&b, &c);
        let ac = haversine_km(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn equirectangular_within_point_one_percent_in_city(a in city_point(), b in city_point()) {
        let h = haversine_km(&a, &b);
        let e = equirectangular_km(&a, &b);
        // For coincident points both are ~0; otherwise bound the relative error.
        if h > 1e-6 {
            prop_assert!((h - e).abs() / h < 0.001, "h={h} e={e}");
        } else {
            prop_assert!(e < 1e-3);
        }
    }

    #[test]
    fn normalized_distance_in_unit_interval(
        pts in prop::collection::vec(city_point(), 2..20),
        a in city_point(),
        b in city_point(),
    ) {
        let norm = DistanceNormalizer::from_points(&pts, DistanceMetric::Equirectangular);
        let d = norm.normalized(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
        let s = norm.similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((d + s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bbox_from_points_contains_all_points(pts in prop::collection::vec(region_point(), 1..50)) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(p));
        }
    }

    #[test]
    fn bbox_clamp_always_lands_inside(
        pts in prop::collection::vec(region_point(), 1..20),
        q in region_point(),
    ) {
        let bb = BoundingBox::from_points(&pts).unwrap();
        prop_assert!(bb.contains(&bb.clamp(&q)));
    }

    #[test]
    fn rectangle_center_is_contained(x in -5.0f64..10.0, y in 36.0f64..55.0, w in 0.0f64..2.0, h in 0.0f64..2.0) {
        let r = Rectangle::new(x, y, w, h);
        prop_assert!(r.contains(&r.center()));
    }

    // ── Grid-index ↔ brute-force equivalence ───────────────────────────────
    //
    // The serving engine's candidate generation rides on these guarantees:
    // whatever rectangle or radius is asked of the grid, the answer must be
    // exactly the set a linear scan produces.

    #[test]
    fn grid_bbox_query_equals_brute_force(
        pts in prop::collection::vec(city_point(), 1..120),
        a in city_point(),
        b in city_point(),
    ) {
        let index = GridIndex::build(&pts);
        let query = BoundingBox::new(a.lat, b.lat, a.lon, b.lon);
        let brute: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(index.within_bbox(&query), brute);
    }

    #[test]
    fn grid_rectangle_query_equals_brute_force(
        pts in prop::collection::vec(region_point(), 1..80),
        x in -5.0f64..10.0,
        y in 36.0f64..55.0,
        w in 0.0f64..4.0,
        h in 0.0f64..4.0,
    ) {
        let index = GridIndex::build(&pts);
        let query = Rectangle::new(x, y, w, h).to_bbox();
        let brute: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| query.contains(p))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(index.within_bbox(&query), brute);
    }

    #[test]
    fn grid_radius_query_equals_brute_force(
        pts in prop::collection::vec(city_point(), 1..120),
        center in region_point(),
        radius_km in 0.0f64..50.0,
    ) {
        let index = GridIndex::build(&pts);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            let brute: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| metric.distance_km(&center, p) <= radius_km)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(
                index.within_radius_km(&center, radius_km, metric),
                brute,
                "metric {:?} radius {}",
                metric,
                radius_km
            );
        }
    }

    // ── Exact k-NN ≡ brute force (order *and* ties) ────────────────────────
    //
    // The customization operators (REPLACE suggestions, ADD candidates) and
    // the engine's candidate pools all ride on `k_nearest`: it must return
    // exactly the brute-force ranking, including tie resolution by index,
    // under both metrics, for centres inside and far outside the lattice.

    #[test]
    fn grid_k_nearest_equals_brute_force(
        pts in prop::collection::vec(city_point(), 1..120),
        center in region_point(),
        k in 1usize..140,
    ) {
        let index = GridIndex::build(&pts);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            prop_assert_eq!(
                index.k_nearest(&center, k, metric),
                brute_knn(&pts, &center, k, metric),
                "metric {:?} k {}", metric, k
            );
        }
    }

    #[test]
    fn grid_k_nearest_wraps_the_antimeridian(
        pts in prop::collection::vec(antimeridian_point(), 1..80),
        center in antimeridian_point(),
        k in 1usize..90,
    ) {
        let index = GridIndex::build(&pts);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            prop_assert_eq!(
                index.k_nearest(&center, k, metric),
                brute_knn(&pts, &center, k, metric),
                "metric {:?} k {}", metric, k
            );
        }
    }

    #[test]
    fn grid_k_nearest_orders_coincident_points_by_index(
        anchor in city_point(),
        copies in 1usize..40,
        extras in prop::collection::vec(city_point(), 0..40),
        k in 1usize..90,
    ) {
        // A catalog where many points coincide exactly: ties dominate, and
        // the grid must still reproduce the brute-force (distance, index)
        // order.
        let mut pts = vec![anchor; copies];
        pts.extend(extras);
        let index = GridIndex::build(&pts);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            prop_assert_eq!(
                index.k_nearest(&anchor, k, metric),
                brute_knn(&pts, &anchor, k, metric),
                "metric {:?} k {}", metric, k
            );
        }
    }

    #[test]
    fn grid_k_nearest_filtered_equals_filtered_brute_force(
        pts in prop::collection::vec(city_point(), 1..100),
        center in city_point(),
        k in 1usize..40,
        modulus in 2usize..5,
    ) {
        let index = GridIndex::build(&pts);
        for metric in [DistanceMetric::Haversine, DistanceMetric::Equirectangular] {
            let got = index.k_nearest_filtered(&center, k, metric, |i| i % modulus != 0);
            let want: Vec<usize> = brute_knn(&pts, &center, pts.len(), metric)
                .into_iter()
                .filter(|i| i % modulus != 0)
                .take(k)
                .collect();
            prop_assert_eq!(got, want, "metric {:?} k {} modulus {}", metric, k, modulus);
        }
    }

    #[test]
    fn grid_k_nearest_pools_are_well_formed(
        pts in prop::collection::vec(city_point(), 1..100),
        center in city_point(),
        k in 1usize..120,
    ) {
        // The candidate-pool shape the engine's provider relies on: exactly
        // min(k, n) results, unique, in range.
        let index = GridIndex::build(&pts);
        let pool = index.k_nearest(&center, k, DistanceMetric::Equirectangular);
        prop_assert_eq!(pool.len(), k.min(pts.len()));
        let mut sorted = pool.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pool.len());
        prop_assert!(pool.iter().all(|&i| i < pts.len()));
    }
}
