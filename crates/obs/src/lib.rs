//! Observability spine for the GroupTravel engine.
//!
//! Everything the engine and server need to *diagnose* themselves under
//! load, in one std-only crate (the build environment is offline, so there
//! is no `prometheus`/`tracing` to lean on):
//!
//! - [`metrics`] — the primitives: sharded monotonic [`Counter`]s, a
//!   [`Gauge`], and a log-bucketed atomic [`Histogram`] whose buckets are
//!   exact and mergeable, with p50/p90/p99/p999 readout.
//! - [`registry`] — a [`MetricsRegistry`] naming and labelling those
//!   primitives and rendering them in the Prometheus text exposition
//!   format for a `GET /metrics` scrape.
//! - [`trace`] — `span!`-style RAII timers that feed histograms and, when a
//!   per-request trace is active, record the stage timeline of a single
//!   dispatch.
//! - [`slowlog`] — a threshold-configurable ring buffer of the slowest
//!   requests, rendered as JSON lines.
//!
//! The design constraint throughout is *cheap enough to leave on*: every
//! hot-path operation is a handful of relaxed atomic ops on pre-registered
//! handles, with no locks and no allocation (tracing allocates, but only
//! for the one request that opted in). A registry built with
//! [`MetricsRegistry::disabled`] hands out no-op handles so the overhead
//! can be benchmarked against a true baseline.

pub mod metrics;
pub mod registry;
pub mod slowlog;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LatencySummary};
pub use registry::{MetricsRegistry, PROMETHEUS_CONTENT_TYPE};
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{Span, TraceGuard, TraceReport, TraceStage};
