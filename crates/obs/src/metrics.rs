//! Lock-free metric primitives: sharded counters, gauges, and log-bucketed
//! atomic histograms with exact, mergeable buckets.
//!
//! # Histogram bucketing
//!
//! Buckets are log-linear ("HDR-lite"): each power-of-two octave is split
//! into [`SUB`] equal sub-buckets, so the relative width of any bucket is
//! at most `1/SUB` (12.5%). Values below `2 * SUB` get one bucket each —
//! small values are *exact*. The whole `u64` range maps into
//! [`NUM_BUCKETS`] fixed buckets, so two histograms (or two snapshots of
//! the same histogram taken on different threads) merge by adding buckets
//! index-wise — merging is associative and loses nothing.
//!
//! A recorded value touches exactly one bucket with one relaxed
//! `fetch_add`; the running sum is sharded across cache-line-padded cells
//! to keep concurrent recorders off each other's cache lines. The total
//! count is *derived* from the buckets (never stored separately), which is
//! what makes "bucket counts are exact" a checkable property rather than a
//! best-effort invariant.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of sub-bucket bits per power-of-two octave.
pub const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (`2^SUB_BITS`); also the bound of the exact
/// region: every value below `2 * SUB` has a bucket to itself.
pub const SUB: usize = 1 << SUB_BITS;
/// Total number of histogram buckets covering the whole `u64` range.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) << SUB_BITS) + SUB;

/// How many cache-line-padded cells counters and histogram sums spread
/// over. A power of two so the thread id maps with a mask.
const SHARDS: usize = 16;

/// One atomic on its own cache line, so shards never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

/// Round-robin assignment of threads to shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// The bucket a value falls into. Monotone in `value`, total over `u64`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB as u64 {
        // The exact region: one bucket per value.
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = ((value >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    (((exp - SUB_BITS) as usize) << SUB_BITS) + mantissa + SUB
}

/// The smallest value that falls into bucket `index`.
///
/// # Panics
/// When `index >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < 2 * SUB {
        return index as u64;
    }
    let j = (index - SUB) as u32;
    let exp = (j >> SUB_BITS) + SUB_BITS;
    let mantissa = u64::from(j) & (SUB as u64 - 1);
    (1u64 << exp) + (mantissa << (exp - SUB_BITS))
}

/// The largest value that falls into bucket `index` (inclusive).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(index + 1) - 1
    }
}

/// A monotonic event counter, sharded to stay contention-free: each thread
/// adds to its own cache-line-padded cell, reads sum the cells.
#[derive(Debug)]
pub struct Counter {
    enabled: bool,
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A live counter.
    #[must_use]
    pub fn new() -> Self {
        Counter {
            enabled: true,
            shards: Default::default(),
        }
    }

    /// A no-op counter: `inc`/`add` return immediately.
    #[must_use]
    pub fn disabled() -> Self {
        Counter {
            enabled: false,
            shards: Default::default(),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.enabled {
            self.shards[thread_shard()]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total across all shards.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A signed gauge for levels (occupancy, queue depth). Gauges sit on
/// cold(er) paths, so a single atomic suffices.
#[derive(Debug)]
pub struct Gauge {
    enabled: bool,
    value: AtomicI64,
}

impl Gauge {
    /// A live gauge starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge {
            enabled: true,
            value: AtomicI64::new(0),
        }
    }

    /// A no-op gauge.
    #[must_use]
    pub fn disabled() -> Self {
        Gauge {
            enabled: false,
            value: AtomicI64::new(0),
        }
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        if self.enabled {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Moves the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        if self.enabled {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

/// A fixed-bucket atomic histogram. Values are unitless `u64`s; the engine
/// records latencies in nanoseconds via [`Histogram::record_duration`].
#[derive(Debug)]
pub struct Histogram {
    enabled: bool,
    buckets: Box<[AtomicU64]>,
    sums: [PaddedU64; SHARDS],
    max: AtomicU64,
}

impl Histogram {
    /// A live histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            enabled: true,
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sums: Default::default(),
            max: AtomicU64::new(0),
        }
    }

    /// A no-op histogram: `record` returns immediately, snapshots are empty.
    #[must_use]
    pub fn disabled() -> Self {
        Histogram {
            enabled: false,
            buckets: Box::new([]),
            sums: Default::default(),
            max: AtomicU64::new(0),
        }
    }

    /// Whether this histogram records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one value: one bucket increment, one sharded sum add, one
    /// `fetch_max`. No locks, no allocation.
    pub fn record(&self, value: u64) {
        if !self.enabled {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sums[thread_shard()]
            .0
            .fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        if self.enabled {
            self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// A point-in-time copy of the buckets. Concurrent recording may land
    /// between bucket reads, but every recorded value ends up in exactly
    /// one snapshot bucket eventually — snapshots of quiesced histograms
    /// are exact.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        if !self.enabled {
            return HistogramSnapshot::empty();
        }
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sums.iter().map(|s| s.0.load(Ordering::Relaxed)).sum(),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// An owned copy of a histogram's state: mergeable, queryable for
/// quantiles, serializable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total number of recorded values — derived from the buckets, so it
    /// is exact by construction.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts ([`NUM_BUCKETS`] entries, index = [`bucket_index`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Folds `other` into `self` bucket-wise. Associative and commutative:
    /// merging snapshots in any grouping yields identical buckets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = other.buckets.clone();
        } else if !other.buckets.is_empty() {
            for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
                *a += *b;
            }
        }
        // Wrapping, to match what concurrent `record` calls do to the
        // atomic sum — merges must equal recording into one histogram.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value range `(lowest, highest)` the nearest-rank `q`-quantile
    /// can lie in, inclusive on both ends. The reference computation —
    /// sort every recorded value, take the `ceil(q·n)`-th — is guaranteed
    /// to fall inside these bounds, because bucket indexing is monotone in
    /// the value and bucket counts are exact.
    #[must_use]
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        let count = self.count();
        if count == 0 {
            return (0, 0);
        }
        let target = (q * count as f64).ceil() as u64;
        let rank = target.clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (bucket_lower_bound(i), bucket_upper_bound(i).min(self.max));
            }
        }
        (self.max, self.max)
    }

    /// A conservative point estimate of the `q`-quantile: the upper end of
    /// [`HistogramSnapshot::quantile_bounds`], so it never under-reports.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// The fixed quantile digest served in stats responses.
    #[must_use]
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            sum_ns: self.sum,
            mean_ns: self.sum.checked_div(count).unwrap_or(0),
            max_ns: self.max,
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            p999_ns: self.quantile(0.999),
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

/// A quantile digest of a latency distribution, in nanoseconds. All-`u64`
/// and `Copy`, so it round-trips bit-identically through the wire
/// protocol. Quantiles are conservative upper bounds (within one histogram
/// bucket, ≤12.5% relative error) — except when produced by
/// [`LatencySummary::from_sorted_ns`], which is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum_ns: u64,
    /// Mean (integer division; 0 when empty).
    pub mean_ns: u64,
    /// Largest recorded value.
    pub max_ns: u64,
    /// Median (nearest-rank).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
}

impl LatencySummary {
    /// The exact nearest-rank summary of an already-sorted value list
    /// (ascending). Used where the raw values are retained anyway, e.g.
    /// per-session step latencies.
    #[must_use]
    pub fn from_sorted_ns(sorted: &[u64]) -> Self {
        if sorted.is_empty() {
            return LatencySummary::default();
        }
        let count = sorted.len() as u64;
        let sum: u64 = sorted.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        let nearest = |q: f64| {
            let rank = ((q * count as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[rank - 1]
        };
        LatencySummary {
            count,
            sum_ns: sum,
            mean_ns: sum / count,
            max_ns: sorted[sorted.len() - 1],
            p50_ns: nearest(0.50),
            p90_ns: nearest(0.90),
            p99_ns: nearest(0.99),
            p999_ns: nearest(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..(2 * SUB as u64) {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_lower_bound(i), v);
            assert_eq!(bucket_upper_bound(i), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_bracket() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            65_536,
            1 << 30,
            (1 << 40) + 12_345,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut last = 0usize;
        for &v in &probes {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(i < NUM_BUCKETS);
            assert!(bucket_lower_bound(i) <= v, "lower bound exceeds {v}");
            assert!(bucket_upper_bound(i) >= v, "upper bound below {v}");
            last = i;
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_u64_range() {
        // Every bucket starts exactly one past the previous bucket's end.
        for i in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower_bound(i),
                bucket_upper_bound(i - 1).wrapping_add(1),
                "gap or overlap at bucket {i}"
            );
        }
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 0..NUM_BUCKETS - 1 {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            // Width ≤ lower / SUB (exact region has width 0).
            assert!(
                hi - lo <= lo / SUB as u64 + 1,
                "bucket {i} too wide: [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn disabled_primitives_are_inert() {
        let c = Counter::disabled();
        c.add(7);
        assert_eq!(c.get(), 0);
        let g = Gauge::disabled();
        g.set(3);
        g.add(4);
        assert_eq!(g.get(), 0);
        let h = Histogram::disabled();
        h.record(42);
        h.record_duration(Duration::from_millis(5));
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        assert!(snap.buckets().iter().all(|&b| b == 0));
    }

    #[test]
    fn gauge_tracks_levels() {
        let g = Gauge::new();
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        g.set(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_counts_sum_and_max() {
        let h = Histogram::new();
        for v in [3u64, 3, 17, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.sum(), 1_000_023);
        assert_eq!(snap.max(), 1_000_000);
        assert_eq!(snap.buckets()[bucket_index(3)], 2);
        assert_eq!(snap.buckets()[bucket_index(17)], 1);
    }

    #[test]
    fn quantiles_of_exact_values_are_exact() {
        let h = Histogram::new();
        // All values in the exact region: quantiles must be exact.
        for v in 0..16u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // Nearest rank: ceil(0.5 * 16) = 8th smallest = value 7.
        assert_eq!(snap.quantile_bounds(0.5), (7, 7));
        assert_eq!(snap.quantile_bounds(1.0), (15, 15));
        let s = snap.summary();
        assert_eq!(s.count, 16);
        assert_eq!(s.p50_ns, 7);
        assert_eq!(s.max_ns, 15);
    }

    #[test]
    fn empty_snapshot_summary_is_zeroed() {
        let s = HistogramSnapshot::empty().summary();
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn merge_adds_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 510);
        assert_eq!(m.max(), 500);
        assert_eq!(m.buckets()[bucket_index(5)], 2);
    }

    #[test]
    fn from_sorted_ns_matches_hand_computation() {
        let s = LatencySummary::from_sorted_ns(&[10, 20, 30, 40]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 100);
        assert_eq!(s.mean_ns, 25);
        assert_eq!(s.p50_ns, 20);
        assert_eq!(s.p90_ns, 40);
        assert_eq!(s.max_ns, 40);
        assert_eq!(
            LatencySummary::from_sorted_ns(&[]),
            LatencySummary::default()
        );
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(30));
        let s = h.snapshot().summary();
        let json = serde_json::to_string(&s).unwrap();
        let back: LatencySummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
