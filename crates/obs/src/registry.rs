//! A named, labelled registry over the metric primitives, rendering the
//! Prometheus text exposition format (version 0.0.4) for `GET /metrics`.
//!
//! Registration happens once, at construction time of the instrumented
//! component; the hot path only ever touches the returned `Arc` handles.
//! The registry's own lock is taken during registration and rendering,
//! never while recording.

use crate::metrics::{bucket_upper_bound, Counter, Gauge, Histogram, NUM_BUCKETS};
use std::sync::{Arc, Mutex};

/// The content type a `/metrics` response must carry.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Exported histogram `le` boundaries: powers of two from `2^10` ns
/// (≈1 µs) to `2^36` ns (≈69 s). Powers of two are always internal bucket
/// boundaries, so the export ladder is an exact coarsening of the internal
/// buckets: the `le=2^k ns` bucket holds precisely the observations that
/// recorded strictly below `2^k` ns (one integral nanosecond under the
/// printed bound — indistinguishable at float resolution).
const EXPORT_SHIFTS: std::ops::RangeInclusive<u32> = 10..=36;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

struct Series {
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

struct Family {
    name: &'static str,
    help: &'static str,
    series: Vec<Series>,
}

/// The process-wide metric registry. Cheap to share (`Arc` it once);
/// constructed either live or [`MetricsRegistry::disabled`], in which case
/// every handle it hands out is a no-op and rendering yields nothing.
pub struct MetricsRegistry {
    enabled: bool,
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// A live registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            families: Mutex::new(Vec::new()),
        }
    }

    /// A no-op registry: handles record nothing, `render_prometheus`
    /// returns an empty string. The baseline for overhead benchmarks.
    #[must_use]
    pub fn disabled() -> Self {
        MetricsRegistry {
            enabled: false,
            families: Mutex::new(Vec::new()),
        }
    }

    /// Whether this registry records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or retrieves) the counter `name{labels}`. Registration
    /// is idempotent: the same name + label set returns the same handle.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        if !self.enabled {
            return Arc::new(Counter::disabled());
        }
        let handle = self.series(name, help, labels, || {
            Handle::Counter(Arc::new(Counter::new()))
        });
        match handle {
            Handle::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or retrieves) the gauge `name{labels}`.
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        if !self.enabled {
            return Arc::new(Gauge::disabled());
        }
        let handle = self.series(name, help, labels, || Handle::Gauge(Arc::new(Gauge::new())));
        match handle {
            Handle::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or retrieves) the nanosecond latency histogram
    /// `name{labels}` (rendered in seconds on the scrape surface).
    ///
    /// # Panics
    /// When `name` is already registered as a different metric kind.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        if !self.enabled {
            return Arc::new(Histogram::disabled());
        }
        let handle = self.series(name, help, labels, || {
            Handle::Histogram(Arc::new(Histogram::new()))
        });
        match handle {
            Handle::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn series(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name,
                    help,
                    series: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return clone_handle(&existing.handle);
        }
        let handle = make();
        let cloned = clone_handle(&handle);
        family.series.push(Series { labels, handle });
        cloned
    }

    /// Renders every registered series in the Prometheus text exposition
    /// format. Families render in registration order; histograms export on
    /// a power-of-two seconds ladder plus `+Inf`, `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().unwrap();
        for family in families.iter() {
            let kind = family.series.first().map_or("counter", |s| s.handle.kind());
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {kind}\n", family.name));
            for series in &family.series {
                match &series.handle {
                    Handle::Counter(c) => {
                        let labels = render_labels(&series.labels, None);
                        out.push_str(&format!("{}{labels} {}\n", family.name, c.get()));
                    }
                    Handle::Gauge(g) => {
                        let labels = render_labels(&series.labels, None);
                        out.push_str(&format!("{}{labels} {}\n", family.name, g.get()));
                    }
                    Handle::Histogram(h) => {
                        render_histogram(&mut out, family.name, &series.labels, h);
                    }
                }
            }
        }
        out
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

fn clone_handle(handle: &Handle) -> Handle {
    match handle {
        Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
        Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
        Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
    }
}

/// `{k="v",...}` with the two characters Prometheus requires escaped.
/// Empty label sets (with no `extra`) render as nothing.
fn render_labels(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A nanosecond count rendered as seconds.
fn seconds(ns: u64) -> String {
    format!("{}", ns as f64 / 1e9)
}

fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    h: &Histogram,
) {
    let snap = h.snapshot();
    let count = snap.count();
    let buckets = snap.buckets();
    let mut cumulative = 0u64;
    let mut next = 0usize; // next internal bucket not yet folded in
    for shift in EXPORT_SHIFTS {
        let bound_ns = 1u64 << shift;
        // Fold in every internal bucket lying entirely below the bound.
        while next < buckets.len() && next < NUM_BUCKETS && bucket_upper_bound(next) < bound_ns {
            cumulative += buckets[next];
            next += 1;
        }
        let le = render_labels(labels, Some(("le", &seconds(bound_ns))));
        out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
    }
    let inf = render_labels(labels, Some(("le", "+Inf")));
    out.push_str(&format!("{name}_bucket{inf} {count}\n"));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(labels, None),
        seconds(snap.sum())
    ));
    out.push_str(&format!(
        "{name}_count{} {count}\n",
        render_labels(labels, None)
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("gt_events_total", "events", &[("kind", "hit")]);
        let b = reg.counter("gt_events_total", "events", &[("kind", "hit")]);
        let c = reg.counter("gt_events_total", "events", &[("kind", "miss")]);
        a.inc();
        assert_eq!(b.get(), 1, "same labels must share the handle");
        assert_eq!(c.get(), 0, "different labels must not");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("gt_thing", "x", &[]);
        let _ = reg.gauge("gt_thing", "x", &[]);
    }

    #[test]
    fn disabled_registry_renders_nothing() {
        let reg = MetricsRegistry::disabled();
        let c = reg.counter("gt_events_total", "events", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        assert_eq!(reg.render_prometheus(), "");
    }

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("gt_requests_total", "requests", &[("variant", "build")])
            .add(3);
        reg.gauge("gt_sessions_open", "open sessions", &[]).set(5);
        let h = reg.histogram("gt_latency_seconds", "latency", &[]);
        h.record_duration(Duration::from_micros(10));
        h.record_duration(Duration::from_millis(10));

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE gt_requests_total counter"));
        assert!(text.contains("gt_requests_total{variant=\"build\"} 3"));
        assert!(text.contains("# TYPE gt_sessions_open gauge"));
        assert!(text.contains("gt_sessions_open 5"));
        assert!(text.contains("# TYPE gt_latency_seconds histogram"));
        assert!(text.contains("gt_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gt_latency_seconds_count 2"));

        // Cumulative bucket counts are monotone and end at the count.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("gt_latency_seconds_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 2);

        // 10µs sits above the 1.024µs line and below the ~16.8ms line.
        assert!(text.contains("gt_latency_seconds_bucket{le=\"0.000001024\"} 0"));
        assert!(text.contains("gt_latency_seconds_bucket{le=\"0.016777216\"} 2"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("gt_odd_total", "odd", &[("path", "a\"b\\c")])
            .inc();
        let text = reg.render_prometheus();
        assert!(text.contains("gt_odd_total{path=\"a\\\"b\\\\c\"} 1"));
    }
}
