//! A structured slow-request log: a bounded ring buffer of the requests
//! that crossed a latency threshold, rendered as JSON lines.
//!
//! The hot path pays one comparison per request; only requests over the
//! threshold take the ring's lock. The ring keeps the most recent entries
//! (oldest evicted first) and counts what it could not keep.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One slow request, as retained in the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowEntry {
    /// When the request finished, nanoseconds since the log was created
    /// (a monotonic offset, not wall-clock).
    pub at_ns: u64,
    /// What kind of request it was (`"build"`, `"command.customize"`, …).
    pub kind: String,
    /// The session the request belonged to (0 for sessionless requests).
    pub session_id: u64,
    /// The city the request was served in (empty when not applicable).
    pub city: String,
    /// How long the request took, nanoseconds.
    pub latency_ns: u64,
    /// Whether the request succeeded.
    pub ok: bool,
}

/// The slow-request ring. Threshold-configurable at construction;
/// `Duration::ZERO` logs everything (useful in tests), a very large
/// threshold effectively disables it.
#[derive(Debug)]
pub struct SlowLog {
    threshold: Duration,
    capacity: usize,
    origin: Instant,
    entries: Mutex<VecDeque<SlowEntry>>,
    recorded: AtomicU64,
}

impl SlowLog {
    /// A log keeping the most recent `capacity` requests slower than
    /// `threshold`.
    #[must_use]
    pub fn new(threshold: Duration, capacity: usize) -> Self {
        SlowLog {
            threshold,
            capacity,
            origin: Instant::now(),
            entries: Mutex::new(VecDeque::with_capacity(capacity.min(256))),
            recorded: AtomicU64::new(0),
        }
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Considers one finished request; records it when it was slow.
    /// Returns whether it was recorded (the caller typically also bumps a
    /// `slow_requests_total` counter on `true`).
    pub fn observe(
        &self,
        kind: &str,
        session_id: u64,
        city: &str,
        latency: Duration,
        ok: bool,
    ) -> bool {
        if latency < self.threshold || self.capacity == 0 {
            return false;
        }
        let entry = SlowEntry {
            at_ns: u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX),
            kind: kind.to_string(),
            session_id,
            city: city.to_string(),
            latency_ns: u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX),
            ok,
        };
        let mut ring = self.entries.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every entry currently retained, oldest first.
    #[must_use]
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries.lock().unwrap().iter().cloned().collect()
    }

    /// Total number of slow requests ever recorded (including those the
    /// ring has since evicted).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retained entries as JSON lines (one object per line, oldest
    /// first) — the `GET /slowlog` response body.
    #[must_use]
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            // SlowEntry serialization cannot fail: strings and integers only.
            out.push_str(&serde_json::to_string(&entry).unwrap_or_default());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_requests_are_not_recorded() {
        let log = SlowLog::new(Duration::from_secs(1), 8);
        assert!(!log.observe("build", 1, "vienna", Duration::from_millis(1), true));
        assert!(log.entries().is_empty());
        assert_eq!(log.total_recorded(), 0);
    }

    #[test]
    fn a_zero_threshold_records_everything() {
        let log = SlowLog::new(Duration::ZERO, 8);
        assert!(log.observe("build", 7, "vienna", Duration::from_micros(3), true));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, "build");
        assert_eq!(entries[0].session_id, 7);
        assert_eq!(entries[0].city, "vienna");
        assert_eq!(entries[0].latency_ns, 3_000);
        assert!(entries[0].ok);
    }

    #[test]
    fn the_ring_keeps_the_most_recent_entries() {
        let log = SlowLog::new(Duration::ZERO, 2);
        for i in 0..5u64 {
            log.observe("build", i, "", Duration::from_nanos(i), true);
        }
        let sessions: Vec<u64> = log.entries().iter().map(|e| e.session_id).collect();
        assert_eq!(sessions, [3, 4]);
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn json_lines_parse_back() {
        let log = SlowLog::new(Duration::ZERO, 4);
        log.observe(
            "command.refine",
            2,
            "a \"quoted\" city",
            Duration::from_millis(9),
            false,
        );
        let lines = log.json_lines();
        let mut parsed = 0;
        for line in lines.lines() {
            let entry: SlowEntry = serde_json::from_str(line).unwrap();
            assert_eq!(entry.kind, "command.refine");
            assert!(!entry.ok);
            parsed += 1;
        }
        assert_eq!(parsed, 1);
    }

    #[test]
    fn zero_capacity_discards_everything() {
        let log = SlowLog::new(Duration::ZERO, 0);
        assert!(!log.observe("build", 1, "", Duration::from_secs(5), true));
        assert!(log.entries().is_empty());
    }
}
